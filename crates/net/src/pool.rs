//! A scoped work-stealing fork–join pool for intra-query parallelism.
//!
//! The parallel executor explores independent restriction-area subtrees of
//! one query concurrently. That workload is classic fork–join: a visit
//! forks one task per relevant link, then *joins* — it cannot merge its
//! [`BranchLedger`](crate::metrics::BranchLedger) until every child subtree
//! has reported. The pool is built for exactly that shape and nothing more:
//!
//! * **Scoped.** [`scope`] wraps [`std::thread::scope`], so tasks may
//!   borrow from the caller's stack (the overlay, the fault session, the
//!   sharded visited set) without `'static` bounds or reference counting
//!   of the environment. When `scope` returns, every worker has exited.
//! * **Work-stealing.** Each participant owns a deque; it pushes and pops
//!   its own *back* (LIFO — depth-first, cache-warm) and steals from other
//!   participants' *front* (FIFO — the oldest, typically largest subtree).
//! * **Help-first join.** [`Pool::join_all`] never blocks while useful
//!   work exists: a joiner drains its own deque, then steals, and only
//!   parks on a condvar when the whole pool looks empty. Workers forked
//!   *by* tasks run to arbitrary depth this way without consuming threads.
//! * **Dependency-free and `unsafe`-free.** Deques are `Mutex<VecDeque>`;
//!   contention is bounded by the fan-out of a query visit, which is the
//!   link count of a peer — small — so lock-free deques would buy nothing
//!   the equivalence suite could measure.
//!
//! The pool makes **no ordering promises**: tasks run whenever a worker
//! gets to them. Determinism of the parallel executor comes from the layers
//! above — keyed fault streams ([`FaultSession`](crate::fault::FaultSession))
//! and the link-order ledger reduction — never from scheduling.
//!
//! A `Task` receives a `&Pool` argument at *execution* time instead of
//! capturing one, which is what lets tasks spawned from inside other tasks
//! fork further subtasks without a self-referential environment.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, *recovering* from poisoning instead of propagating it.
///
/// A task that panics mid-pool must not wedge every other participant: the
/// pool's own critical sections only move plain data (deque pushes, result
/// slot writes, counter decrements), so a lock abandoned by a panicking
/// thread still guards a structurally sound value and the next locker can
/// simply continue. Panic *payloads* are routed to the joining caller by
/// [`Pool::join_all`]; poisoning would only turn one failure into a cascade.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unit of work: boxed once at fork time, handed the pool when run so it
/// can fork children of its own.
type Task<'env> = Box<dyn FnOnce(&Pool<'env>) + Send + 'env>;

/// Shared state of one [`scope`] invocation.
///
/// Participant 0 is the thread that called [`scope`]; participants
/// `1..=extra_workers` are the spawned workers. All of them push, pop,
/// steal, and help during joins through this object.
pub struct Pool<'env> {
    /// One deque per participant (owner pops back, thieves pop front).
    deques: Box<[Mutex<VecDeque<Task<'env>>>]>,
    /// Sleep/wake coordination for idle workers.
    idle: Mutex<()>,
    /// Notified whenever a task is pushed or the pool shuts down.
    bell: Condvar,
    /// Set once the scope closure has returned; workers drain and exit.
    stop: AtomicBool,
}

std::thread_local! {
    /// The calling thread's participant index within the current scope
    /// (usize::MAX outside any scope). Scopes never nest in this codebase;
    /// the value is saved/restored anyway so nesting degrades gracefully.
    static PARTICIPANT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

impl<'env> Pool<'env> {
    fn new(participants: usize) -> Self {
        let deques = (0..participants)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            deques,
            idle: Mutex::new(()),
            bell: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Total number of participants (caller thread + extra workers).
    pub fn participants(&self) -> usize {
        self.deques.len()
    }

    /// The current thread's deque index (participant 0 if this thread is
    /// somehow foreign to the scope — it then shares the caller's deque,
    /// which is safe, merely suboptimal).
    fn me(&self) -> usize {
        let idx = PARTICIPANT.with(|p| p.get());
        if idx < self.deques.len() {
            idx
        } else {
            0
        }
    }

    /// Push `task` onto the current participant's deque and ring the bell.
    fn push(&self, task: Task<'env>) {
        let me = self.me();
        relock(&self.deques[me]).push_back(task);
        // Wake one sleeper; if none are sleeping this is nearly free.
        self.bell.notify_one();
    }

    /// Pop from the current participant's own deque (LIFO: newest first,
    /// keeping each worker depth-first on the subtree it is exploring).
    fn pop_own(&self) -> Option<Task<'env>> {
        let me = self.me();
        relock(&self.deques[me]).pop_back()
    }

    /// Steal the oldest task from some other participant (FIFO: the oldest
    /// fork is closest to the root, hence likely the biggest subtree).
    fn steal(&self) -> Option<Task<'env>> {
        let me = self.me();
        let n = self.deques.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(task) = relock(&self.deques[victim]).pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Take one task from anywhere: own deque first, then steal.
    fn find_task(&self) -> Option<Task<'env>> {
        self.pop_own().or_else(|| self.steal())
    }

    /// Fork `thunks` and block until all have completed, returning their
    /// results **in the order the thunks were given** — schedulers may run
    /// them in any order, but the caller's view is positional, which is
    /// what lets the executor reduce child ledgers in link order.
    ///
    /// While waiting, the caller *helps*: it executes queued tasks (its own
    /// or stolen ones), so recursive joins deep in a query tree never
    /// deadlock the fixed-size pool.
    ///
    /// # Panics
    /// If a forked thunk panics, the panic is *caught on the worker*, the
    /// batch accounting still completes (no sibling blocks forever, no pool
    /// lock stays poisoned), and the payload is re-raised **here**, on the
    /// joining caller — the same place it would surface had the thunk run
    /// inline. The pool itself stays usable afterwards.
    pub fn join_all<T, F>(&self, thunks: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(&Pool<'env>) -> T + Send + 'env,
    {
        let n = thunks.len();
        if n == 0 {
            return Vec::new();
        }
        // Tiny batches: forking costs more than it buys; run inline.
        if n == 1 || self.participants() == 1 {
            return thunks.into_iter().map(|f| f(self)).collect();
        }

        struct Batch<T> {
            slots: Mutex<(Vec<Option<T>>, usize)>,
            done: Condvar,
            /// The first panic payload raised by a forked thunk, held for
            /// the joining caller to re-raise.
            failure: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        }
        let batch = Arc::new(Batch {
            slots: Mutex::new(((0..n).map(|_| None).collect(), n)),
            done: Condvar::new(),
            failure: Mutex::new(None),
        });

        let mut thunks = thunks.into_iter().enumerate();
        // Keep the *first* thunk for ourselves (run inline, saving one
        // fork+signal round trip); fork the rest.
        let (first_idx, first) = thunks.next().expect("n >= 1");
        for (i, f) in thunks {
            let batch = Arc::clone(&batch);
            self.push(Box::new(move |pool: &Pool<'env>| {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(pool)));
                let mut guard = relock(&batch.slots);
                match outcome {
                    Ok(value) => guard.0[i] = Some(value),
                    Err(payload) => {
                        let mut failure = relock(&batch.failure);
                        failure.get_or_insert(payload);
                    }
                }
                guard.1 -= 1;
                if guard.1 == 0 {
                    batch.done.notify_all();
                }
            }));
        }
        {
            let value = first(self);
            let mut guard = relock(&batch.slots);
            guard.0[first_idx] = Some(value);
            guard.1 -= 1;
        }

        // Help until the batch completes.
        loop {
            if relock(&batch.slots).1 == 0 {
                break;
            }
            if let Some(task) = self.find_task() {
                task(self);
                continue;
            }
            // Nothing runnable: park until a push or completion. A short
            // timeout guards the unlikely race where the last child
            // finishes between our check and the wait.
            let guard = relock(&batch.slots);
            if guard.1 == 0 {
                break;
            }
            let _ = batch
                .done
                .wait_timeout(guard, Duration::from_micros(100))
                .unwrap_or_else(PoisonError::into_inner);
        }

        if let Some(payload) = relock(&batch.failure).take() {
            resume_unwind(payload);
        }
        let (slots, remaining) = Arc::try_unwrap(batch)
            .map(|b| b.slots.into_inner().unwrap_or_else(PoisonError::into_inner))
            .unwrap_or_else(|arc| {
                let mut guard = relock(&arc.slots);
                (std::mem::take(&mut guard.0), guard.1)
            });
        debug_assert_eq!(remaining, 0);
        slots
            .into_iter()
            .map(|s| s.expect("joined task left no result"))
            .collect()
    }

    /// Worker main loop: run tasks until the scope stops *and* every deque
    /// has drained.
    fn work(&self, index: usize) {
        PARTICIPANT.with(|p| p.set(index));
        loop {
            if let Some(task) = self.find_task() {
                task(self);
                continue;
            }
            if self.stop.load(Ordering::Acquire) {
                // Final sweep: stop was raised, but a task may have been
                // pushed between our failed find and the load.
                if let Some(task) = self.find_task() {
                    task(self);
                    continue;
                }
                break;
            }
            let guard = relock(&self.idle);
            // Re-check under the lock so a push+notify cannot slip between
            // the failed find above and the wait below.
            let _ = self
                .bell
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap_or_else(PoisonError::into_inner);
        }
        PARTICIPANT.with(|p| p.set(usize::MAX));
    }
}

/// Runs `f` with a pool of `1 + extra_workers` participants: the calling
/// thread (participant 0, which both submits and helps) plus
/// `extra_workers` scoped threads.
///
/// With `extra_workers == 0` no threads are spawned at all and every
/// [`Pool::join_all`] runs its thunks inline on the caller — the
/// single-threaded pool is observationally a plain function call, which is
/// the degenerate case the `--threads 1` equivalence gate leans on.
pub fn scope<'env, R>(extra_workers: usize, f: impl FnOnce(&Pool<'env>) -> R) -> R {
    let pool = Pool::new(1 + extra_workers);
    let prev = PARTICIPANT.with(|p| p.replace(0));
    let result = std::thread::scope(|s| {
        for index in 1..pool.participants() {
            let pool = &pool;
            std::thread::Builder::new()
                .name(format!("ripple-worker-{index}"))
                .spawn_scoped(s, move || pool.work(index))
                .expect("failed to spawn pool worker");
        }
        // Raise `stop` even when `f` unwinds (e.g. a task panic re-raised
        // by `join_all`): otherwise the workers would never exit and
        // `thread::scope` would join them forever instead of propagating.
        struct StopOnExit<'a, 'env>(&'a Pool<'env>);
        impl Drop for StopOnExit<'_, '_> {
            fn drop(&mut self) {
                self.0.stop.store(true, Ordering::Release);
                self.0.bell.notify_all();
            }
        }
        let _stop = StopOnExit(&pool);
        f(&pool)
    });
    PARTICIPANT.with(|p| p.set(prev));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_workers_runs_inline() {
        let ran_on = std::thread::current().id();
        let out = scope(0, |pool| {
            assert_eq!(pool.participants(), 1);
            pool.join_all(
                (1..=2u64)
                    .map(|i| {
                        move |_: &Pool| {
                            assert_eq!(std::thread::current().id(), ran_on);
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        });
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn results_keep_submission_order() {
        let out = scope(3, |pool| {
            let thunks: Vec<_> = (0..64u64)
                .map(|i| {
                    move |_: &Pool| {
                        // Stagger completion so out-of-order finishes occur.
                        if i % 7 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        i * i
                    }
                })
                .collect();
            pool.join_all(thunks)
        });
        let expect: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_forks_do_not_deadlock() {
        // A 3-level fan-out tree joined recursively: with 2 workers and
        // depth > workers this deadlocks unless joiners help.
        fn tree(pool: &Pool, depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let children = pool.join_all(
                (0..3)
                    .map(|_| move |p: &Pool| tree(p, depth - 1))
                    .collect::<Vec<_>>(),
            );
            1 + children.into_iter().sum::<usize>()
        }
        let total = scope(2, |pool| tree(pool, 4));
        // Nodes of a complete ternary tree of depth 4: (3^5 - 1) / 2.
        assert_eq!(total, 121);
    }

    #[test]
    fn work_is_actually_distributed() {
        // With enough coarse tasks, at least one should run off-caller.
        let caller = std::thread::current().id();
        let foreign = Arc::new(AtomicUsize::new(0));
        scope(3, |pool| {
            let thunks: Vec<_> = (0..32)
                .map(|_| {
                    let foreign = Arc::clone(&foreign);
                    move |_: &Pool| {
                        std::thread::sleep(Duration::from_micros(300));
                        if std::thread::current().id() != caller {
                            foreign.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .collect();
            pool.join_all(thunks);
        });
        assert!(
            foreign.load(Ordering::Relaxed) > 0,
            "no task ever ran on a worker thread"
        );
    }

    #[test]
    fn borrows_from_environment() {
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(10).collect();
        let sums = scope(2, |pool| {
            pool.join_all(
                slices
                    .iter()
                    .map(|s| {
                        let s: &[u64] = s;
                        move |_: &Pool| s.iter().sum::<u64>()
                    })
                    .collect::<Vec<_>>(),
            )
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_join_is_a_noop() {
        let out: Vec<u64> = scope(1, |pool| pool.join_all(Vec::<fn(&Pool) -> u64>::new()));
        assert!(out.is_empty());
    }

    /// A forked task that panics must neither wedge its siblings nor poison
    /// the pool: the panic surfaces on the *joining caller* (as if the thunk
    /// had run inline), every worker exits cleanly, and a fresh scope —
    /// and the whole process — remains fully usable afterwards.
    #[test]
    fn panicking_task_leaves_the_pool_usable() {
        let completed = Arc::new(AtomicUsize::new(0));
        let result = std::panic::catch_unwind({
            let completed = Arc::clone(&completed);
            move || {
                scope(2, |pool| {
                    pool.join_all(
                        (0..16u64)
                            .map(|i| {
                                let completed = Arc::clone(&completed);
                                move |_: &Pool| {
                                    if i == 5 {
                                        panic!("injected task failure");
                                    }
                                    completed.fetch_add(1, Ordering::Relaxed);
                                    i
                                }
                            })
                            .collect::<Vec<_>>(),
                    )
                })
            }
        });
        let payload = result.expect_err("the injected panic must propagate to the joiner");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(
            msg, "injected task failure",
            "the original payload survives"
        );
        assert_eq!(
            completed.load(Ordering::Relaxed),
            15,
            "every sibling of the panicking task still completes"
        );
        // The pool machinery (locks, thread-locals, workers) is reusable.
        let out = scope(2, |pool| {
            pool.join_all(
                (0..32u64)
                    .map(|i| move |_: &Pool| i * 3)
                    .collect::<Vec<_>>(),
            )
        });
        assert_eq!(out, (0..32u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// Nested fork–join under an injected panic: deeper joins between the
    /// panicking task and the root still unwind in order, and the root
    /// caller receives the payload.
    #[test]
    fn panic_propagates_through_nested_joins() {
        fn tree(pool: &Pool, depth: usize) -> usize {
            if depth == 0 {
                panic!("leaf panic");
            }
            pool.join_all(
                (0..2)
                    .map(|_| move |p: &Pool| tree(p, depth - 1))
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .sum()
        }
        let result = std::panic::catch_unwind(|| scope(2, |pool| tree(pool, 3)));
        assert!(result.is_err(), "the leaf panic must reach the root");
        // And the process is still healthy.
        let ok = scope(1, |pool| {
            pool.join_all(vec![|_: &Pool| 1usize, |_: &Pool| 2usize])
        });
        assert_eq!(ok, vec![1, 2]);
    }
}
