//! Dependency-free deterministic pseudo-randomness for the simulator.
//!
//! The reproduction must build and test **offline** (tier-1 verify runs with
//! `--offline`), so the library crates cannot depend on the `rand` crate.
//! This module provides the small slice of its API the simulation needs —
//! a seedable generator plus `gen` / `gen_range` / `gen_bool` — backed by
//! xoshiro256++ (Blackman & Vigna) seeded through splitmix64, the standard
//! pairing for reproducible simulation workloads.
//!
//! The traits deliberately mirror `rand`'s names ([`Rng`], [`RngCore`],
//! [`SeedableRng`], [`rngs::SmallRng`]) so call sites read identically and a
//! future migration back to the external crate stays mechanical.

/// Core interface: a stream of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 — used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The splitmix64 *finalizer*: a strong, stateless 64-bit mixing function.
///
/// This is the bijection at the heart of splitmix64, exposed so callers can
/// derive stream keys by folding identifiers together:
/// `mix64(mix64(a) ^ b)` yields a well-distributed key for the pair
/// `(a, b)`. The per-edge fault streams (`ripple-net::fault`) are keyed
/// this way over `(query stream, sender, target, attempt)`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable generator: xoshiro256++.
///
/// Statistically strong enough for simulation (passes BigCrush); **not**
/// cryptographically secure.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl SmallRng {
    /// Splits off a statistically independent child generator for `key`
    /// **without advancing this generator**.
    ///
    /// The child's state is a pure function of the parent's *current* state
    /// and the key, so the same `(parent state, key)` pair always yields the
    /// same stream while different keys yield uncorrelated streams (each
    /// state word is re-derived through splitmix64, the standard seeding
    /// path). This is what makes random decisions *addressable*: a parallel
    /// executor can draw the decision for logical edge `key` on whichever
    /// thread gets there first and still reproduce a sequential run
    /// bit-for-bit, because no global draw order exists to diverge from.
    #[inline]
    pub fn split(&self, key: u64) -> SmallRng {
        // Compress the 256-bit state into one word (rotations keep the four
        // words from cancelling), fold the key in, then re-expand exactly
        // like `seed_from_u64` so child streams inherit its guarantees.
        let folded = self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48);
        Self::seed_from_u64(mix64(folded) ^ mix64(key))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        let s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// Types drawable uniformly from their natural domain via [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleRange: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is guaranteed by the caller.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Span fits in u128 for every supported width. Modulo bias is
                // at most span / 2^64 — irrelevant for simulation draws.
                let span = (hi as u128).wrapping_sub(lo as u128);
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((wide % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u32, u64, i32, i64);

impl SampleRange for u128 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let span = hi - lo;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        lo + wide % span
    }
}

impl SampleRange for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience layer over [`RngCore`], mirroring the external `rand` crate's
/// `Rng` extension trait.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's natural domain
    /// (`[0,1)` for `f64`, the full range for integers).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range over an empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced re-export mirroring the external `rand` crate's `rngs` module.
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut hits = [0u32; 5];
        for _ in 0..5_000 {
            hits[rng.gen_range(0..5usize)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 700), "{hits:?}");
        // bounds respected for offset ranges
        for _ in 0..100 {
            let v = rng.gen_range(10..12u64);
            assert!((10..12).contains(&v));
        }
        // u128 spans work (z-order key spaces)
        for _ in 0..100 {
            let v = rng.gen_range(0..1u128 << 80);
            assert!(v < 1u128 << 80);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = Rng::gen::<f64>(&mut &mut *dynr);
        assert!((0.0..1.0).contains(&x));
        let i = Rng::gen_range(&mut &mut *dynr, 0..10usize);
        assert!(i < 10);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn split_is_pure_and_keyed() {
        let parent = SmallRng::seed_from_u64(11);
        // Same key: identical child stream; split never advances the parent.
        let a: Vec<u64> = {
            let mut c = parent.split(5);
            (0..32).map(|_| c.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut c = parent.split(5);
            (0..32).map(|_| c.next_u64()).collect()
        };
        assert_eq!(a, b, "same (state, key) must replay identically");
        // Different keys: different streams.
        let c: Vec<u64> = {
            let mut c = parent.split(6);
            (0..32).map(|_| c.next_u64()).collect()
        };
        assert_ne!(a, c, "streams must be keyed");
        // Different parent state: different streams for the same key.
        let other = SmallRng::seed_from_u64(12);
        let d: Vec<u64> = {
            let mut c = other.split(5);
            (0..32).map(|_| c.next_u64()).collect()
        };
        assert_ne!(a, d);
    }

    #[test]
    fn split_streams_are_statistically_independent() {
        // Draw one f64 from each of many per-key children: the collection
        // must look uniform (this is exactly the per-edge drop-decision
        // pattern of the fault plane).
        let parent = SmallRng::seed_from_u64(99);
        let mut sum = 0.0;
        let mut below_tenth = 0usize;
        for key in 0..10_000u64 {
            let x: f64 = parent.split(key).gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            if x < 0.1 {
                below_tenth += 1;
            }
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert!(
            (800..1200).contains(&below_tenth),
            "P(x < 0.1) ≈ 0.1, got {below_tenth}/10000"
        );
    }

    #[test]
    fn mix64_is_a_strong_stateless_mixer() {
        assert_eq!(mix64(7), mix64(7));
        assert_ne!(mix64(7), mix64(8));
        // sequential inputs must not produce correlated low bits
        let mut low = std::collections::HashSet::new();
        for i in 0..1024u64 {
            low.insert(mix64(i) & 0x3ff);
        }
        assert!(low.len() > 600, "only {} distinct buckets", low.len());
    }
}
