//! The peer quarantine registry: the recovery side of the commission-fault
//! plane (DESIGN.md §14).
//!
//! When the executor's online response audit catches a peer lying —
//! answers inconsistent with its authoritative store, a stale generation
//! stamp, a truncated payload, a fabricated tuple, an inflated bound
//! witness — the peer is **quarantined**: subsequent queries treat it like
//! a dead peer (its forwards are skipped straight to failover, its region
//! answered from replicas or honestly reported unreachable) until the
//! operator advances an epoch, which grants **probation**. A probation
//! peer is queried again normally; one audited-clean response clears it,
//! one tainted response re-quarantines it.
//!
//! # Determinism under parallel execution
//!
//! The registry is *never* consulted or mutated mid-query. Each query
//! takes an immutable [`QuarantineSnapshot`] before its first hop and
//! records audit verdicts branch-locally (merged in link order with the
//! rest of the branch ledger); the executor flushes the merged verdicts
//! through [`Quarantine::apply`] only after the walk completes. A
//! sequential and a parallel walk of the same query therefore observe the
//! same snapshot and leave the registry in the same state — the same
//! discipline that keeps the keyed fault streams schedule-free.
//!
//! Membership is held in a [`BTreeMap`] keyed by [`PeerId`] so snapshots,
//! iteration and counters are deterministic, mirroring
//! [`ReplicaSet`](crate::replica::ReplicaSet)'s ownership model.

use crate::peer::PeerId;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A quarantined peer's standing.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Standing {
    /// Caught by an audit: excluded from forwards and failover like a
    /// dead peer.
    Quarantined,
    /// Granted probation by an epoch advance: queried again normally; the
    /// next audited response decides re-admission or re-quarantine.
    Probation,
}

#[derive(Debug, Default)]
struct QuarantineState {
    members: BTreeMap<PeerId, Standing>,
    /// Lifetime count of quarantine events (re-quarantines included).
    total_quarantined: u64,
    /// Lifetime count of probation peers cleared by a clean probe.
    total_cleared: u64,
}

/// The overlay-owned registry of peers caught by the online response
/// audit. Interior-mutable (a single mutex) so the executor can flush
/// verdicts through a shared `&Overlay`; all mutation happens between
/// queries, never inside one.
#[derive(Debug, Default)]
pub struct Quarantine {
    inner: Mutex<QuarantineState>,
}

impl Clone for Quarantine {
    fn clone(&self) -> Self {
        let state = self.inner.lock().expect("quarantine poisoned");
        Self {
            inner: Mutex::new(QuarantineState {
                members: state.members.clone(),
                total_quarantined: state.total_quarantined,
                total_cleared: state.total_cleared,
            }),
        }
    }
}

impl Quarantine {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of peers currently quarantined or on probation.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .members
            .len()
    }

    /// True when no peer is quarantined or on probation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of peers currently fully quarantined (probation excluded).
    pub fn quarantined(&self) -> usize {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .members
            .values()
            .filter(|&&s| s == Standing::Quarantined)
            .count()
    }

    /// Number of peers currently on probation.
    pub fn on_probation(&self) -> usize {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .members
            .values()
            .filter(|&&s| s == Standing::Probation)
            .count()
    }

    /// The peer's current standing, if any.
    pub fn standing(&self, peer: PeerId) -> Option<Standing> {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .members
            .get(&peer)
            .copied()
    }

    /// Lifetime count of quarantine events (re-quarantines included).
    pub fn total_quarantined(&self) -> u64 {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .total_quarantined
    }

    /// Lifetime count of probation peers re-admitted by a clean probe.
    pub fn total_cleared(&self) -> u64 {
        self.inner
            .lock()
            .expect("quarantine poisoned")
            .total_cleared
    }

    /// Grants probation to every fully quarantined peer. Called by the
    /// serving layer on epoch advances: re-admission requires surviving
    /// one audited-clean probe query, never a silent timeout.
    pub fn grant_probation(&self) {
        let mut state = self.inner.lock().expect("quarantine poisoned");
        for standing in state.members.values_mut() {
            *standing = Standing::Probation;
        }
    }

    /// Flushes one finished query's merged audit verdicts
    /// (`(peer, tainted)` pairs in link order). Per peer, *tainted wins*
    /// over clean — the aggregation is order-free, so sequential and
    /// parallel engines leave the registry bit-identical. Returns the
    /// number of peers newly (re-)quarantined by this flush (feeds the
    /// `quarantined_peers` ledger counter).
    pub fn apply(&self, verdicts: &[(PeerId, bool)]) -> u64 {
        if verdicts.is_empty() {
            return 0;
        }
        // Order-free per-peer reduction: any taint condemns the peer.
        let mut folded: BTreeMap<PeerId, bool> = BTreeMap::new();
        for &(peer, tainted) in verdicts {
            let e = folded.entry(peer).or_insert(false);
            *e |= tainted;
        }
        let mut state = self.inner.lock().expect("quarantine poisoned");
        let mut newly = 0u64;
        for (peer, tainted) in folded {
            if tainted {
                if state.members.insert(peer, Standing::Quarantined) != Some(Standing::Quarantined)
                {
                    newly += 1;
                }
                state.total_quarantined += 1;
            } else if state.members.get(&peer) == Some(&Standing::Probation) {
                state.members.remove(&peer);
                state.total_cleared += 1;
            }
        }
        newly
    }

    /// An immutable copy of the current membership for one query to run
    /// against. Taken before the first hop; the query never re-reads the
    /// live registry, so concurrent flushes cannot perturb it mid-walk.
    pub fn snapshot(&self) -> QuarantineSnapshot {
        let state = self.inner.lock().expect("quarantine poisoned");
        if state.members.is_empty() {
            return QuarantineSnapshot::default();
        }
        let mut excluded = Vec::new();
        let mut probation = Vec::new();
        for (&peer, &standing) in &state.members {
            match standing {
                Standing::Quarantined => excluded.push(peer),
                Standing::Probation => probation.push(peer),
            }
        }
        QuarantineSnapshot {
            excluded,
            probation,
        }
    }
}

/// One query's frozen view of the registry. Both vectors are sorted by
/// [`PeerId`] (BTreeMap iteration order), so membership tests are binary
/// searches and the snapshot itself is deterministic.
#[derive(Clone, Debug, Default)]
pub struct QuarantineSnapshot {
    excluded: Vec<PeerId>,
    probation: Vec<PeerId>,
}

impl QuarantineSnapshot {
    /// True when the snapshot constrains nothing (the common, fast case).
    pub fn is_empty(&self) -> bool {
        self.excluded.is_empty() && self.probation.is_empty()
    }

    /// Fully quarantined peers, sorted: excluded from forwards and from
    /// failover candidacy for the snapshot's query.
    pub fn excluded(&self) -> &[PeerId] {
        &self.excluded
    }

    /// True when no peer is fully excluded.
    pub fn no_exclusions(&self) -> bool {
        self.excluded.is_empty()
    }

    /// True when at least one peer is on probation (forces the deposit
    /// audit path even with corruption off, so probes actually audit).
    pub fn has_probation(&self) -> bool {
        !self.probation.is_empty()
    }

    /// Whether `peer` is fully excluded by this snapshot.
    pub fn is_excluded(&self, peer: PeerId) -> bool {
        self.excluded.binary_search(&peer).is_ok()
    }

    /// Whether `peer` is on probation in this snapshot.
    pub fn is_probation(&self, peer: PeerId) -> bool {
        self.probation.binary_search(&peer).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_quarantine_probation_clear() {
        let q = Quarantine::new();
        assert!(q.is_empty());
        assert_eq!(q.apply(&[]), 0);

        // tainted verdict quarantines; clean verdict on an unknown peer
        // is a no-op (only probation peers need clearing).
        let newly = q.apply(&[(PeerId::new(3), true), (PeerId::new(5), false)]);
        assert_eq!(newly, 1);
        assert_eq!(q.standing(PeerId::new(3)), Some(Standing::Quarantined));
        assert_eq!(q.standing(PeerId::new(5)), None);
        assert_eq!(q.quarantined(), 1);
        assert_eq!(q.on_probation(), 0);

        let snap = q.snapshot();
        assert!(snap.is_excluded(PeerId::new(3)));
        assert!(!snap.is_probation(PeerId::new(3)));
        assert!(!snap.has_probation());
        assert_eq!(snap.excluded(), &[PeerId::new(3)]);

        // epoch advance: probation, no longer excluded.
        q.grant_probation();
        assert_eq!(q.standing(PeerId::new(3)), Some(Standing::Probation));
        let snap = q.snapshot();
        assert!(snap.no_exclusions());
        assert!(snap.is_probation(PeerId::new(3)));
        assert!(snap.has_probation());

        // clean probe clears; counters track lifetime events.
        assert_eq!(q.apply(&[(PeerId::new(3), false)]), 0);
        assert!(q.is_empty());
        assert_eq!(q.total_quarantined(), 1);
        assert_eq!(q.total_cleared(), 1);
    }

    #[test]
    fn tainted_wins_regardless_of_verdict_order() {
        let a = Quarantine::new();
        a.apply(&[(PeerId::new(1), false), (PeerId::new(1), true)]);
        let b = Quarantine::new();
        b.apply(&[(PeerId::new(1), true), (PeerId::new(1), false)]);
        assert_eq!(a.standing(PeerId::new(1)), b.standing(PeerId::new(1)));
        assert_eq!(a.standing(PeerId::new(1)), Some(Standing::Quarantined));
    }

    #[test]
    fn tainted_probe_requarantines() {
        let q = Quarantine::new();
        q.apply(&[(PeerId::new(7), true)]);
        q.grant_probation();
        assert_eq!(
            q.apply(&[(PeerId::new(7), true)]),
            1,
            "probation -> quarantine is a new event"
        );
        assert_eq!(q.standing(PeerId::new(7)), Some(Standing::Quarantined));
        assert_eq!(q.total_quarantined(), 2);
        assert_eq!(q.total_cleared(), 0);
    }

    #[test]
    fn requarantine_of_quarantined_peer_is_not_new() {
        let q = Quarantine::new();
        assert_eq!(q.apply(&[(PeerId::new(2), true)]), 1);
        assert_eq!(q.apply(&[(PeerId::new(2), true)]), 0);
        assert_eq!(q.total_quarantined(), 2, "events still counted");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn snapshot_is_frozen_and_sorted() {
        let q = Quarantine::new();
        q.apply(&[(PeerId::new(9), true), (PeerId::new(2), true)]);
        let snap = q.snapshot();
        assert_eq!(snap.excluded(), &[PeerId::new(2), PeerId::new(9)]);
        // later mutation does not leak into the snapshot
        q.grant_probation();
        assert!(snap.is_excluded(PeerId::new(9)));
        let clone = q.clone();
        assert_eq!(clone.on_probation(), 2);
    }
}
