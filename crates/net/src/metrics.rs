//! Query cost accounting, matching the paper's metrics (Section 7.1).
//!
//! **Latency** is the number of hops on the critical path of query
//! processing. The distributed algorithms compute it recursively exactly as
//! the proofs of Lemmas 1–3 count it: forwarding a query to a link costs one
//! hop; children contacted in parallel (`fast`) contribute the *maximum* of
//! their subtree latencies, children contacted sequentially (`slow`)
//! contribute the *sum*. State/answer responses are tallied as messages but
//! add no hops, mirroring the Lemma accounting.
//!
//! **Congestion** is "the average number of queries processed at any peer
//! when `n` uniform queries are issued" (`n` = network size): each query
//! records how many peer-visits it caused, and the aggregator averages
//! visits per query, which — with `n` queries over `n` peers — equals the
//! expected per-peer load.

use crate::hash::{fx_set_with_capacity, FxHashMap, FxHashSet};
use crate::peer::PeerId;
use crate::rng::mix64;
use crate::stats::{Distribution, Plan};
use ripple_geom::Tuple;
use ripple_verify::CertRegion;
use std::sync::Mutex;

/// The cost ledger of a single distributed query execution.
///
/// Equality (`PartialEq`) deliberately **excludes** the two data-plane
/// observability counters [`tuples_scanned`](QueryMetrics::tuples_scanned)
/// and [`blocks_pruned`](QueryMetrics::blocks_pruned): they describe how
/// much local work an execution *avoided* (blocked vs scalar vs naive scan
/// paths, cold vs warm caches), which legitimately differs between
/// executions that are bit-identical in every paper metric, answer stream
/// and visit sequence. The equivalence gates compare ledgers with `==`,
/// so the exclusion is what lets "same outcome, less work" hold.
#[derive(Clone, Debug, Default)]
pub struct QueryMetrics {
    /// Hops on the critical path (the paper's latency metric).
    pub latency: u64,
    /// Query-forward messages sent between peers.
    pub query_messages: u64,
    /// Response messages (remote local states, local answers).
    pub response_messages: u64,
    /// Number of peer-visits (processing events); drives congestion.
    pub peers_visited: u64,
    /// Tuples shipped over the wire in responses (communication volume).
    pub tuples_transferred: u64,
    /// Retransmissions performed after presumed-lost messages.
    pub retries: u64,
    /// Sender-side timeouts that fired (each contributes its wait to
    /// latency, per the fault model in `ripple-core`'s executor).
    pub timeouts: u64,
    /// Query-forward messages lost in transit (fault injection).
    pub messages_dropped: u64,
    /// Maintenance messages spent repairing crash damage that this query's
    /// processing triggered or observed (overlay repair protocols).
    pub repair_messages: u64,
    /// Dead-owner regions answered from a replica instead of being
    /// abandoned. Keyed by the failed edge (not by thread schedule), so the
    /// count is deterministic under the parallel executor.
    pub replica_hits: u64,
    /// Replica reads whose copy was captured before the owner's latest
    /// store generation (the answer may miss recent inserts). Always
    /// `<= replica_hits`.
    pub stale_reads: u64,
    /// Simulated bytes of replica payload fetched by this query's failover
    /// reads (8 bytes of id + 8 per coordinate, per tuple).
    pub replica_bytes: u64,
    /// Replica capture/promotion transfers charged to this query (drained
    /// from the network's [`ReplicaSet`](crate::replica::ReplicaSet) by the
    /// harness, like `repair_messages`).
    pub repair_transfers: u64,
    /// Processing events at a peer that had already processed this query —
    /// an always-on anomaly counter (restriction areas guarantee this is 0;
    /// a nonzero value flags restriction-area breakage even in release
    /// builds, where the old `debug_assert!` would have been compiled out).
    pub duplicate_visits: u64,
    /// Tuple rows examined by local scans while answering this query
    /// (scored, dominance-tested or filtered — the local data-plane work
    /// the paper's hop/message metrics ignore). Excluded from `PartialEq`;
    /// 0 when the executor runs with tracing off.
    pub tuples_scanned: u64,
    /// Whole columnar blocks skipped by a block-level bound test (`f⁺`
    /// below the selection threshold, min-corner dominated, or disjoint
    /// from the constraint) without touching a row. Excluded from
    /// `PartialEq`; 0 when the executor runs with tracing off.
    pub blocks_pruned: u64,
    /// Online response audits performed on remote contributions (answer
    /// envelopes and pruned-link bound witnesses). Excluded from
    /// `PartialEq`: auditing is an observation of the run, never an input
    /// to it — an audited and an unaudited execution that merged the same
    /// contributions must compare equal.
    pub audits_run: u64,
    /// Audits that caught a corrupted contribution (tainted answer
    /// discarded, lying witness replaced). Always `<= audits_run`.
    /// Excluded from `PartialEq` like [`audits_run`](QueryMetrics::audits_run).
    pub audits_failed: u64,
    /// Peers newly quarantined when this query's merged audit verdicts
    /// were flushed into the overlay's [`Quarantine`](crate::quarantine::Quarantine)
    /// registry. Excluded from `PartialEq`.
    pub quarantined_peers: u64,
    /// Tuples discarded from tainted answer payloads before they could
    /// reach the answer stream. Excluded from `PartialEq`.
    pub tainted_tuples_discarded: u64,
    /// Rows this query read from store memtable overlays (unfrozen tails)
    /// rather than frozen columnar runs. Excluded from `PartialEq` like
    /// [`tuples_scanned`](QueryMetrics::tuples_scanned): where a row was
    /// read is write-path provenance, never an outcome.
    pub memtable_hits: u64,
    /// Tombstone-masked rows skipped by this query's scans and projection
    /// walks. Excluded from `PartialEq`.
    pub tombstones_masked: u64,
    /// Store compaction passes that ran inside this query's scan brackets
    /// (mutating harnesses can bracket ingest batches; pure queries report
    /// 0). Excluded from `PartialEq`.
    pub compactions_run: u64,
    /// Rows physically rewritten by the store write path (memtable freezes
    /// and run compactions) inside this query's scan brackets — the
    /// numerator of write amplification. Excluded from `PartialEq`.
    pub write_amplification: u64,
    /// When `true`, [`visit`](QueryMetrics::visit) does *not* append to
    /// [`visited`](QueryMetrics::visited): counters stay exact but the
    /// O(visits) trace is not retained. Inverted so that
    /// `QueryMetrics::default()` keeps today's tracing-on behaviour (and
    /// every existing struct literal still means "trace on"). Large bench
    /// sweeps construct ledgers with [`with_trace(false)`]
    /// (QueryMetrics::with_trace) to keep memory O(1) per query — at the
    /// cost of the per-peer congestion histogram, which needs the trace.
    pub trace_off: bool,
    /// The ordered sequence of peers that processed this query (one entry
    /// per processing event, so `visited.len() == peers_visited` while
    /// tracing is on). Feeds the per-peer congestion histogram in
    /// [`MetricsAggregator`] and — because it participates in `PartialEq` —
    /// lets equivalence tests assert that two execution paths touched the
    /// same peers in the same order.
    pub visited: Vec<PeerId>,
    /// The adaptive planner's decision for this query, when one ran
    /// (`None` for statically-configured executions). Stamped *after* the
    /// run completes and excluded from `PartialEq`, so a planner-chosen
    /// execution's ledger compares equal to the identical static execution —
    /// the plan is provenance, not cost.
    pub plan: Option<Plan>,
    /// Wall-clock nanoseconds this query waited in the serving frontier
    /// between admission and dispatch (0 for queries run directly through
    /// an executor). Stamped by the `QueryService`; excluded from
    /// `PartialEq` so a served ledger compares equal to the identical
    /// standalone execution — scheduling delay is provenance, not cost.
    pub queue_wait_ns: u64,
    /// `true` when this outcome was answered from the service's shared
    /// result cache instead of a fresh execution. Excluded from `PartialEq`
    /// for the same reason as [`queue_wait_ns`](QueryMetrics::queue_wait_ns).
    pub cache_hit: bool,
    /// The overlay generation (`snapshot_generation`) this query was pinned
    /// to by the service's epoch handshake, or `None` for direct executor
    /// runs. Excluded from `PartialEq`: it restates the certificate's
    /// generation stamp as provenance on the ledger.
    pub served_generation: Option<u64>,
}

impl PartialEq for QueryMetrics {
    fn eq(&self, other: &Self) -> bool {
        // Destructure so adding a field is a compile error here: every new
        // counter must explicitly choose a side of the equality contract.
        let Self {
            latency,
            query_messages,
            response_messages,
            peers_visited,
            tuples_transferred,
            retries,
            timeouts,
            messages_dropped,
            repair_messages,
            replica_hits,
            stale_reads,
            replica_bytes,
            repair_transfers,
            duplicate_visits,
            tuples_scanned: _,
            blocks_pruned: _,
            audits_run: _,
            audits_failed: _,
            quarantined_peers: _,
            tainted_tuples_discarded: _,
            memtable_hits: _,
            tombstones_masked: _,
            compactions_run: _,
            write_amplification: _,
            trace_off,
            visited,
            plan: _,
            queue_wait_ns: _,
            cache_hit: _,
            served_generation: _,
        } = self;
        *latency == other.latency
            && *query_messages == other.query_messages
            && *response_messages == other.response_messages
            && *peers_visited == other.peers_visited
            && *tuples_transferred == other.tuples_transferred
            && *retries == other.retries
            && *timeouts == other.timeouts
            && *messages_dropped == other.messages_dropped
            && *repair_messages == other.repair_messages
            && *replica_hits == other.replica_hits
            && *stale_reads == other.stale_reads
            && *replica_bytes == other.replica_bytes
            && *repair_transfers == other.repair_transfers
            && *duplicate_visits == other.duplicate_visits
            && *trace_off == other.trace_off
            && *visited == other.visited
    }
}

impl QueryMetrics {
    /// A fresh, all-zero ledger (visit tracing on).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh ledger with visit tracing switched on (`true`, the default)
    /// or off (`false`, for memory-bounded sweeps at large `n`·queries).
    pub fn with_trace(trace: bool) -> Self {
        Self {
            trace_off: !trace,
            ..Self::default()
        }
    }

    /// Records that `peer` processed one query message.
    #[inline]
    pub fn visit(&mut self, peer: PeerId) {
        self.peers_visited += 1;
        if !self.trace_off {
            self.visited.push(peer);
        }
    }

    /// Records a query-forward message.
    #[inline]
    pub fn forward(&mut self) {
        self.query_messages += 1;
    }

    /// Records a response message carrying `tuples` tuples.
    #[inline]
    pub fn respond(&mut self, tuples: usize) {
        self.response_messages += 1;
        self.tuples_transferred += tuples as u64;
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.query_messages + self.response_messages
    }

    /// Folds the ledger of one completed execution *branch* into this one:
    /// all counters add and the visit trace concatenates, exactly like
    /// [`absorb_sequential`](QueryMetrics::absorb_sequential) — except that
    /// branch ledgers carry no latency (the propagation templates compute
    /// latency through their recursion, not through the ledger), which this
    /// method asserts in debug builds.
    ///
    /// Together with the branch-local vectors in [`BranchLedger`] this is
    /// the reduction step of the commutative-monoid ledger: counters are
    /// order-free, and the order-sensitive vectors are restored to the
    /// sequential executor's order by merging children in link order.
    pub fn absorb_branch(&mut self, other: &QueryMetrics) {
        debug_assert_eq!(other.latency, 0, "branch ledgers never carry latency");
        self.absorb_sequential(other);
    }

    /// Merges the ledgers of several *sequential* phases of one logical query
    /// (e.g. the iterations of the diversification greedy loop): latencies
    /// add, as do all counters.
    pub fn absorb_sequential(&mut self, other: &QueryMetrics) {
        self.latency += other.latency;
        self.query_messages += other.query_messages;
        self.response_messages += other.response_messages;
        self.peers_visited += other.peers_visited;
        self.tuples_transferred += other.tuples_transferred;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.messages_dropped += other.messages_dropped;
        self.repair_messages += other.repair_messages;
        self.replica_hits += other.replica_hits;
        self.stale_reads += other.stale_reads;
        self.replica_bytes += other.replica_bytes;
        self.repair_transfers += other.repair_transfers;
        self.duplicate_visits += other.duplicate_visits;
        self.tuples_scanned += other.tuples_scanned;
        self.blocks_pruned += other.blocks_pruned;
        self.audits_run += other.audits_run;
        self.audits_failed += other.audits_failed;
        self.quarantined_peers += other.quarantined_peers;
        self.tainted_tuples_discarded += other.tainted_tuples_discarded;
        self.memtable_hits += other.memtable_hits;
        self.tombstones_masked += other.tombstones_masked;
        self.compactions_run += other.compactions_run;
        self.write_amplification += other.write_amplification;
        if !self.trace_off {
            self.visited.extend_from_slice(&other.visited);
        }
    }
}

/// The partial ledger of one execution branch — the per-branch element of
/// the commutative-monoid cost accounting that makes intra-query parallel
/// execution bit-identical to a sequential walk.
///
/// A sequential executor threads *one* mutable state through its depth-first
/// recursion; a parallel executor cannot. Instead, every independent
/// restriction-area subtree accumulates into its own `BranchLedger`, and a
/// parent folds its children back in **deterministic link order** via
/// [`merge_child`](BranchLedger::merge_child). The three kinds of content
/// recover the sequential order as follows:
///
/// * **counters** (messages, retries, drops, visits, …) are sums —
///   genuinely commutative, any merge order works;
/// * **`metrics.visited`** is the DFS *pre-order* trace: the owner records
///   its own visit before spawning children, so `[self] ++ children` in
///   link order reproduces the sequential trace;
/// * **`answers`** is the DFS *post-order* stream: the owner appends its own
///   local answer only after merging children, so `children ++ [self]`
///   reproduces the sequential arrival order at the initiator;
/// * **`unreachable`** interleaves per-edge (each branch starts with the
///   delivery attempts of the edge that reached it), so plain link-order
///   concatenation reproduces the sequential abandonment order that
///   `Coverage` reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BranchLedger {
    /// The branch's cost counters and visit trace. `latency` stays 0 —
    /// completion time is computed by the propagation recursion (max for
    /// parallel children, sum for sequential ones), not by ledger merges.
    pub metrics: QueryMetrics,
    /// Local answers deposited by the branch's peers, in sequential
    /// (post-order) arrival order.
    pub answers: Vec<Tuple>,
    /// Absolute volumes of restriction areas abandoned inside the branch,
    /// in sequential abandonment order.
    pub unreachable: Vec<f64>,
    /// Certificate tiles recorded by the branch, in sequential emission
    /// order, or `None` when certificate emission is disabled. Like the
    /// other streams this concatenates under link-order merging, so the
    /// parallel executor reproduces the sequential certificate bit-for-bit.
    pub cert: Option<Vec<CertRegion>>,
    /// Audit verdicts (`(peer, tainted)`) recorded by the branch's online
    /// response audits, in emission order. Never consulted mid-query; the
    /// executor flushes the merged stream into the overlay's quarantine
    /// registry after the walk completes, and the registry's per-peer
    /// reduction is order-free — so the link-order concatenation is for
    /// uniformity, not correctness.
    pub audits: Vec<(PeerId, bool)>,
}

impl BranchLedger {
    /// A fresh, empty branch ledger (the monoid identity) with visit
    /// tracing on (`true`) or off (`false`) and certificate emission off.
    pub fn new(trace: bool) -> Self {
        Self {
            metrics: QueryMetrics::with_trace(trace),
            ..Self::default()
        }
    }

    /// A fresh branch ledger with certificate emission on (`certs = true`)
    /// or off. Emission state must agree across every ledger merged into
    /// the same query, or tiles recorded by a child would be dropped.
    pub fn with_certificates(trace: bool, certs: bool) -> Self {
        Self {
            metrics: QueryMetrics::with_trace(trace),
            cert: certs.then(Vec::new),
            ..Self::default()
        }
    }

    /// Appends a certificate tile, or does nothing when emission is off.
    /// Taking the entry lazily keeps the disabled path free of witness
    /// construction cost.
    pub fn certify(&mut self, entry: impl FnOnce() -> CertRegion) {
        if let Some(cert) = self.cert.as_mut() {
            cert.push(entry());
        }
    }

    /// Records that `answer` was sent to the initiator by a peer of this
    /// branch: one response message carrying the tuples, appended to the
    /// branch's answer stream.
    pub fn answer(&mut self, answer: Vec<Tuple>) {
        self.metrics.respond(answer.len());
        self.answers.extend(answer);
    }

    /// Folds a completed child branch into this ledger. Callers must invoke
    /// this in **link order** (the order the sequential executor iterates a
    /// peer's links); under that discipline the merged ledger is
    /// bit-identical to the one a sequential execution produces.
    pub fn merge_child(&mut self, child: BranchLedger) {
        self.metrics.absorb_branch(&child.metrics);
        self.answers.extend(child.answers);
        self.unreachable.extend(child.unreachable);
        if let (Some(cert), Some(child_cert)) = (self.cert.as_mut(), child.cert) {
            cert.extend(child_cert);
        }
        self.audits.extend(child.audits);
    }
}

/// A concurrent visited-peer set, sharded to keep cross-thread contention
/// off the hot path of parallel intra-query execution.
///
/// Restriction areas guarantee sibling subtrees are peer-disjoint, so in a
/// healthy run no two threads ever contend for the same *peer* — but they
/// would contend for a single set's lock. Sharding by a mixed peer hash
/// makes concurrent inserts effectively lock-free in practice while keeping
/// the anomaly semantics of the sequential executor exact: the **total**
/// duplicate-visit count (visits minus distinct peers) is order-free, so a
/// parallel run reports bit-identically the same
/// [`duplicate_visits`](QueryMetrics::duplicate_visits) as a sequential
/// one, no matter which thread loses an insert race.
#[derive(Debug)]
pub struct ShardedVisited {
    shards: Box<[Mutex<FxHashSet<PeerId>>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
}

impl ShardedVisited {
    /// A set pre-sized for `expected` distinct peers (use the overlay's
    /// `peer_count()`), sharded `shards`-ways (rounded up to a power of
    /// two, at least 1).
    pub fn new(expected: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = expected.div_ceil(n);
        let shards: Vec<Mutex<FxHashSet<PeerId>>> = (0..n)
            .map(|_| Mutex::new(fx_set_with_capacity(per_shard)))
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Inserts `peer`, returning `true` iff it was not yet present (the
    /// same contract as `HashSet::insert`).
    pub fn insert(&self, peer: PeerId) -> bool {
        let shard = mix64(peer.index() as u64) as usize & self.mask;
        self.shards[shard]
            .lock()
            .expect("visited shard poisoned")
            .insert(peer)
    }

    /// Number of distinct peers inserted so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("visited shard poisoned").len())
            .sum()
    }

    /// True when no peer was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Summary statistics for one experimental point (one x-axis position of a
/// paper figure): averages over many queries, possibly over many networks.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSummary {
    /// Number of queries aggregated.
    pub queries: u64,
    /// Mean latency in hops.
    pub latency: f64,
    /// Maximum latency observed.
    pub latency_max: u64,
    /// Congestion: average queries processed per peer, when `network_size`
    /// queries are issued (= mean peer-visits per query).
    pub congestion: f64,
    /// Mean messages (query + response) per query.
    pub messages: f64,
    /// Mean tuples transferred per query.
    pub tuples: f64,
    /// Hottest peer: the number of queries processed by the most-visited
    /// single peer over the whole point (an absolute count, not a per-query
    /// average). The mean congestion hides hotspots; this exposes them.
    pub congestion_max: u64,
    /// Mean retransmissions per query (0 without fault injection).
    pub retries: f64,
    /// Mean sender-side timeouts per query.
    pub timeouts: f64,
    /// Mean query-forward messages lost in transit per query.
    pub messages_dropped: f64,
    /// Mean overlay repair messages charged to a query.
    pub repair_messages: f64,
    /// Mean dead-owner regions answered from a replica per query.
    pub replica_hits: f64,
    /// Mean stale replica reads per query (copy behind the owner's latest
    /// store generation).
    pub stale_reads: f64,
    /// Mean simulated replica payload bytes fetched per query.
    pub replica_bytes: f64,
    /// Mean replica capture/promotion transfers charged per query.
    pub repair_transfers: f64,
    /// Total duplicate-visit anomalies across the point (should be 0; any
    /// other value flags restriction-area breakage under faults).
    pub duplicate_visits: u64,
    /// Mean tuple rows examined by local scans per query (data-plane work;
    /// 0 when the executor ran with tracing off).
    pub tuples_scanned: f64,
    /// Mean columnar blocks skipped by block-level bound tests per query.
    pub blocks_pruned: f64,
    /// Mean online response audits run per query (0 with the corruption
    /// machinery disengaged).
    pub audits_run: f64,
    /// Mean audits per query that caught a corrupted contribution.
    pub audits_failed: f64,
    /// Total peers newly quarantined across the point (an absolute count,
    /// like `duplicate_visits`: quarantine is a registry event, not a
    /// per-query average).
    pub quarantined_peers: u64,
    /// Mean tuples discarded from tainted payloads per query.
    pub tainted_tuples_discarded: f64,
    /// Mean rows read from store memtable overlays per query.
    pub memtable_hits: f64,
    /// Mean tombstone-masked rows skipped per query.
    pub tombstones_masked: f64,
    /// Total store compaction passes observed across the point (an
    /// absolute count, like `quarantined_peers`: compactions are store
    /// events amortised over many queries, not per-query costs).
    pub compactions_run: u64,
    /// Mean rows physically rewritten by the store write path per query
    /// (0 for pure query batches; ingest benches bracket their mutation
    /// batches to surface it).
    pub write_amplification: f64,
    /// Mean nanoseconds spent waiting in the serving frontier per query
    /// (0 for batches run directly through an executor).
    pub queue_wait_ns: f64,
    /// Total queries in the point answered from the service's shared result
    /// cache (an absolute count, like `duplicate_visits`: hit *rates* are
    /// workload properties, so the raw count is the honest figure datum).
    pub cache_hits: u64,
}

impl PointSummary {
    /// The summary of an empty query batch: zero queries, all-zero
    /// statistics. This is what sweeps over zero seeds aggregate to — a
    /// well-defined identity element rather than a panic.
    pub fn empty() -> Self {
        Self {
            queries: 0,
            latency: 0.0,
            latency_max: 0,
            congestion: 0.0,
            messages: 0.0,
            tuples: 0.0,
            congestion_max: 0,
            retries: 0.0,
            timeouts: 0.0,
            messages_dropped: 0.0,
            repair_messages: 0.0,
            replica_hits: 0.0,
            stale_reads: 0.0,
            replica_bytes: 0.0,
            repair_transfers: 0.0,
            duplicate_visits: 0,
            tuples_scanned: 0.0,
            blocks_pruned: 0.0,
            audits_run: 0.0,
            audits_failed: 0.0,
            quarantined_peers: 0,
            tainted_tuples_discarded: 0.0,
            memtable_hits: 0.0,
            tombstones_masked: 0.0,
            compactions_run: 0,
            write_amplification: 0.0,
            queue_wait_ns: 0.0,
            cache_hits: 0,
        }
    }
}

/// Accumulates per-query ledgers into a [`PointSummary`].
#[derive(Clone, Debug, Default)]
pub struct MetricsAggregator {
    count: u64,
    latency_sum: u64,
    latency_max: u64,
    visits_sum: u64,
    messages_sum: u64,
    tuples_sum: u64,
    retries_sum: u64,
    timeouts_sum: u64,
    dropped_sum: u64,
    repair_sum: u64,
    replica_hits_sum: u64,
    stale_reads_sum: u64,
    replica_bytes_sum: u64,
    repair_transfers_sum: u64,
    duplicate_sum: u64,
    scanned_sum: u64,
    pruned_sum: u64,
    audits_run_sum: u64,
    audits_failed_sum: u64,
    quarantined_sum: u64,
    tainted_sum: u64,
    memtable_sum: u64,
    masked_sum: u64,
    compactions_sum: u64,
    rewritten_sum: u64,
    queue_wait_sum: u64,
    cache_hits_sum: u64,
    /// Per-peer visit histogram over all recorded queries (FxHash: the keys
    /// are simulator-internal and this map is written once per peer-visit
    /// of every recorded query — a deterministic hot path). Merging assumes
    /// both aggregators drew their peer ids from the *same* network
    /// instance (the `parallel_queries` chunking case); cross-network runs
    /// are combined at the [`PointSummary`] level instead, where only the
    /// hottest count survives.
    peer_visits: FxHashMap<PeerId, u64>,
}

impl MetricsAggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query's ledger.
    pub fn record(&mut self, m: &QueryMetrics) {
        self.count += 1;
        self.latency_sum += m.latency;
        self.latency_max = self.latency_max.max(m.latency);
        self.visits_sum += m.peers_visited;
        self.messages_sum += m.total_messages();
        self.tuples_sum += m.tuples_transferred;
        self.retries_sum += m.retries;
        self.timeouts_sum += m.timeouts;
        self.dropped_sum += m.messages_dropped;
        self.repair_sum += m.repair_messages;
        self.replica_hits_sum += m.replica_hits;
        self.stale_reads_sum += m.stale_reads;
        self.replica_bytes_sum += m.replica_bytes;
        self.repair_transfers_sum += m.repair_transfers;
        self.duplicate_sum += m.duplicate_visits;
        self.scanned_sum += m.tuples_scanned;
        self.pruned_sum += m.blocks_pruned;
        self.audits_run_sum += m.audits_run;
        self.audits_failed_sum += m.audits_failed;
        self.quarantined_sum += m.quarantined_peers;
        self.tainted_sum += m.tainted_tuples_discarded;
        self.memtable_sum += m.memtable_hits;
        self.masked_sum += m.tombstones_masked;
        self.compactions_sum += m.compactions_run;
        self.rewritten_sum += m.write_amplification;
        self.queue_wait_sum += m.queue_wait_ns;
        self.cache_hits_sum += u64::from(m.cache_hit);
        for &p in &m.visited {
            *self.peer_visits.entry(p).or_insert(0) += 1;
        }
    }

    /// Number of queries recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another aggregator over the *same network instance* in (the
    /// per-thread chunks of one query batch): per-peer visit counts add.
    pub fn merge(&mut self, other: &MetricsAggregator) {
        self.count += other.count;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.visits_sum += other.visits_sum;
        self.messages_sum += other.messages_sum;
        self.tuples_sum += other.tuples_sum;
        self.retries_sum += other.retries_sum;
        self.timeouts_sum += other.timeouts_sum;
        self.dropped_sum += other.dropped_sum;
        self.repair_sum += other.repair_sum;
        self.replica_hits_sum += other.replica_hits_sum;
        self.stale_reads_sum += other.stale_reads_sum;
        self.replica_bytes_sum += other.replica_bytes_sum;
        self.repair_transfers_sum += other.repair_transfers_sum;
        self.duplicate_sum += other.duplicate_sum;
        self.scanned_sum += other.scanned_sum;
        self.pruned_sum += other.pruned_sum;
        self.audits_run_sum += other.audits_run_sum;
        self.audits_failed_sum += other.audits_failed_sum;
        self.quarantined_sum += other.quarantined_sum;
        self.tainted_sum += other.tainted_sum;
        self.memtable_sum += other.memtable_sum;
        self.masked_sum += other.masked_sum;
        self.compactions_sum += other.compactions_sum;
        self.rewritten_sum += other.rewritten_sum;
        self.queue_wait_sum += other.queue_wait_sum;
        self.cache_hits_sum += other.cache_hits_sum;
        for (&p, &v) in &other.peer_visits {
            *self.peer_visits.entry(p).or_insert(0) += v;
        }
    }

    /// The distribution of per-peer visit counts (the congestion
    /// histogram). Only peers that processed at least one query appear as
    /// samples; untouched peers contribute nothing.
    ///
    /// # Panics
    /// Panics if no peer was ever visited.
    pub fn visit_distribution(&self) -> Distribution {
        Distribution::of(self.peer_visits.values().map(|&v| v as f64))
    }

    /// Produces the summary.
    ///
    /// # Panics
    /// Panics if no queries were recorded.
    pub fn summary(&self) -> PointSummary {
        assert!(self.count > 0, "no queries recorded");
        let n = self.count as f64;
        PointSummary {
            queries: self.count,
            latency: self.latency_sum as f64 / n,
            latency_max: self.latency_max,
            congestion: self.visits_sum as f64 / n,
            messages: self.messages_sum as f64 / n,
            tuples: self.tuples_sum as f64 / n,
            congestion_max: self.peer_visits.values().copied().max().unwrap_or(0),
            retries: self.retries_sum as f64 / n,
            timeouts: self.timeouts_sum as f64 / n,
            messages_dropped: self.dropped_sum as f64 / n,
            repair_messages: self.repair_sum as f64 / n,
            replica_hits: self.replica_hits_sum as f64 / n,
            stale_reads: self.stale_reads_sum as f64 / n,
            replica_bytes: self.replica_bytes_sum as f64 / n,
            repair_transfers: self.repair_transfers_sum as f64 / n,
            duplicate_visits: self.duplicate_sum,
            tuples_scanned: self.scanned_sum as f64 / n,
            blocks_pruned: self.pruned_sum as f64 / n,
            audits_run: self.audits_run_sum as f64 / n,
            audits_failed: self.audits_failed_sum as f64 / n,
            quarantined_peers: self.quarantined_sum,
            tainted_tuples_discarded: self.tainted_sum as f64 / n,
            memtable_hits: self.memtable_sum as f64 / n,
            tombstones_masked: self.masked_sum as f64 / n,
            compactions_run: self.compactions_sum,
            write_amplification: self.rewritten_sum as f64 / n,
            queue_wait_ns: self.queue_wait_sum as f64 / n,
            cache_hits: self.cache_hits_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counters() {
        let mut m = QueryMetrics::new();
        m.visit(PeerId::new(0));
        m.visit(PeerId::new(1));
        m.forward();
        m.respond(5);
        m.respond(0);
        assert_eq!(m.peers_visited, 2);
        assert_eq!(m.visited, vec![PeerId::new(0), PeerId::new(1)]);
        assert_eq!(m.query_messages, 1);
        assert_eq!(m.response_messages, 2);
        assert_eq!(m.tuples_transferred, 5);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn sequential_absorb_adds_latency() {
        let mut a = QueryMetrics {
            latency: 3,
            query_messages: 4,
            response_messages: 2,
            peers_visited: 5,
            tuples_transferred: 7,
            retries: 1,
            timeouts: 1,
            visited: (0..5).map(PeerId::new).collect(),
            ..QueryMetrics::default()
        };
        let b = QueryMetrics {
            latency: 2,
            query_messages: 1,
            response_messages: 1,
            peers_visited: 2,
            tuples_transferred: 3,
            retries: 2,
            messages_dropped: 2,
            repair_messages: 5,
            replica_hits: 3,
            stale_reads: 1,
            replica_bytes: 48,
            repair_transfers: 2,
            duplicate_visits: 1,
            tuples_scanned: 120,
            blocks_pruned: 4,
            audits_run: 6,
            audits_failed: 2,
            quarantined_peers: 1,
            tainted_tuples_discarded: 9,
            memtable_hits: 30,
            tombstones_masked: 11,
            compactions_run: 1,
            write_amplification: 256,
            visited: vec![PeerId::new(0), PeerId::new(9)],
            ..QueryMetrics::default()
        };
        a.absorb_sequential(&b);
        assert_eq!(a.latency, 5);
        assert_eq!(a.peers_visited, 7);
        assert_eq!(a.tuples_transferred, 10);
        assert_eq!(a.retries, 3);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.messages_dropped, 2);
        assert_eq!(a.repair_messages, 5);
        assert_eq!(a.replica_hits, 3);
        assert_eq!(a.stale_reads, 1);
        assert_eq!(a.replica_bytes, 48);
        assert_eq!(a.repair_transfers, 2);
        assert_eq!(a.duplicate_visits, 1);
        assert_eq!(a.tuples_scanned, 120);
        assert_eq!(a.blocks_pruned, 4);
        assert_eq!(a.audits_run, 6);
        assert_eq!(a.audits_failed, 2);
        assert_eq!(a.quarantined_peers, 1);
        assert_eq!(a.tainted_tuples_discarded, 9);
        assert_eq!(a.memtable_hits, 30);
        assert_eq!(a.tombstones_masked, 11);
        assert_eq!(a.compactions_run, 1);
        assert_eq!(a.write_amplification, 256);
        assert_eq!(a.visited.len(), 7, "visit sequences concatenate");
        assert_eq!(a.visited[5], PeerId::new(0));
    }

    /// Data-plane observability never participates in ledger equality: two
    /// executions that differ only in scan effort compare equal, while any
    /// paper-metric difference still breaks equality.
    #[test]
    fn scan_counters_excluded_from_equality() {
        let base = QueryMetrics {
            latency: 3,
            peers_visited: 2,
            visited: vec![PeerId::new(0), PeerId::new(1)],
            ..QueryMetrics::default()
        };
        let mut lazier = base.clone();
        lazier.tuples_scanned = 10_000;
        lazier.blocks_pruned = 17;
        lazier.memtable_hits = 40;
        lazier.tombstones_masked = 9;
        lazier.compactions_run = 2;
        lazier.write_amplification = 512;
        assert_eq!(base, lazier, "scan effort is not an outcome");
        let mut audited = base.clone();
        audited.audits_run = 40;
        audited.audits_failed = 3;
        audited.quarantined_peers = 2;
        audited.tainted_tuples_discarded = 12;
        assert_eq!(base, audited, "audit effort is not an outcome");
        let mut served = base.clone();
        served.queue_wait_ns = 1_000_000;
        served.cache_hit = true;
        served.served_generation = Some(42);
        assert_eq!(base, served, "serving provenance is not an outcome");
        let mut different = base.clone();
        different.latency = 4;
        assert_ne!(base, different);
        let mut reordered = base.clone();
        reordered.visited.reverse();
        assert_ne!(base, reordered, "visit sequences still compared");
    }

    #[test]
    fn trace_off_counts_without_retaining() {
        let mut m = QueryMetrics::with_trace(false);
        for p in 0..100u32 {
            m.visit(PeerId::new(p));
        }
        assert_eq!(m.peers_visited, 100);
        assert!(m.visited.is_empty(), "no trace retained");
        let mut t = QueryMetrics::with_trace(true);
        t.visit(PeerId::new(3));
        m.absorb_sequential(&t);
        assert_eq!(m.peers_visited, 101);
        assert!(m.visited.is_empty(), "absorb respects the receiver's mode");
        assert_eq!(QueryMetrics::with_trace(true), QueryMetrics::default());
    }

    #[test]
    fn failure_metrics_flow_into_summary() {
        let mut agg = MetricsAggregator::new();
        for i in 0..4u64 {
            let m = QueryMetrics {
                retries: i,
                timeouts: 1,
                messages_dropped: 2 * i,
                repair_messages: 4,
                replica_hits: i,
                stale_reads: i / 2,
                replica_bytes: 24 * i,
                repair_transfers: 1,
                duplicate_visits: i % 2,
                tuples_scanned: 100 * i,
                blocks_pruned: 2 * i,
                audits_run: 8,
                audits_failed: i,
                quarantined_peers: i % 2,
                tainted_tuples_discarded: 3 * i,
                memtable_hits: 10 * i,
                tombstones_masked: 4 * i,
                compactions_run: i % 2,
                write_amplification: 64 * i,
                queue_wait_ns: 1000 * i,
                cache_hit: i % 2 == 1,
                served_generation: Some(7),
                ..QueryMetrics::default()
            };
            agg.record(&m);
        }
        let s = agg.summary();
        assert!((s.retries - 1.5).abs() < 1e-12);
        assert!((s.timeouts - 1.0).abs() < 1e-12);
        assert!((s.messages_dropped - 3.0).abs() < 1e-12);
        assert!((s.repair_messages - 4.0).abs() < 1e-12);
        assert!((s.replica_hits - 1.5).abs() < 1e-12);
        assert!((s.stale_reads - 0.5).abs() < 1e-12);
        assert!((s.replica_bytes - 36.0).abs() < 1e-12);
        assert!((s.repair_transfers - 1.0).abs() < 1e-12);
        assert_eq!(s.duplicate_visits, 2, "anomalies total, not average");
        assert!((s.tuples_scanned - 150.0).abs() < 1e-12);
        assert!((s.blocks_pruned - 3.0).abs() < 1e-12);
        assert!((s.audits_run - 8.0).abs() < 1e-12);
        assert!((s.audits_failed - 1.5).abs() < 1e-12);
        assert_eq!(s.quarantined_peers, 2, "registry events total, not average");
        assert!((s.tainted_tuples_discarded - 4.5).abs() < 1e-12);
        assert!((s.memtable_hits - 15.0).abs() < 1e-12);
        assert!((s.tombstones_masked - 6.0).abs() < 1e-12);
        assert_eq!(s.compactions_run, 2, "store events total, not average");
        assert!((s.write_amplification - 96.0).abs() < 1e-12);
        assert!((s.queue_wait_ns - 1500.0).abs() < 1e-12);
        assert_eq!(s.cache_hits, 2, "hits total, not average");
    }

    #[test]
    fn aggregation_and_summary() {
        let mut agg = MetricsAggregator::new();
        for latency in [2u64, 4, 6] {
            let mut m = QueryMetrics {
                latency,
                query_messages: latency,
                tuples_transferred: 1,
                ..QueryMetrics::default()
            };
            // peer 0 absorbs `latency` visits; higher peers one visit each
            for p in 0..10u32 {
                m.visit(PeerId::new(if u64::from(p) < latency { 0 } else { p }));
            }
            agg.record(&m);
        }
        let s = agg.summary();
        assert_eq!(s.queries, 3);
        assert!((s.latency - 4.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 6);
        assert!((s.congestion - 10.0).abs() < 1e-12);
        assert!((s.messages - 4.0).abs() < 1e-12);
        assert_eq!(s.congestion_max, 2 + 4 + 6, "peer 0 is the hotspot");
    }

    #[test]
    fn visit_histogram_and_distribution() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        let mut m = QueryMetrics::new();
        m.visit(PeerId::new(0));
        m.visit(PeerId::new(1));
        a.record(&m);
        let mut m2 = QueryMetrics::new();
        m2.visit(PeerId::new(0));
        b.record(&m2);
        // chunks of the same network: per-peer counts add on merge
        a.merge(&b);
        let d = a.visit_distribution();
        assert_eq!(d.count, 2, "two distinct peers visited");
        assert_eq!(d.max, 2.0, "peer 0 visited twice");
        assert_eq!(a.summary().congestion_max, 2);
    }

    #[test]
    fn merge_combines_networks() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        a.record(&QueryMetrics {
            latency: 10,
            ..QueryMetrics::default()
        });
        b.record(&QueryMetrics {
            latency: 20,
            ..QueryMetrics::default()
        });
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.queries, 2);
        assert!((s.latency - 15.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 20);
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_summary_panics() {
        let _ = MetricsAggregator::new().summary();
    }

    #[test]
    fn empty_point_summary_is_all_zero() {
        let e = PointSummary::empty();
        assert_eq!(e.queries, 0);
        assert_eq!(e.latency, 0.0);
        assert_eq!(e.latency_max, 0);
        assert_eq!(e.congestion_max, 0);
        assert_eq!(e.replica_hits, 0.0);
        assert_eq!(e.stale_reads, 0.0);
        assert_eq!(e.replica_bytes, 0.0);
        assert_eq!(e.repair_transfers, 0.0);
        assert_eq!(e.duplicate_visits, 0);
        assert_eq!(e.tuples_scanned, 0.0);
        assert_eq!(e.blocks_pruned, 0.0);
        assert_eq!(e.audits_run, 0.0);
        assert_eq!(e.audits_failed, 0.0);
        assert_eq!(e.quarantined_peers, 0);
        assert_eq!(e.tainted_tuples_discarded, 0.0);
        assert_eq!(e.memtable_hits, 0.0);
        assert_eq!(e.tombstones_masked, 0.0);
        assert_eq!(e.compactions_run, 0);
        assert_eq!(e.write_amplification, 0.0);
        assert_eq!(e.queue_wait_ns, 0.0);
        assert_eq!(e.cache_hits, 0);
    }

    fn ledger_with(visits: &[u32], answers: usize, unreachable: &[f64]) -> BranchLedger {
        let mut l = BranchLedger::new(true);
        for &p in visits {
            l.metrics.visit(PeerId::new(p));
        }
        l.answer(
            (0..answers as u64)
                .map(|i| Tuple::new(i, vec![0.0, 0.0]))
                .collect(),
        );
        l.unreachable.extend_from_slice(unreachable);
        l
    }

    #[test]
    fn branch_merge_restores_sequential_order() {
        // parent visits itself first (pre-order) …
        let mut parent = BranchLedger::new(true);
        parent.metrics.visit(PeerId::new(0));
        let c1 = ledger_with(&[1, 2], 2, &[0.25]);
        let c2 = ledger_with(&[3], 1, &[0.5]);
        // … merges children in link order …
        parent.merge_child(c1);
        parent.merge_child(c2);
        // … and appends its own answer last (post-order).
        parent.answer(vec![Tuple::new(9, vec![1.0, 1.0])]);
        let seq: Vec<PeerId> = [0, 1, 2, 3].into_iter().map(PeerId::new).collect();
        assert_eq!(parent.metrics.visited, seq, "pre-order visit trace");
        assert_eq!(parent.metrics.peers_visited, 4);
        let answer_ids: Vec<u64> = parent.answers.iter().map(|t| t.id).collect();
        assert_eq!(answer_ids, vec![0, 1, 0, 9], "post-order answer stream");
        assert_eq!(parent.unreachable, vec![0.25, 0.5], "abandonment order");
        assert_eq!(parent.metrics.response_messages, 3);
        assert_eq!(parent.metrics.tuples_transferred, 4);
    }

    #[test]
    fn branch_merge_respects_trace_mode() {
        let mut lean = BranchLedger::new(false);
        lean.metrics.visit(PeerId::new(0));
        lean.merge_child(ledger_with(&[1, 2], 0, &[]));
        assert_eq!(lean.metrics.peers_visited, 3);
        assert!(lean.metrics.visited.is_empty(), "trace-off stays O(1)");
    }

    #[test]
    fn sharded_visited_matches_hashset_semantics() {
        let set = ShardedVisited::new(1000, 8);
        assert!(set.is_empty());
        let mut dup = 0u64;
        // interleave fresh and repeat inserts like a broken-restriction run
        for i in 0..1000u32 {
            if !set.insert(PeerId::new(i % 400)) {
                dup += 1;
            }
        }
        assert_eq!(set.len(), 400);
        assert_eq!(dup, 600, "duplicates = visits - distinct, order-free");
    }

    #[test]
    fn sharded_visited_is_consistent_under_threads() {
        let set = ShardedVisited::new(4096, 16);
        let dup = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let set = &set;
                let dup = &dup;
                s.spawn(move || {
                    // every thread inserts the same 2048 peers
                    for i in 0..2048u32 {
                        let p = PeerId::new((i + t * 512) % 2048);
                        if !set.insert(p) {
                            dup.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let dup = dup.into_inner();
        assert_eq!(set.len(), 2048, "each peer inserted exactly once");
        assert_eq!(
            dup,
            4 * 2048 - 2048,
            "total duplicates are schedule-independent"
        );
    }
}
