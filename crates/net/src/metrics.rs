//! Query cost accounting, matching the paper's metrics (Section 7.1).
//!
//! **Latency** is the number of hops on the critical path of query
//! processing. The distributed algorithms compute it recursively exactly as
//! the proofs of Lemmas 1–3 count it: forwarding a query to a link costs one
//! hop; children contacted in parallel (`fast`) contribute the *maximum* of
//! their subtree latencies, children contacted sequentially (`slow`)
//! contribute the *sum*. State/answer responses are tallied as messages but
//! add no hops, mirroring the Lemma accounting.
//!
//! **Congestion** is "the average number of queries processed at any peer
//! when `n` uniform queries are issued" (`n` = network size): each query
//! records how many peer-visits it caused, and the aggregator averages
//! visits per query, which — with `n` queries over `n` peers — equals the
//! expected per-peer load.

use crate::peer::PeerId;

/// The cost ledger of a single distributed query execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryMetrics {
    /// Hops on the critical path (the paper's latency metric).
    pub latency: u64,
    /// Query-forward messages sent between peers.
    pub query_messages: u64,
    /// Response messages (remote local states, local answers).
    pub response_messages: u64,
    /// Number of peer-visits (processing events); drives congestion.
    pub peers_visited: u64,
    /// Tuples shipped over the wire in responses (communication volume).
    pub tuples_transferred: u64,
}

impl QueryMetrics {
    /// A fresh, all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `peer` processed one query message.
    #[inline]
    pub fn visit(&mut self, _peer: PeerId) {
        self.peers_visited += 1;
    }

    /// Records a query-forward message.
    #[inline]
    pub fn forward(&mut self) {
        self.query_messages += 1;
    }

    /// Records a response message carrying `tuples` tuples.
    #[inline]
    pub fn respond(&mut self, tuples: usize) {
        self.response_messages += 1;
        self.tuples_transferred += tuples as u64;
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.query_messages + self.response_messages
    }

    /// Merges the ledgers of several *sequential* phases of one logical query
    /// (e.g. the iterations of the diversification greedy loop): latencies
    /// add, as do all counters.
    pub fn absorb_sequential(&mut self, other: &QueryMetrics) {
        self.latency += other.latency;
        self.query_messages += other.query_messages;
        self.response_messages += other.response_messages;
        self.peers_visited += other.peers_visited;
        self.tuples_transferred += other.tuples_transferred;
    }
}

/// Summary statistics for one experimental point (one x-axis position of a
/// paper figure): averages over many queries, possibly over many networks.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSummary {
    /// Number of queries aggregated.
    pub queries: u64,
    /// Mean latency in hops.
    pub latency: f64,
    /// Maximum latency observed.
    pub latency_max: u64,
    /// Congestion: average queries processed per peer, when `network_size`
    /// queries are issued (= mean peer-visits per query).
    pub congestion: f64,
    /// Mean messages (query + response) per query.
    pub messages: f64,
    /// Mean tuples transferred per query.
    pub tuples: f64,
}

/// Accumulates per-query ledgers into a [`PointSummary`].
#[derive(Clone, Debug, Default)]
pub struct MetricsAggregator {
    count: u64,
    latency_sum: u64,
    latency_max: u64,
    visits_sum: u64,
    messages_sum: u64,
    tuples_sum: u64,
}

impl MetricsAggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query's ledger.
    pub fn record(&mut self, m: &QueryMetrics) {
        self.count += 1;
        self.latency_sum += m.latency;
        self.latency_max = self.latency_max.max(m.latency);
        self.visits_sum += m.peers_visited;
        self.messages_sum += m.total_messages();
        self.tuples_sum += m.tuples_transferred;
    }

    /// Number of queries recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another aggregator (e.g. from a different network instance) in.
    pub fn merge(&mut self, other: &MetricsAggregator) {
        self.count += other.count;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.visits_sum += other.visits_sum;
        self.messages_sum += other.messages_sum;
        self.tuples_sum += other.tuples_sum;
    }

    /// Produces the summary.
    ///
    /// # Panics
    /// Panics if no queries were recorded.
    pub fn summary(&self) -> PointSummary {
        assert!(self.count > 0, "no queries recorded");
        let n = self.count as f64;
        PointSummary {
            queries: self.count,
            latency: self.latency_sum as f64 / n,
            latency_max: self.latency_max,
            congestion: self.visits_sum as f64 / n,
            messages: self.messages_sum as f64 / n,
            tuples: self.tuples_sum as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counters() {
        let mut m = QueryMetrics::new();
        m.visit(PeerId::new(0));
        m.visit(PeerId::new(1));
        m.forward();
        m.respond(5);
        m.respond(0);
        assert_eq!(m.peers_visited, 2);
        assert_eq!(m.query_messages, 1);
        assert_eq!(m.response_messages, 2);
        assert_eq!(m.tuples_transferred, 5);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn sequential_absorb_adds_latency() {
        let mut a = QueryMetrics {
            latency: 3,
            query_messages: 4,
            response_messages: 2,
            peers_visited: 5,
            tuples_transferred: 7,
        };
        let b = QueryMetrics {
            latency: 2,
            query_messages: 1,
            response_messages: 1,
            peers_visited: 2,
            tuples_transferred: 3,
        };
        a.absorb_sequential(&b);
        assert_eq!(a.latency, 5);
        assert_eq!(a.peers_visited, 7);
        assert_eq!(a.tuples_transferred, 10);
    }

    #[test]
    fn aggregation_and_summary() {
        let mut agg = MetricsAggregator::new();
        for latency in [2u64, 4, 6] {
            let m = QueryMetrics {
                latency,
                query_messages: latency,
                response_messages: 0,
                peers_visited: 10,
                tuples_transferred: 1,
            };
            agg.record(&m);
        }
        let s = agg.summary();
        assert_eq!(s.queries, 3);
        assert!((s.latency - 4.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 6);
        assert!((s.congestion - 10.0).abs() < 1e-12);
        assert!((s.messages - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_networks() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        a.record(&QueryMetrics {
            latency: 10,
            ..QueryMetrics::default()
        });
        b.record(&QueryMetrics {
            latency: 20,
            ..QueryMetrics::default()
        });
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.queries, 2);
        assert!((s.latency - 15.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 20);
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_summary_panics() {
        let _ = MetricsAggregator::new().summary();
    }
}
