//! Query cost accounting, matching the paper's metrics (Section 7.1).
//!
//! **Latency** is the number of hops on the critical path of query
//! processing. The distributed algorithms compute it recursively exactly as
//! the proofs of Lemmas 1–3 count it: forwarding a query to a link costs one
//! hop; children contacted in parallel (`fast`) contribute the *maximum* of
//! their subtree latencies, children contacted sequentially (`slow`)
//! contribute the *sum*. State/answer responses are tallied as messages but
//! add no hops, mirroring the Lemma accounting.
//!
//! **Congestion** is "the average number of queries processed at any peer
//! when `n` uniform queries are issued" (`n` = network size): each query
//! records how many peer-visits it caused, and the aggregator averages
//! visits per query, which — with `n` queries over `n` peers — equals the
//! expected per-peer load.

use std::collections::HashMap;

use crate::peer::PeerId;
use crate::stats::Distribution;

/// The cost ledger of a single distributed query execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryMetrics {
    /// Hops on the critical path (the paper's latency metric).
    pub latency: u64,
    /// Query-forward messages sent between peers.
    pub query_messages: u64,
    /// Response messages (remote local states, local answers).
    pub response_messages: u64,
    /// Number of peer-visits (processing events); drives congestion.
    pub peers_visited: u64,
    /// Tuples shipped over the wire in responses (communication volume).
    pub tuples_transferred: u64,
    /// Retransmissions performed after presumed-lost messages.
    pub retries: u64,
    /// Sender-side timeouts that fired (each contributes its wait to
    /// latency, per the fault model in `ripple-core`'s executor).
    pub timeouts: u64,
    /// Query-forward messages lost in transit (fault injection).
    pub messages_dropped: u64,
    /// Maintenance messages spent repairing crash damage that this query's
    /// processing triggered or observed (overlay repair protocols).
    pub repair_messages: u64,
    /// Processing events at a peer that had already processed this query —
    /// an always-on anomaly counter (restriction areas guarantee this is 0;
    /// a nonzero value flags restriction-area breakage even in release
    /// builds, where the old `debug_assert!` would have been compiled out).
    pub duplicate_visits: u64,
    /// When `true`, [`visit`](QueryMetrics::visit) does *not* append to
    /// [`visited`](QueryMetrics::visited): counters stay exact but the
    /// O(visits) trace is not retained. Inverted so that
    /// `QueryMetrics::default()` keeps today's tracing-on behaviour (and
    /// every existing struct literal still means "trace on"). Large bench
    /// sweeps construct ledgers with [`with_trace(false)`]
    /// (QueryMetrics::with_trace) to keep memory O(1) per query — at the
    /// cost of the per-peer congestion histogram, which needs the trace.
    pub trace_off: bool,
    /// The ordered sequence of peers that processed this query (one entry
    /// per processing event, so `visited.len() == peers_visited` while
    /// tracing is on). Feeds the per-peer congestion histogram in
    /// [`MetricsAggregator`] and — because it participates in `PartialEq` —
    /// lets equivalence tests assert that two execution paths touched the
    /// same peers in the same order.
    pub visited: Vec<PeerId>,
}

impl QueryMetrics {
    /// A fresh, all-zero ledger (visit tracing on).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh ledger with visit tracing switched on (`true`, the default)
    /// or off (`false`, for memory-bounded sweeps at large `n`·queries).
    pub fn with_trace(trace: bool) -> Self {
        Self {
            trace_off: !trace,
            ..Self::default()
        }
    }

    /// Records that `peer` processed one query message.
    #[inline]
    pub fn visit(&mut self, peer: PeerId) {
        self.peers_visited += 1;
        if !self.trace_off {
            self.visited.push(peer);
        }
    }

    /// Records a query-forward message.
    #[inline]
    pub fn forward(&mut self) {
        self.query_messages += 1;
    }

    /// Records a response message carrying `tuples` tuples.
    #[inline]
    pub fn respond(&mut self, tuples: usize) {
        self.response_messages += 1;
        self.tuples_transferred += tuples as u64;
    }

    /// Total messages of any kind.
    pub fn total_messages(&self) -> u64 {
        self.query_messages + self.response_messages
    }

    /// Merges the ledgers of several *sequential* phases of one logical query
    /// (e.g. the iterations of the diversification greedy loop): latencies
    /// add, as do all counters.
    pub fn absorb_sequential(&mut self, other: &QueryMetrics) {
        self.latency += other.latency;
        self.query_messages += other.query_messages;
        self.response_messages += other.response_messages;
        self.peers_visited += other.peers_visited;
        self.tuples_transferred += other.tuples_transferred;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.messages_dropped += other.messages_dropped;
        self.repair_messages += other.repair_messages;
        self.duplicate_visits += other.duplicate_visits;
        if !self.trace_off {
            self.visited.extend_from_slice(&other.visited);
        }
    }
}

/// Summary statistics for one experimental point (one x-axis position of a
/// paper figure): averages over many queries, possibly over many networks.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSummary {
    /// Number of queries aggregated.
    pub queries: u64,
    /// Mean latency in hops.
    pub latency: f64,
    /// Maximum latency observed.
    pub latency_max: u64,
    /// Congestion: average queries processed per peer, when `network_size`
    /// queries are issued (= mean peer-visits per query).
    pub congestion: f64,
    /// Mean messages (query + response) per query.
    pub messages: f64,
    /// Mean tuples transferred per query.
    pub tuples: f64,
    /// Hottest peer: the number of queries processed by the most-visited
    /// single peer over the whole point (an absolute count, not a per-query
    /// average). The mean congestion hides hotspots; this exposes them.
    pub congestion_max: u64,
    /// Mean retransmissions per query (0 without fault injection).
    pub retries: f64,
    /// Mean sender-side timeouts per query.
    pub timeouts: f64,
    /// Mean query-forward messages lost in transit per query.
    pub messages_dropped: f64,
    /// Mean overlay repair messages charged to a query.
    pub repair_messages: f64,
    /// Total duplicate-visit anomalies across the point (should be 0; any
    /// other value flags restriction-area breakage under faults).
    pub duplicate_visits: u64,
}

/// Accumulates per-query ledgers into a [`PointSummary`].
#[derive(Clone, Debug, Default)]
pub struct MetricsAggregator {
    count: u64,
    latency_sum: u64,
    latency_max: u64,
    visits_sum: u64,
    messages_sum: u64,
    tuples_sum: u64,
    retries_sum: u64,
    timeouts_sum: u64,
    dropped_sum: u64,
    repair_sum: u64,
    duplicate_sum: u64,
    /// Per-peer visit histogram over all recorded queries. Merging assumes
    /// both aggregators drew their peer ids from the *same* network
    /// instance (the `parallel_queries` chunking case); cross-network runs
    /// are combined at the [`PointSummary`] level instead, where only the
    /// hottest count survives.
    peer_visits: HashMap<PeerId, u64>,
}

impl MetricsAggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query's ledger.
    pub fn record(&mut self, m: &QueryMetrics) {
        self.count += 1;
        self.latency_sum += m.latency;
        self.latency_max = self.latency_max.max(m.latency);
        self.visits_sum += m.peers_visited;
        self.messages_sum += m.total_messages();
        self.tuples_sum += m.tuples_transferred;
        self.retries_sum += m.retries;
        self.timeouts_sum += m.timeouts;
        self.dropped_sum += m.messages_dropped;
        self.repair_sum += m.repair_messages;
        self.duplicate_sum += m.duplicate_visits;
        for &p in &m.visited {
            *self.peer_visits.entry(p).or_insert(0) += 1;
        }
    }

    /// Number of queries recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another aggregator over the *same network instance* in (the
    /// per-thread chunks of one query batch): per-peer visit counts add.
    pub fn merge(&mut self, other: &MetricsAggregator) {
        self.count += other.count;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.visits_sum += other.visits_sum;
        self.messages_sum += other.messages_sum;
        self.tuples_sum += other.tuples_sum;
        self.retries_sum += other.retries_sum;
        self.timeouts_sum += other.timeouts_sum;
        self.dropped_sum += other.dropped_sum;
        self.repair_sum += other.repair_sum;
        self.duplicate_sum += other.duplicate_sum;
        for (&p, &v) in &other.peer_visits {
            *self.peer_visits.entry(p).or_insert(0) += v;
        }
    }

    /// The distribution of per-peer visit counts (the congestion
    /// histogram). Only peers that processed at least one query appear as
    /// samples; untouched peers contribute nothing.
    ///
    /// # Panics
    /// Panics if no peer was ever visited.
    pub fn visit_distribution(&self) -> Distribution {
        Distribution::of(self.peer_visits.values().map(|&v| v as f64))
    }

    /// Produces the summary.
    ///
    /// # Panics
    /// Panics if no queries were recorded.
    pub fn summary(&self) -> PointSummary {
        assert!(self.count > 0, "no queries recorded");
        let n = self.count as f64;
        PointSummary {
            queries: self.count,
            latency: self.latency_sum as f64 / n,
            latency_max: self.latency_max,
            congestion: self.visits_sum as f64 / n,
            messages: self.messages_sum as f64 / n,
            tuples: self.tuples_sum as f64 / n,
            congestion_max: self.peer_visits.values().copied().max().unwrap_or(0),
            retries: self.retries_sum as f64 / n,
            timeouts: self.timeouts_sum as f64 / n,
            messages_dropped: self.dropped_sum as f64 / n,
            repair_messages: self.repair_sum as f64 / n,
            duplicate_visits: self.duplicate_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counters() {
        let mut m = QueryMetrics::new();
        m.visit(PeerId::new(0));
        m.visit(PeerId::new(1));
        m.forward();
        m.respond(5);
        m.respond(0);
        assert_eq!(m.peers_visited, 2);
        assert_eq!(m.visited, vec![PeerId::new(0), PeerId::new(1)]);
        assert_eq!(m.query_messages, 1);
        assert_eq!(m.response_messages, 2);
        assert_eq!(m.tuples_transferred, 5);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn sequential_absorb_adds_latency() {
        let mut a = QueryMetrics {
            latency: 3,
            query_messages: 4,
            response_messages: 2,
            peers_visited: 5,
            tuples_transferred: 7,
            retries: 1,
            timeouts: 1,
            visited: (0..5).map(PeerId::new).collect(),
            ..QueryMetrics::default()
        };
        let b = QueryMetrics {
            latency: 2,
            query_messages: 1,
            response_messages: 1,
            peers_visited: 2,
            tuples_transferred: 3,
            retries: 2,
            messages_dropped: 2,
            repair_messages: 5,
            duplicate_visits: 1,
            visited: vec![PeerId::new(0), PeerId::new(9)],
            ..QueryMetrics::default()
        };
        a.absorb_sequential(&b);
        assert_eq!(a.latency, 5);
        assert_eq!(a.peers_visited, 7);
        assert_eq!(a.tuples_transferred, 10);
        assert_eq!(a.retries, 3);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.messages_dropped, 2);
        assert_eq!(a.repair_messages, 5);
        assert_eq!(a.duplicate_visits, 1);
        assert_eq!(a.visited.len(), 7, "visit sequences concatenate");
        assert_eq!(a.visited[5], PeerId::new(0));
    }

    #[test]
    fn trace_off_counts_without_retaining() {
        let mut m = QueryMetrics::with_trace(false);
        for p in 0..100u32 {
            m.visit(PeerId::new(p));
        }
        assert_eq!(m.peers_visited, 100);
        assert!(m.visited.is_empty(), "no trace retained");
        let mut t = QueryMetrics::with_trace(true);
        t.visit(PeerId::new(3));
        m.absorb_sequential(&t);
        assert_eq!(m.peers_visited, 101);
        assert!(m.visited.is_empty(), "absorb respects the receiver's mode");
        assert_eq!(QueryMetrics::with_trace(true), QueryMetrics::default());
    }

    #[test]
    fn failure_metrics_flow_into_summary() {
        let mut agg = MetricsAggregator::new();
        for i in 0..4u64 {
            let m = QueryMetrics {
                retries: i,
                timeouts: 1,
                messages_dropped: 2 * i,
                repair_messages: 4,
                duplicate_visits: i % 2,
                ..QueryMetrics::default()
            };
            agg.record(&m);
        }
        let s = agg.summary();
        assert!((s.retries - 1.5).abs() < 1e-12);
        assert!((s.timeouts - 1.0).abs() < 1e-12);
        assert!((s.messages_dropped - 3.0).abs() < 1e-12);
        assert!((s.repair_messages - 4.0).abs() < 1e-12);
        assert_eq!(s.duplicate_visits, 2, "anomalies total, not average");
    }

    #[test]
    fn aggregation_and_summary() {
        let mut agg = MetricsAggregator::new();
        for latency in [2u64, 4, 6] {
            let mut m = QueryMetrics {
                latency,
                query_messages: latency,
                tuples_transferred: 1,
                ..QueryMetrics::default()
            };
            // peer 0 absorbs `latency` visits; higher peers one visit each
            for p in 0..10u32 {
                m.visit(PeerId::new(if u64::from(p) < latency { 0 } else { p }));
            }
            agg.record(&m);
        }
        let s = agg.summary();
        assert_eq!(s.queries, 3);
        assert!((s.latency - 4.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 6);
        assert!((s.congestion - 10.0).abs() < 1e-12);
        assert!((s.messages - 4.0).abs() < 1e-12);
        assert_eq!(s.congestion_max, 2 + 4 + 6, "peer 0 is the hotspot");
    }

    #[test]
    fn visit_histogram_and_distribution() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        let mut m = QueryMetrics::new();
        m.visit(PeerId::new(0));
        m.visit(PeerId::new(1));
        a.record(&m);
        let mut m2 = QueryMetrics::new();
        m2.visit(PeerId::new(0));
        b.record(&m2);
        // chunks of the same network: per-peer counts add on merge
        a.merge(&b);
        let d = a.visit_distribution();
        assert_eq!(d.count, 2, "two distinct peers visited");
        assert_eq!(d.max, 2.0, "peer 0 visited twice");
        assert_eq!(a.summary().congestion_max, 2);
    }

    #[test]
    fn merge_combines_networks() {
        let mut a = MetricsAggregator::new();
        let mut b = MetricsAggregator::new();
        a.record(&QueryMetrics {
            latency: 10,
            ..QueryMetrics::default()
        });
        b.record(&QueryMetrics {
            latency: 20,
            ..QueryMetrics::default()
        });
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.queries, 2);
        assert!((s.latency - 15.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 20);
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_summary_panics() {
        let _ = MetricsAggregator::new().summary();
    }
}
