//! Network dynamics: the two-stage churn schedule of Section 7.1.
//!
//! The paper simulates "a dynamic topology that captures arbitrary physical
//! peer joins and departures, in two distinct stages": an *increasing* stage
//! growing the overlay from 1,024 to 131,072 peers (joins only), and a
//! *decreasing* stage shrinking it back (departures only). Measurements are
//! taken whenever the network size crosses a power of two.

use crate::rng::Rng;

/// The churn stage currently driving the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnStage {
    /// Peers continuously join; none depart.
    Increasing,
    /// Peers continuously depart; none join.
    Decreasing,
}

/// The maintenance interface an overlay must expose to be driven by churn.
///
/// All four overlays (MIDAS, CAN, BATON, Chord) implement this; the
/// experiment harness is generic over it.
pub trait ChurnOverlay {
    /// Current number of live peers.
    fn peer_count(&self) -> usize;

    /// A new physical peer joins at a position chosen by `rng`
    /// (e.g. by routing a random key and splitting the responsible zone).
    fn churn_join(&mut self, rng: &mut dyn crate::rng::RngCore);

    /// A uniformly random live peer departs gracefully, handing its zone and
    /// data over per the overlay's protocol. No-op if only one peer remains.
    fn churn_leave(&mut self, rng: &mut dyn crate::rng::RngCore);
}

/// Grows (or shrinks) the overlay to exactly `target` peers, calling
/// `observe` every time the size crosses one of `checkpoints` (ascending for
/// growth, descending for shrink).
pub fn run_stage<O: ChurnOverlay + ?Sized, R: Rng>(
    overlay: &mut O,
    stage: ChurnStage,
    target: usize,
    checkpoints: &[usize],
    rng: &mut R,
    mut observe: impl FnMut(&mut O, usize),
) {
    match stage {
        ChurnStage::Increasing => {
            assert!(overlay.peer_count() <= target, "already larger than target");
            let mut next_cp = checkpoints
                .iter()
                .copied()
                .filter(|&c| c >= overlay.peer_count())
                .collect::<Vec<_>>();
            next_cp.sort_unstable();
            let mut cp_iter = next_cp.into_iter().peekable();
            // fire checkpoints already satisfied at entry
            while cp_iter.peek().is_some_and(|&c| c <= overlay.peer_count()) {
                let c = cp_iter.next().expect("peeked");
                observe(overlay, c);
            }
            while overlay.peer_count() < target {
                overlay.churn_join(rng);
                while cp_iter.peek().is_some_and(|&c| c <= overlay.peer_count()) {
                    let c = cp_iter.next().expect("peeked");
                    observe(overlay, c);
                }
            }
        }
        ChurnStage::Decreasing => {
            assert!(
                overlay.peer_count() >= target,
                "already smaller than target"
            );
            let mut next_cp = checkpoints
                .iter()
                .copied()
                .filter(|&c| c <= overlay.peer_count())
                .collect::<Vec<_>>();
            next_cp.sort_unstable_by(|a, b| b.cmp(a));
            let mut cp_iter = next_cp.into_iter().peekable();
            while cp_iter.peek().is_some_and(|&c| c >= overlay.peer_count()) {
                let c = cp_iter.next().expect("peeked");
                observe(overlay, c);
            }
            while overlay.peer_count() > target {
                overlay.churn_leave(rng);
                while cp_iter.peek().is_some_and(|&c| c >= overlay.peer_count()) {
                    let c = cp_iter.next().expect("peeked");
                    observe(overlay, c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rngs::SmallRng;
    use crate::rng::SeedableRng;

    /// A trivial overlay that only tracks its size.
    struct Counter(usize);

    impl ChurnOverlay for Counter {
        fn peer_count(&self) -> usize {
            self.0
        }
        fn churn_join(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            self.0 += 1;
        }
        fn churn_leave(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            if self.0 > 1 {
                self.0 -= 1;
            }
        }
    }

    #[test]
    fn increasing_stage_hits_checkpoints_in_order() {
        let mut o = Counter(4);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            32,
            &[4, 8, 16, 32],
            &mut rng,
            |ov, cp| {
                assert!(ov.peer_count() >= cp);
                seen.push(cp);
            },
        );
        assert_eq!(seen, vec![4, 8, 16, 32]);
        assert_eq!(o.peer_count(), 32);
    }

    #[test]
    fn decreasing_stage_hits_checkpoints_in_reverse() {
        let mut o = Counter(32);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(2);
        run_stage(
            &mut o,
            ChurnStage::Decreasing,
            4,
            &[4, 8, 16, 32],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![32, 16, 8, 4]);
        assert_eq!(o.peer_count(), 4);
    }

    #[test]
    fn checkpoints_outside_range_are_ignored() {
        let mut o = Counter(10);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            12,
            &[2, 11, 100],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![11]);
    }
}
