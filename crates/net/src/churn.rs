//! Network dynamics: the two-stage churn schedule of Section 7.1.
//!
//! The paper simulates "a dynamic topology that captures arbitrary physical
//! peer joins and departures, in two distinct stages": an *increasing* stage
//! growing the overlay from 1,024 to 131,072 peers (joins only), and a
//! *decreasing* stage shrinking it back (departures only). Measurements are
//! taken whenever the network size crosses a power of two.

use crate::rng::Rng;

/// The churn stage currently driving the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnStage {
    /// Peers continuously join; none depart.
    Increasing,
    /// Peers continuously depart; none join.
    Decreasing,
}

/// The maintenance interface an overlay must expose to be driven by churn.
///
/// All four overlays (MIDAS, CAN, BATON, Chord) implement this; the
/// experiment harness is generic over it.
pub trait ChurnOverlay {
    /// Current number of live peers.
    fn peer_count(&self) -> usize;

    /// A new physical peer joins at a position chosen by `rng`
    /// (e.g. by routing a random key and splitting the responsible zone).
    fn churn_join(&mut self, rng: &mut dyn crate::rng::RngCore);

    /// A uniformly random live peer departs gracefully, handing its zone and
    /// data over per the overlay's protocol. No-op if only one peer remains.
    fn churn_leave(&mut self, rng: &mut dyn crate::rng::RngCore);

    /// A uniformly random live peer crashes *ungracefully*: no handover, no
    /// goodbye — its zone is orphaned (and its data lost) until the
    /// overlay's repair protocol reclaims it. Returns the crashed peer's
    /// stable index, or `None` if the overlay cannot afford a crash (only
    /// one peer left, or the overlay pins an immortal anchor).
    ///
    /// The default implementation returns `None` (crash-unaware overlay),
    /// so substrates without a repair protocol keep compiling; the fault
    /// plane's `crash_quota` simply has no effect on them.
    fn churn_crash(&mut self, rng: &mut dyn crate::rng::RngCore) -> Option<u32> {
        let _ = rng;
        None
    }

    /// One anti-entropy pass: re-capture every replica whose copy has
    /// fallen behind its owner's store generation (stale entries accumulate
    /// when inserts land between capture points). Returns the number of
    /// copies refreshed.
    ///
    /// [`run_stage`] invokes this at every checkpoint it fires, so a
    /// churn-driven experiment measures queries against a freshly repaired
    /// replica ledger — exactly how a deployed system would schedule
    /// periodic anti-entropy. The default is a no-op returning `0`
    /// (replication-unaware overlay, or replication disabled).
    fn anti_entropy(&mut self) -> u64 {
        0
    }
}

/// Grows (or shrinks) the overlay to exactly `target` peers, calling
/// `observe` every time the size crosses one of `checkpoints` (ascending for
/// growth, descending for shrink). Immediately before each checkpoint fires,
/// the overlay gets one [`ChurnOverlay::anti_entropy`] pass, so observers
/// measure against a repaired replica ledger.
///
/// The declared `stage` is *advisory*: crashes can leave the overlay on the
/// far side of the target (e.g. an increasing stage entered after a crash
/// wave already shrank the network past it), so the direction of travel is
/// derived from the overlay's actual size and the schedule converges from
/// either side instead of asserting. Checkpoints fire in the direction
/// actually travelled.
///
/// # Panics
/// Panics if the overlay stalls — a join or leave that does not change the
/// size (e.g. shrinking toward a target below the overlay's floor of one
/// peer), which would otherwise loop forever.
pub fn run_stage<O: ChurnOverlay + ?Sized, R: Rng>(
    overlay: &mut O,
    stage: ChurnStage,
    target: usize,
    checkpoints: &[usize],
    rng: &mut R,
    mut observe: impl FnMut(&mut O, usize),
) {
    use core::cmp::Ordering;
    let start = overlay.peer_count();
    let shrinking = match start.cmp(&target) {
        Ordering::Greater => true,
        Ordering::Less => false,
        // Already at the target: no movement; the declared stage only
        // decides which side's entry checkpoints (== start) fire.
        Ordering::Equal => stage == ChurnStage::Decreasing,
    };
    let mut cps = checkpoints
        .iter()
        .copied()
        .filter(|&c| if shrinking { c <= start } else { c >= start })
        .collect::<Vec<_>>();
    if shrinking {
        cps.sort_unstable_by(|a, b| b.cmp(a));
    } else {
        cps.sort_unstable();
    }
    let mut cp_iter = cps.into_iter().peekable();
    let crossed = |c: usize, n: usize| if shrinking { c >= n } else { c <= n };
    // fire checkpoints already satisfied at entry
    while cp_iter
        .peek()
        .is_some_and(|&c| crossed(c, overlay.peer_count()))
    {
        let c = cp_iter.next().expect("peeked");
        overlay.anti_entropy();
        observe(overlay, c);
    }
    while overlay.peer_count() != target {
        let before = overlay.peer_count();
        if shrinking {
            overlay.churn_leave(rng);
        } else {
            overlay.churn_join(rng);
        }
        assert_ne!(
            overlay.peer_count(),
            before,
            "overlay stalled before reaching the stage target"
        );
        while cp_iter
            .peek()
            .is_some_and(|&c| crossed(c, overlay.peer_count()))
        {
            let c = cp_iter.next().expect("peeked");
            overlay.anti_entropy();
            observe(overlay, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rngs::SmallRng;
    use crate::rng::SeedableRng;

    /// A trivial overlay that only tracks its size.
    struct Counter(usize);

    impl ChurnOverlay for Counter {
        fn peer_count(&self) -> usize {
            self.0
        }
        fn churn_join(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            self.0 += 1;
        }
        fn churn_leave(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            if self.0 > 1 {
                self.0 -= 1;
            }
        }
    }

    #[test]
    fn increasing_stage_hits_checkpoints_in_order() {
        let mut o = Counter(4);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            32,
            &[4, 8, 16, 32],
            &mut rng,
            |ov, cp| {
                assert!(ov.peer_count() >= cp);
                seen.push(cp);
            },
        );
        assert_eq!(seen, vec![4, 8, 16, 32]);
        assert_eq!(o.peer_count(), 32);
    }

    #[test]
    fn decreasing_stage_hits_checkpoints_in_reverse() {
        let mut o = Counter(32);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(2);
        run_stage(
            &mut o,
            ChurnStage::Decreasing,
            4,
            &[4, 8, 16, 32],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![32, 16, 8, 4]);
        assert_eq!(o.peer_count(), 4);
    }

    #[test]
    fn increasing_stage_past_target_converges_down() {
        // A crash wave (or any prior dynamics) can leave the overlay on the
        // far side of the target; the old implementation assert-panicked
        // here. The stage must converge and fire checkpoints descending.
        let mut o = Counter(40);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(4);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            8,
            &[8, 16, 32, 64],
            &mut rng,
            |ov, cp| {
                assert!(ov.peer_count() <= cp);
                seen.push(cp);
            },
        );
        assert_eq!(seen, vec![32, 16, 8]);
        assert_eq!(o.peer_count(), 8);
    }

    #[test]
    fn decreasing_stage_below_target_converges_up() {
        let mut o = Counter(3);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        run_stage(
            &mut o,
            ChurnStage::Decreasing,
            10,
            &[4, 8, 16],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![4, 8]);
        assert_eq!(o.peer_count(), 10);
    }

    #[test]
    fn at_target_fires_entry_checkpoint_once() {
        for stage in [ChurnStage::Increasing, ChurnStage::Decreasing] {
            let mut o = Counter(16);
            let mut seen = Vec::new();
            let mut rng = SmallRng::seed_from_u64(6);
            run_stage(&mut o, stage, 16, &[8, 16, 32], &mut rng, |_, cp| {
                seen.push(cp)
            });
            assert_eq!(seen, vec![16], "stage {stage:?}");
            assert_eq!(o.peer_count(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn stalled_overlay_is_detected() {
        // Counter refuses to drop below one peer; a target of 0 must panic
        // (stall detection) rather than loop forever.
        let mut o = Counter(2);
        let mut rng = SmallRng::seed_from_u64(7);
        run_stage(&mut o, ChurnStage::Decreasing, 0, &[], &mut rng, |_, _| {});
    }

    #[test]
    fn default_churn_crash_is_inert() {
        let mut o = Counter(5);
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(o.churn_crash(&mut rng), None);
        assert_eq!(o.peer_count(), 5);
        assert_eq!(o.anti_entropy(), 0, "default anti-entropy is a no-op");
    }

    /// An overlay that counts anti-entropy passes.
    struct Sweeping {
        size: usize,
        sweeps: usize,
    }

    impl ChurnOverlay for Sweeping {
        fn peer_count(&self) -> usize {
            self.size
        }
        fn churn_join(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            self.size += 1;
        }
        fn churn_leave(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            self.size = self.size.saturating_sub(1).max(1);
        }
        fn anti_entropy(&mut self) -> u64 {
            self.sweeps += 1;
            1
        }
    }

    #[test]
    fn anti_entropy_runs_before_every_checkpoint() {
        let mut o = Sweeping { size: 4, sweeps: 0 };
        let mut fired = 0usize;
        let mut rng = SmallRng::seed_from_u64(9);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            32,
            &[4, 8, 16, 32],
            &mut rng,
            |ov, _| {
                fired += 1;
                // the sweep precedes the observation
                assert_eq!(ov.sweeps, fired);
            },
        );
        assert_eq!(fired, 4);
        assert_eq!(o.sweeps, 4, "one pass per checkpoint, none elsewhere");
    }

    #[test]
    fn checkpoints_outside_range_are_ignored() {
        let mut o = Counter(10);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            12,
            &[2, 11, 100],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![11]);
    }
}
