//! Network dynamics: the two-stage churn schedule of Section 7.1.
//!
//! The paper simulates "a dynamic topology that captures arbitrary physical
//! peer joins and departures, in two distinct stages": an *increasing* stage
//! growing the overlay from 1,024 to 131,072 peers (joins only), and a
//! *decreasing* stage shrinking it back (departures only). Measurements are
//! taken whenever the network size crosses a power of two.

use crate::rng::Rng;

/// The churn stage currently driving the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnStage {
    /// Peers continuously join; none depart.
    Increasing,
    /// Peers continuously depart; none join.
    Decreasing,
}

/// The maintenance interface an overlay must expose to be driven by churn.
///
/// All four overlays (MIDAS, CAN, BATON, Chord) implement this; the
/// experiment harness is generic over it.
pub trait ChurnOverlay {
    /// Current number of live peers.
    fn peer_count(&self) -> usize;

    /// A new physical peer joins at a position chosen by `rng`
    /// (e.g. by routing a random key and splitting the responsible zone).
    fn churn_join(&mut self, rng: &mut dyn crate::rng::RngCore);

    /// A uniformly random live peer departs gracefully, handing its zone and
    /// data over per the overlay's protocol. No-op if only one peer remains.
    fn churn_leave(&mut self, rng: &mut dyn crate::rng::RngCore);

    /// A uniformly random live peer crashes *ungracefully*: no handover, no
    /// goodbye — its zone is orphaned (and its data lost) until the
    /// overlay's repair protocol reclaims it. Returns the crashed peer's
    /// stable index, or `None` if the overlay cannot afford a crash (only
    /// one peer left, or the overlay pins an immortal anchor).
    ///
    /// The default implementation returns `None` (crash-unaware overlay),
    /// so substrates without a repair protocol keep compiling; the fault
    /// plane's `crash_quota` simply has no effect on them.
    fn churn_crash(&mut self, rng: &mut dyn crate::rng::RngCore) -> Option<u32> {
        let _ = rng;
        None
    }
}

/// Grows (or shrinks) the overlay to exactly `target` peers, calling
/// `observe` every time the size crosses one of `checkpoints` (ascending for
/// growth, descending for shrink).
///
/// The declared `stage` is *advisory*: crashes can leave the overlay on the
/// far side of the target (e.g. an increasing stage entered after a crash
/// wave already shrank the network past it), so the direction of travel is
/// derived from the overlay's actual size and the schedule converges from
/// either side instead of asserting. Checkpoints fire in the direction
/// actually travelled.
///
/// # Panics
/// Panics if the overlay stalls — a join or leave that does not change the
/// size (e.g. shrinking toward a target below the overlay's floor of one
/// peer), which would otherwise loop forever.
pub fn run_stage<O: ChurnOverlay + ?Sized, R: Rng>(
    overlay: &mut O,
    stage: ChurnStage,
    target: usize,
    checkpoints: &[usize],
    rng: &mut R,
    mut observe: impl FnMut(&mut O, usize),
) {
    use core::cmp::Ordering;
    let start = overlay.peer_count();
    let shrinking = match start.cmp(&target) {
        Ordering::Greater => true,
        Ordering::Less => false,
        // Already at the target: no movement; the declared stage only
        // decides which side's entry checkpoints (== start) fire.
        Ordering::Equal => stage == ChurnStage::Decreasing,
    };
    let mut cps = checkpoints
        .iter()
        .copied()
        .filter(|&c| if shrinking { c <= start } else { c >= start })
        .collect::<Vec<_>>();
    if shrinking {
        cps.sort_unstable_by(|a, b| b.cmp(a));
    } else {
        cps.sort_unstable();
    }
    let mut cp_iter = cps.into_iter().peekable();
    let crossed = |c: usize, n: usize| if shrinking { c >= n } else { c <= n };
    // fire checkpoints already satisfied at entry
    while cp_iter
        .peek()
        .is_some_and(|&c| crossed(c, overlay.peer_count()))
    {
        let c = cp_iter.next().expect("peeked");
        observe(overlay, c);
    }
    while overlay.peer_count() != target {
        let before = overlay.peer_count();
        if shrinking {
            overlay.churn_leave(rng);
        } else {
            overlay.churn_join(rng);
        }
        assert_ne!(
            overlay.peer_count(),
            before,
            "overlay stalled before reaching the stage target"
        );
        while cp_iter
            .peek()
            .is_some_and(|&c| crossed(c, overlay.peer_count()))
        {
            let c = cp_iter.next().expect("peeked");
            observe(overlay, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rngs::SmallRng;
    use crate::rng::SeedableRng;

    /// A trivial overlay that only tracks its size.
    struct Counter(usize);

    impl ChurnOverlay for Counter {
        fn peer_count(&self) -> usize {
            self.0
        }
        fn churn_join(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            self.0 += 1;
        }
        fn churn_leave(&mut self, _rng: &mut dyn crate::rng::RngCore) {
            if self.0 > 1 {
                self.0 -= 1;
            }
        }
    }

    #[test]
    fn increasing_stage_hits_checkpoints_in_order() {
        let mut o = Counter(4);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            32,
            &[4, 8, 16, 32],
            &mut rng,
            |ov, cp| {
                assert!(ov.peer_count() >= cp);
                seen.push(cp);
            },
        );
        assert_eq!(seen, vec![4, 8, 16, 32]);
        assert_eq!(o.peer_count(), 32);
    }

    #[test]
    fn decreasing_stage_hits_checkpoints_in_reverse() {
        let mut o = Counter(32);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(2);
        run_stage(
            &mut o,
            ChurnStage::Decreasing,
            4,
            &[4, 8, 16, 32],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![32, 16, 8, 4]);
        assert_eq!(o.peer_count(), 4);
    }

    #[test]
    fn increasing_stage_past_target_converges_down() {
        // A crash wave (or any prior dynamics) can leave the overlay on the
        // far side of the target; the old implementation assert-panicked
        // here. The stage must converge and fire checkpoints descending.
        let mut o = Counter(40);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(4);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            8,
            &[8, 16, 32, 64],
            &mut rng,
            |ov, cp| {
                assert!(ov.peer_count() <= cp);
                seen.push(cp);
            },
        );
        assert_eq!(seen, vec![32, 16, 8]);
        assert_eq!(o.peer_count(), 8);
    }

    #[test]
    fn decreasing_stage_below_target_converges_up() {
        let mut o = Counter(3);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        run_stage(
            &mut o,
            ChurnStage::Decreasing,
            10,
            &[4, 8, 16],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![4, 8]);
        assert_eq!(o.peer_count(), 10);
    }

    #[test]
    fn at_target_fires_entry_checkpoint_once() {
        for stage in [ChurnStage::Increasing, ChurnStage::Decreasing] {
            let mut o = Counter(16);
            let mut seen = Vec::new();
            let mut rng = SmallRng::seed_from_u64(6);
            run_stage(&mut o, stage, 16, &[8, 16, 32], &mut rng, |_, cp| {
                seen.push(cp)
            });
            assert_eq!(seen, vec![16], "stage {stage:?}");
            assert_eq!(o.peer_count(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn stalled_overlay_is_detected() {
        // Counter refuses to drop below one peer; a target of 0 must panic
        // (stall detection) rather than loop forever.
        let mut o = Counter(2);
        let mut rng = SmallRng::seed_from_u64(7);
        run_stage(&mut o, ChurnStage::Decreasing, 0, &[], &mut rng, |_, _| {});
    }

    #[test]
    fn default_churn_crash_is_inert() {
        let mut o = Counter(5);
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(o.churn_crash(&mut rng), None);
        assert_eq!(o.peer_count(), 5);
    }

    #[test]
    fn checkpoints_outside_range_are_ignored() {
        let mut o = Counter(10);
        let mut seen = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        run_stage(
            &mut o,
            ChurnStage::Increasing,
            12,
            &[2, 11, 100],
            &mut rng,
            |_, cp| seen.push(cp),
        );
        assert_eq!(seen, vec![11]);
    }
}
