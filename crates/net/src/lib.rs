//! Simulation fabric shared by every overlay in the RIPPLE reproduction.
//!
//! The paper evaluates RIPPLE by *simulating* a dynamic decentralized network
//! (Section 7.1) and reporting two metrics: **latency** (hops on the critical
//! path of a query) and **congestion** (average number of queries a peer
//! processes when `n` uniform queries are issued). This crate provides the
//! process-local machinery those measurements rest on:
//!
//! * [`PeerId`] — stable handles for simulated peers (never reused, so churn
//!   cannot confuse link targets).
//! * [`QueryMetrics`] — the per-query cost ledger each distributed algorithm
//!   fills in (hops, query messages, response messages, tuples shipped).
//! * [`MetricsAggregator`] — turns many [`QueryMetrics`] into the paper's
//!   metrics for one experimental point.
//! * [`PeerStore`] — per-peer tuple storage with the key-movement operations
//!   joins and leaves need.
//! * [`block`] — the generation-validated columnar (structure-of-arrays)
//!   mirror of a store, cut into fixed-size blocks with per-block pruning
//!   bounds; the data layout the `ripple_geom::kernels` scan paths consume.
//! * [`scan`] — thread-local accounting of local data-plane work (tuples
//!   scanned, blocks pruned), bracketed by the executor and off by default.
//! * [`churn`] — the two-stage (increasing / decreasing) network dynamics
//!   driver of Section 7.1.
//! * [`fault`] — the seeded, deterministic fault-injection policies:
//!   omission faults ([`FaultPlane`] — message drops, slow peers,
//!   ungraceful crashes) and commission faults ([`CorruptionPlane`] —
//!   corrupted responses audited online by the executor).
//! * [`quarantine`] — the registry of peers caught lying by the online
//!   response audit ([`Quarantine`]), with the probation lifecycle that
//!   re-admits them only after an audited-clean probe.
//! * [`pool`] — the scoped work-stealing fork–join pool the intra-query
//!   parallel executor runs on.
//! * [`replica`] — the k-replication ledger ([`ReplicaSet`]) that lets a
//!   failover target answer for a crashed peer's region from a read-only
//!   copy instead of abandoning it.
//! * [`hash`] — a vendored deterministic FxHash for hot-path collections.

#![warn(missing_docs)]

pub mod block;
pub mod churn;
pub mod fault;
pub mod hash;
pub mod metrics;
pub mod peer;
pub mod pool;
pub mod quarantine;
pub mod replica;
pub mod rng;
pub mod scan;
pub mod stats;
pub mod store;

pub use block::{BlockEntry, BlockSet, RunData, BLOCK_ROWS};
pub use churn::{ChurnOverlay, ChurnStage};
pub use fault::{CorruptionMode, CorruptionPlane, CorruptionSession, FaultPlane, FaultSession};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use metrics::{BranchLedger, MetricsAggregator, PointSummary, QueryMetrics, ShardedVisited};
pub use peer::PeerId;
pub use quarantine::{Quarantine, QuarantineSnapshot, Standing};
pub use replica::{Replica, ReplicaSet};
pub use scan::ScanCounts;
pub use stats::{Distribution, Ewma, ModeStats, Plan, PlanSource, PlannedMode, QueryStats};
pub use store::{IngestStats, LocalView, PeerStore};
