//! Deterministic fault injection: the policy side of the fault plane.
//!
//! Real DHT deployments are defined by *ungraceful* failure — messages
//! vanish, peers crash without handover, slow nodes trip timeouts — yet the
//! paper's churn model (Section 7.1) only exercises graceful joins and
//! departures. A [`FaultPlane`] is a seeded, purely deterministic policy
//! object describing
//!
//! * **message drops** — every query-forward transmission is lost with
//!   probability [`drop_probability`](FaultPlane::drop_probability);
//! * **slow peers** — a stable, seed-determined subset of peers adds
//!   [`slow_penalty_hops`](FaultPlane::slow_penalty_hops) of delay to every
//!   message it accepts (the delay that makes timeouts fire in practice);
//! * **crashes** — the fraction of peers the experiment driver should kill
//!   *ungracefully* via `ChurnOverlay::churn_crash` (zones orphaned until a
//!   repair protocol runs, data lost — distinct from `churn_leave`).
//!
//! Everything is a pure function of the seed: given the same plane and the
//! same per-query stream id, a simulation replays bit-identically. The
//! executor consumes the plane through per-query [`FaultSession`]s, and a
//! session's decisions are **addressable, not ordered**: each drop decision
//! is drawn from a splittable stream keyed by the logical edge
//! `(query stream, sender, target, attempt)` rather than from one mutable
//! generator consumed in execution order. A sequential walk and a parallel
//! walk of the same fan-out tree therefore see *identical* fault decisions
//! — there is no global draw order for thread scheduling to perturb —
//! which is the property the intra-query parallel executor's bit-identical
//! equivalence guarantee rests on.
//!
//! [`FaultPlane::none`] is the distinguished no-fault policy: an executor
//! driven by it must be *observationally identical* — equal answers and
//! bit-identical cost ledgers — to one with no fault plane at all. This is
//! enforced by the equivalence tests in `ripple-core`.

use crate::peer::PeerId;
use crate::rng::rngs::SmallRng;
use crate::rng::{mix64 as mix, Rng, SeedableRng};

/// Salt mixed into the per-peer slowness hash (distinct from session
/// streams so slow-set membership never correlates with drop decisions).
const SLOW_SALT: u64 = 0x51_0e_5a_17_ee_d0_07_b5;

/// Salt for the per-edge drop-decision streams (distinct from every other
/// consumer of the session base generator).
const DROP_SALT: u64 = 0xd1_0b_5a_17_0f_ed_9e_5d;

/// Salt for the per-response corruption-decision streams (commission
/// faults; distinct from the omission-fault salts above).
const CORRUPT_SALT: u64 = 0xc0_44_07_7a_11_7e_0b_ad;

/// Salt for the corruption *mode* selector, split from the hit decision so
/// changing the mode distribution never perturbs which responses corrupt.
const CORRUPT_MODE_SALT: u64 = 0x5e_1e_c7_ed_fa_15_e9_00;

/// Salt for the lying-bound-witness streams (keyed per pruned link, which
/// is a different address space than the per-response streams).
const WITNESS_SALT: u64 = 0x11_ab_0c_0e_4e_55_0f_17;

/// A seeded, deterministic fault-injection policy.
///
/// The plane is plain data (`Copy`): cloning it into executors and worker
/// threads is free and never splits the random streams — those are derived
/// per query via [`session`](FaultPlane::session).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlane {
    /// Per-transmission probability that a query-forward message is lost in
    /// transit (the sender learns about it only through a timeout).
    pub drop_probability: f64,
    /// Fraction of peers that are slow. Membership is a stable pure
    /// function of `(seed, peer)` — a peer is slow for the lifetime of the
    /// plane, as in real deployments where slowness tracks the host.
    pub slow_fraction: f64,
    /// Extra hops of delay a slow peer adds to each message it accepts.
    pub slow_penalty_hops: u64,
    /// Simulated hops a sender waits before declaring an unacknowledged
    /// transmission lost. Retries back off exponentially from this base.
    pub timeout_hops: u64,
    /// Retransmissions attempted per target before failing over to an
    /// alternate link (0 = fail over after the first loss).
    pub max_retries: u32,
    /// Fraction of the overlay the experiment driver should crash
    /// ungracefully (consumed via [`crash_quota`](FaultPlane::crash_quota)).
    pub crash_fraction: f64,
    /// Base seed. All decisions derive from it.
    pub seed: u64,
}

impl FaultPlane {
    /// The no-fault policy: nothing drops, nobody is slow, nobody crashes.
    /// Executors driven by it behave bit-identically to fault-unaware ones.
    pub fn none() -> Self {
        Self {
            drop_probability: 0.0,
            slow_fraction: 0.0,
            slow_penalty_hops: 0,
            timeout_hops: 0,
            max_retries: 0,
            crash_fraction: 0.0,
            seed: 0,
        }
    }

    /// A drop-only plane with the default retry discipline (timeout 2 hops,
    /// 3 retransmissions, exponential backoff).
    pub fn drops(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        Self {
            drop_probability: p,
            timeout_hops: 2,
            max_retries: 3,
            seed,
            ..Self::none()
        }
    }

    /// True when the plane can never perturb an execution.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.slow_fraction == 0.0
            && self.slow_penalty_hops == 0
            && self.crash_fraction == 0.0
    }

    /// Whether `peer` belongs to the stable slow set.
    pub fn is_slow(&self, peer: PeerId) -> bool {
        if self.slow_fraction <= 0.0 {
            return false;
        }
        let h = mix(self.seed ^ SLOW_SALT ^ (peer.index() as u64));
        // top 53 bits → uniform in [0, 1)
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.slow_fraction
    }

    /// The hop delay `peer` adds to a delivered message (0 if not slow).
    pub fn slow_penalty(&self, peer: PeerId) -> u64 {
        if self.is_slow(peer) {
            self.slow_penalty_hops
        } else {
            0
        }
    }

    /// How many of `n` peers the driver should crash under this policy.
    pub fn crash_quota(&self, n: usize) -> usize {
        (self.crash_fraction * n as f64).round() as usize
    }

    /// Opens the per-query decision stream `stream`.
    ///
    /// Decisions within a session are *keyed*, not ordered (see
    /// [`FaultSession::drops_message`]): a single-threaded query replay is
    /// exact, parallel query sweeps are schedule-independent, and the
    /// intra-query parallel executor sees the same decisions as a
    /// sequential walk of the same tree.
    pub fn session(&self, stream: u64) -> FaultSession {
        FaultSession {
            plane: *self,
            base: SmallRng::seed_from_u64(
                mix(self.seed) ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D),
            ),
        }
    }
}

/// One query's view of the fault plane: the policy plus the base of a
/// family of splittable per-edge decision streams.
///
/// The session holds **no mutable draw state** — every decision is a pure
/// function of `(plane seed, query stream, decision key)` — so one session
/// can be shared by reference across the worker threads of a parallel
/// execution and still hand out exactly the decisions a sequential
/// execution would have drawn.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plane: FaultPlane,
    base: SmallRng,
}

impl FaultSession {
    /// True when any fault machinery is active (the executor's fast path
    /// skips all fault bookkeeping when this is false).
    pub fn active(&self) -> bool {
        !self.plane.is_none()
    }

    /// Decides whether transmission attempt `attempt` of a query-forward
    /// from `sender` to `target` is lost in transit.
    ///
    /// The decision is drawn from the splittable stream keyed by
    /// `(sender, target, attempt)` on top of the session's per-query base —
    /// the same logical edge always receives the same verdict, no matter
    /// which thread asks first or how many other edges were decided in
    /// between. (Two *distinct* deliveries that happen to address the same
    /// `(sender, target)` pair — a direct link and a later failover hop —
    /// share their attempt streams by design: the keying trades that
    /// harmless correlation for schedule independence.)
    pub fn drops_message(&self, sender: PeerId, target: PeerId, attempt: u32) -> bool {
        if self.plane.drop_probability <= 0.0 {
            return false;
        }
        let key = mix(
            mix(mix(DROP_SALT ^ sender.index() as u64) ^ target.index() as u64)
                ^ u64::from(attempt),
        );
        self.base.split(key).gen_bool(self.plane.drop_probability)
    }

    /// The hop delay `peer` adds to a delivered message.
    pub fn slow_penalty(&self, peer: PeerId) -> u64 {
        self.plane.slow_penalty(peer)
    }

    /// The sender-side timeout, in simulated hops (at least 1 once the
    /// plane is active — a zero-hop timeout would make waits free).
    pub fn timeout(&self) -> u64 {
        self.plane.timeout_hops.max(1)
    }

    /// Retransmissions allowed per target before failing over.
    pub fn max_retries(&self) -> u32 {
        self.plane.max_retries
    }
}

/// The five commission-fault shapes a corrupted peer's response can take.
///
/// Every mode is *detectable by construction* against the audit model of
/// DESIGN.md §14 (honest storage plane, corrupted query/transport plane):
/// a response envelope that disagrees with the authoritative store, the
/// pinned generation, its own declared length, or a recomputed bound
/// witness. The plane makes no attempt to model an adversary who forges
/// *consistent* state — that would require signed stores, out of scope.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum CorruptionMode {
    /// One coordinate of one answered tuple is bit-flipped in transit.
    ScoreFlip,
    /// The answer payload is truncated while the envelope still declares
    /// the original length.
    Truncate,
    /// The response replays an earlier epoch: the generation stamp is one
    /// behind the overlay's current snapshot generation.
    StaleGeneration,
    /// A tuple that exists on no peer is appended to the answer (placed at
    /// the region's max corner, where it poisons unaudited top-k answers).
    Fabricate,
    /// A pruned link's corner-bound witness is inflated so the certificate
    /// lies about why the region was skipped.
    LyingWitness,
}

impl CorruptionMode {
    /// Every mode, in selector order (index = discriminant used by the
    /// keyed mode draw).
    pub const ALL: [CorruptionMode; 5] = [
        CorruptionMode::ScoreFlip,
        CorruptionMode::Truncate,
        CorruptionMode::StaleGeneration,
        CorruptionMode::Fabricate,
        CorruptionMode::LyingWitness,
    ];
}

/// A seeded, deterministic commission-fault policy: which responses are
/// corrupted, and how.
///
/// Mirrors [`FaultPlane`] exactly: plain `Copy` data, per-query
/// [`session`](CorruptionPlane::session)s, and decisions that are *keyed*
/// by the logical edge rather than drawn in execution order — so parallel
/// and sequential walks of the same query see identical corruption, and a
/// given `(plane, stream, query)` triple replays bit-identically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorruptionPlane {
    /// Per-response probability that a remote peer's answer (or witness)
    /// is corrupted in flight.
    pub probability: f64,
    /// When set, every corrupted response uses this mode; otherwise the
    /// mode is drawn (keyed) uniformly from [`CorruptionMode::ALL`].
    pub force: Option<CorruptionMode>,
    /// Base seed. All decisions derive from it.
    pub seed: u64,
}

impl CorruptionPlane {
    /// The no-corruption policy: executors driven by it must behave
    /// bit-identically to corruption-unaware ones (the invisibility gate).
    pub fn none() -> Self {
        Self {
            probability: 0.0,
            force: None,
            seed: 0,
        }
    }

    /// A plane corrupting responses with probability `p`, cycling through
    /// all five modes keyed per response.
    pub fn flat(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corruption probability range");
        Self {
            probability: p,
            force: None,
            seed,
        }
    }

    /// A plane that always applies `mode` with probability `p` — the
    /// mutation-harness arm that pins each mode to the check catching it.
    pub fn only(mode: CorruptionMode, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corruption probability range");
        Self {
            probability: p,
            force: Some(mode),
            seed,
        }
    }

    /// True when the plane can never corrupt a response.
    pub fn is_none(&self) -> bool {
        self.probability <= 0.0
    }

    /// Opens the per-query decision stream `stream` (same keying discipline
    /// as [`FaultPlane::session`]).
    pub fn session(&self, stream: u64) -> CorruptionSession {
        CorruptionSession {
            plane: *self,
            base: SmallRng::seed_from_u64(
                mix(self.seed ^ CORRUPT_SALT) ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D),
            ),
        }
    }
}

/// One query's view of the corruption plane: keyed, order-free decision
/// streams over the session base, exactly like [`FaultSession`].
#[derive(Clone, Debug)]
pub struct CorruptionSession {
    plane: CorruptionPlane,
    base: SmallRng,
}

impl CorruptionSession {
    /// True when any corruption machinery is active (the executor's
    /// deposit fast path skips all commission-fault bookkeeping when this
    /// is false — the invisibility gate's short circuit).
    pub fn active(&self) -> bool {
        !self.plane.is_none()
    }

    /// Decides whether — and how — the answer response from `sender` back
    /// to `initiator` is corrupted in flight. Keyed by
    /// `(sender, initiator, attempt)` on the session base: the same
    /// response always receives the same verdict regardless of thread
    /// schedule or draw order. [`CorruptionMode::LyingWitness`] never
    /// appears here — witness lies are drawn (per pruned link) through
    /// [`lies_about_witness`](CorruptionSession::lies_about_witness).
    pub fn corrupts(
        &self,
        sender: PeerId,
        initiator: PeerId,
        attempt: u32,
    ) -> Option<CorruptionMode> {
        if self.plane.probability <= 0.0 || self.plane.force == Some(CorruptionMode::LyingWitness) {
            return None;
        }
        let key = mix(
            mix(mix(CORRUPT_SALT ^ sender.index() as u64) ^ initiator.index() as u64)
                ^ u64::from(attempt),
        );
        if !self.base.split(key).gen_bool(self.plane.probability) {
            return None;
        }
        Some(self.mode_for(key))
    }

    /// Decides whether the bound witness `sender` emits for the pruned
    /// link toward `target` lies. Only meaningful for certifying
    /// executions; keyed per pruned link on its own salt. Forcing any
    /// *response* mode disables witness lies (and vice versa), so the
    /// mutation harness can pin one mode at a time.
    pub fn lies_about_witness(&self, sender: PeerId, target: PeerId) -> bool {
        if self.plane.probability <= 0.0 {
            return false;
        }
        match self.plane.force {
            Some(CorruptionMode::LyingWitness) | None => {}
            Some(_) => return false,
        }
        let key = mix(mix(WITNESS_SALT ^ sender.index() as u64) ^ target.index() as u64);
        self.base.split(key).gen_bool(self.plane.probability)
    }

    /// The response mode applied to a corrupted answer (forced, or drawn
    /// keyed from the hit key so the selection is schedule-free too).
    /// Drawn from the four response modes; witness lies have their own
    /// per-link streams.
    fn mode_for(&self, key: u64) -> CorruptionMode {
        if let Some(mode) = self.plane.force {
            return mode;
        }
        let n = (CorruptionMode::ALL.len() - 1) as u64;
        let pick = mix(key ^ CORRUPT_MODE_SALT) % n;
        CorruptionMode::ALL[pick as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let plane = FaultPlane::none();
        assert!(plane.is_none());
        let s = plane.session(42);
        assert!(!s.active());
        for i in 0..100 {
            assert!(!s.drops_message(PeerId::new(0), PeerId::new(i), 0));
        }
        assert_eq!(plane.slow_penalty(PeerId::new(7)), 0);
        assert_eq!(plane.crash_quota(1000), 0);
    }

    #[test]
    fn drop_decisions_are_deterministic_and_track_p() {
        let plane = FaultPlane::drops(0.3, 99);
        let draw = |stream: u64| -> Vec<bool> {
            let s = plane.session(stream);
            (0..2000u32)
                .map(|i| s.drops_message(PeerId::new(i % 50), PeerId::new(i / 50), i % 4))
                .collect()
        };
        assert_eq!(draw(1), draw(1), "same stream replays identically");
        assert_ne!(draw(1), draw(2), "streams are independent");
        let hits = draw(5).iter().filter(|&&b| b).count();
        assert!((450..750).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn drop_decisions_are_keyed_not_ordered() {
        let plane = FaultPlane::drops(0.5, 7);
        let s = plane.session(3);
        // The verdict for an edge is independent of every other query made
        // to the session — ask in two different interleavings and compare.
        let edges: Vec<(PeerId, PeerId, u32)> = (0..200u32)
            .map(|i| (PeerId::new(i % 13), PeerId::new(7 + i % 31), i % 3))
            .collect();
        let forward: Vec<bool> = edges
            .iter()
            .map(|&(a, b, n)| s.drops_message(a, b, n))
            .collect();
        let backward: Vec<bool> = edges
            .iter()
            .rev()
            .map(|&(a, b, n)| s.drops_message(a, b, n))
            .collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(
            forward, backward_reversed,
            "per-edge decisions must not depend on draw order"
        );
        // Attempts of one edge form their own stream: they must not all
        // agree (else retries would be pointless under deterministic drops).
        let varied = (0..64u32)
            .map(|n| s.drops_message(PeerId::new(1), PeerId::new(2), n))
            .collect::<Vec<_>>();
        assert!(varied.iter().any(|&b| b) && varied.iter().any(|&b| !b));
    }

    #[test]
    fn slow_set_is_stable_and_sized() {
        let plane = FaultPlane {
            slow_fraction: 0.2,
            slow_penalty_hops: 4,
            seed: 7,
            ..FaultPlane::none()
        };
        let slow: Vec<bool> = (0..5000).map(|i| plane.is_slow(PeerId::new(i))).collect();
        let again: Vec<bool> = (0..5000).map(|i| plane.is_slow(PeerId::new(i))).collect();
        assert_eq!(slow, again, "membership is a pure function");
        let count = slow.iter().filter(|&&b| b).count();
        assert!((800..1200).contains(&count), "count = {count}");
        let p = (0..5000).find(|&i| plane.is_slow(PeerId::new(i))).unwrap();
        assert_eq!(plane.slow_penalty(PeerId::new(p)), 4);
    }

    #[test]
    fn crash_quota_rounds() {
        let plane = FaultPlane {
            crash_fraction: 0.1,
            ..FaultPlane::none()
        };
        assert_eq!(plane.crash_quota(128), 13);
        assert_eq!(plane.crash_quota(0), 0);
    }

    #[test]
    fn corruption_none_is_inert() {
        let plane = CorruptionPlane::none();
        assert!(plane.is_none());
        let s = plane.session(42);
        assert!(!s.active());
        for i in 0..100 {
            assert!(s.corrupts(PeerId::new(i), PeerId::new(0), 0).is_none());
            assert!(!s.lies_about_witness(PeerId::new(i), PeerId::new(0)));
        }
    }

    #[test]
    fn corruption_decisions_are_deterministic_and_track_p() {
        let plane = CorruptionPlane::flat(0.3, 99);
        let draw = |stream: u64| -> Vec<Option<CorruptionMode>> {
            let s = plane.session(stream);
            (0..2000u32)
                .map(|i| s.corrupts(PeerId::new(i % 50), PeerId::new(i / 50), 0))
                .collect()
        };
        assert_eq!(draw(1), draw(1), "same stream replays identically");
        assert_ne!(draw(1), draw(2), "streams are independent");
        let hits = draw(5).iter().filter(|m| m.is_some()).count();
        assert!((450..750).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn corruption_decisions_are_keyed_not_ordered() {
        let plane = CorruptionPlane::flat(0.5, 7);
        let s = plane.session(3);
        let edges: Vec<(PeerId, PeerId)> = (0..200u32)
            .map(|i| (PeerId::new(i % 13), PeerId::new(7 + i % 31)))
            .collect();
        let forward: Vec<Option<CorruptionMode>> =
            edges.iter().map(|&(a, b)| s.corrupts(a, b, 0)).collect();
        let backward: Vec<Option<CorruptionMode>> = edges
            .iter()
            .rev()
            .map(|&(a, b)| s.corrupts(a, b, 0))
            .collect();
        let backward_reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(
            forward, backward_reversed,
            "per-response verdicts must not depend on draw order"
        );
    }

    #[test]
    fn flat_plane_exercises_every_response_mode_and_witness_lies() {
        let plane = CorruptionPlane::flat(1.0, 11);
        let s = plane.session(1);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200u32 {
            if let Some(m) = s.corrupts(PeerId::new(i), PeerId::new(1000), 0) {
                seen.insert(format!("{m:?}"));
            }
        }
        assert_eq!(seen.len(), 4, "all four response modes drawn: {seen:?}");
        assert!(
            !seen.contains("LyingWitness"),
            "witness lies never ride the response stream"
        );
        assert!((0..200u32).any(|i| s.lies_about_witness(PeerId::new(i), PeerId::new(0))));
    }

    #[test]
    fn forced_modes_partition_the_streams() {
        let forced = CorruptionPlane::only(CorruptionMode::Fabricate, 1.0, 5);
        let s = forced.session(0);
        assert_eq!(
            s.corrupts(PeerId::new(1), PeerId::new(2), 0),
            Some(CorruptionMode::Fabricate)
        );
        assert!(
            !s.lies_about_witness(PeerId::new(1), PeerId::new(2)),
            "forcing a response mode disables witness lies"
        );
        let lying = CorruptionPlane::only(CorruptionMode::LyingWitness, 1.0, 5);
        let s = lying.session(0);
        assert!(s.corrupts(PeerId::new(1), PeerId::new(2), 0).is_none());
        assert!(s.lies_about_witness(PeerId::new(1), PeerId::new(2)));
    }

    #[test]
    fn timeout_floor_when_active() {
        let plane = FaultPlane {
            drop_probability: 0.5,
            timeout_hops: 0,
            seed: 1,
            ..FaultPlane::none()
        };
        assert_eq!(plane.session(0).timeout(), 1);
    }
}
