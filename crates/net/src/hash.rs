//! A fast, *deterministic* hasher for hot-path collections.
//!
//! `std`'s default `RandomState` is SipHash behind a per-process random
//! seed: robust against hash-flooding, but (a) slow for the tiny keys the
//! simulator hashes millions of times per query ([`PeerId`] is a `u32`,
//! score-cache keys are a `u64`) and (b) *randomized*, so iteration order —
//! which the code never relies on, but which shows up in profiles and
//! debugging sessions — changes run to run.
//!
//! This module vendors the FxHash function (the multiply-xor hash used by
//! the Rust compiler itself, `rustc-hash`), re-implemented from the
//! published algorithm so the workspace keeps building **offline** with no
//! external crates. It is not DoS-resistant — every key hashed here is
//! produced by the simulator, never by an adversary.
//!
//! [`PeerId`]: crate::peer::PeerId

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (64-bit): `2^64 / φ`, rounded to odd.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single 64-bit accumulator.
///
/// Each ingested word rotates the accumulator, xors the word in, and
/// multiplies by [`K`] — two ALU ops and one multiply per 8 bytes, an
/// order of magnitude cheaper than SipHash for the integer keys the
/// simulator lives on.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic `BuildHasher` for FxHash-backed collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by FxHash. Drop-in for `std::collections::HashMap` on
/// simulator-internal keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An `FxHashSet` pre-sized for `capacity` elements (the `with_capacity`
/// constructor `HashSet` only offers through `with_capacity_and_hasher`
/// once the hasher is non-default).
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerId;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_tail_disambiguated() {
        let hash = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        // same prefix, different tail lengths must not collide trivially
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefg"));
        assert_ne!(hash(b"a"), hash(b"a\0"));
        assert_eq!(hash(b"ripple"), hash(b"ripple"));
    }

    #[test]
    fn collections_work_with_peer_ids() {
        let mut set: FxHashSet<PeerId> = fx_set_with_capacity(100);
        for i in 0..100u32 {
            assert!(set.insert(PeerId::new(i)));
        }
        for i in 0..100u32 {
            assert!(!set.insert(PeerId::new(i)));
        }
        assert_eq!(set.len(), 100);
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        map.insert(7, 70);
        assert_eq!(map[&7], 70);
    }

    #[test]
    fn spread_over_buckets() {
        // Sequential integer keys — the simulator's common case — must not
        // collapse into a few buckets.
        let mut low_bits = FxHashSet::default();
        for i in 0..1024u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3ff);
        }
        assert!(
            low_bits.len() > 600,
            "only {} distinct buckets",
            low_bits.len()
        );
    }
}
