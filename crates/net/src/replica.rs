//! Replica-backed durability: k read-only copies of every peer's tuples.
//!
//! PR 2's fault plane made data loss *visible* (honest [`Coverage`] on query
//! outcomes); this layer makes it *recoverable*. The placement rule follows
//! directly from RIPPLE's region contract (Section 3.1): a peer's
//! responsibility region is exactly what its overlay neighbours must be able
//! to answer for it when it dies, so each substrate re-uses its own link
//! structure as the replica topology — successor lists in Chord,
//! sibling/buddy boxes in MIDAS (and their CAN / BATON analogues). The
//! amount of redundancy is bounded by `k`, in the spirit of Akbarinia
//! et al.'s budgeted redundancy for distributed top-k, and the
//! constant-degree fault tolerance of the Rainbow Skip Graph.
//!
//! The set is deliberately a *simulation-level* ledger: it lives next to the
//! overlay's peer table (one `ReplicaSet` per network), keyed by **owner**,
//! with each entry remembering the owner's [`PeerStore`] generation at
//! capture time and the live peers currently holding the copy. Queries never
//! mutate it — the executor only *reads* replicas when a failover target
//! adopts a dead peer's sub-region — so replica hits stay deterministic
//! under the parallel executor (they are keyed by the failed edge, not by
//! thread schedule).
//!
//! [`Coverage`]: QueryMetrics
//! [`PeerStore`]: crate::store::PeerStore
//! [`QueryMetrics`]: crate::metrics::QueryMetrics

use crate::peer::PeerId;
use ripple_geom::Tuple;
use std::collections::BTreeMap;

/// One owner's replicated tuple set, captured at a specific store
/// generation.
#[derive(Clone, Debug, PartialEq)]
pub struct Replica {
    /// The peer whose tuples this copy preserves.
    owner: PeerId,
    /// The owner's [`PeerStore`](crate::store::PeerStore) generation at
    /// capture time. Compared against the latest generation the set has
    /// *seen* for the owner to decide staleness.
    generation: u64,
    /// The replicated tuples (read-only; queries never mutate a replica).
    tuples: Vec<Tuple>,
    /// Live peers currently holding the copy, in placement order.
    holders: Vec<PeerId>,
}

impl Replica {
    /// The replicated tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The peers holding this copy, in placement order.
    pub fn holders(&self) -> &[PeerId] {
        &self.holders
    }

    /// The store generation the copy was captured at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The owner whose tuples this copy preserves.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Simulated wire size of shipping this copy once: 8 bytes of id plus
    /// 8 bytes per coordinate, per tuple.
    pub fn payload_bytes(&self) -> u64 {
        self.tuples
            .iter()
            .map(|t| 8 + 8 * t.dims() as u64)
            .sum::<u64>()
    }
}

/// The network-wide replica ledger: up to `k` read-only copies of each
/// peer's tuples, keyed by `(owner, generation)`.
///
/// `BTreeMap` keys keep every iteration order deterministic — repair sweeps,
/// anti-entropy passes and the executor's dead-zone recovery all walk
/// owners in ascending [`PeerId`] order regardless of insertion history.
#[derive(Clone, Debug, Default)]
pub struct ReplicaSet {
    /// Replication degree: how many live holders each owner should have.
    k: usize,
    /// The current copy per owner (a single logical copy placed on up to
    /// `k` holders; the simulation does not model divergent holder states).
    entries: BTreeMap<PeerId, Replica>,
    /// The latest store generation *observed* per owner — bumped on every
    /// insert into a replicated owner even when no re-capture happens, so
    /// an entry can be recognised as stale.
    latest: BTreeMap<PeerId, u64>,
    /// Total simulated bytes shipped to create/refresh copies so far.
    replica_bytes: u64,
    /// Replica capture/promotion transfers performed since the last drain.
    repair_transfers: u64,
}

impl ReplicaSet {
    /// An empty set with replication degree `k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// The replication degree.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of owners with a current copy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no owner has a copy.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Captures (or refreshes) the copy of `owner`'s tuples at store
    /// generation `generation`, placed on `holders`. Counts one repair
    /// transfer and the payload bytes shipped to every holder.
    pub fn capture(
        &mut self,
        owner: PeerId,
        generation: u64,
        tuples: Vec<Tuple>,
        holders: Vec<PeerId>,
    ) {
        let rep = Replica {
            owner,
            generation,
            tuples,
            holders,
        };
        self.replica_bytes += rep.payload_bytes() * rep.holders.len().max(1) as u64;
        self.repair_transfers += 1;
        self.latest.insert(owner, generation);
        self.entries.insert(owner, rep);
    }

    /// Notes that `owner`'s store has advanced to `generation` without
    /// re-capturing — the existing copy (if any) becomes stale. Anti-entropy
    /// sweeps use the gap between noted and captured generations to decide
    /// what to refresh.
    pub fn note_generation(&mut self, owner: PeerId, generation: u64) {
        let g = self.latest.entry(owner).or_insert(generation);
        *g = (*g).max(generation);
    }

    /// The current copy for `owner`, if one exists.
    pub fn get(&self, owner: PeerId) -> Option<&Replica> {
        self.entries.get(&owner)
    }

    /// The owners with a current copy, in ascending order.
    pub fn owners(&self) -> Vec<PeerId> {
        self.entries.keys().copied().collect()
    }

    /// True when `rep` was captured before the latest generation observed
    /// for its owner (the copy may be missing recent inserts).
    pub fn is_stale(&self, rep: &Replica) -> bool {
        self.latest
            .get(&rep.owner)
            .is_some_and(|&g| g != rep.generation)
    }

    /// Owners whose copy is stale (captured generation behind the latest
    /// observed one), in ascending owner order — the anti-entropy worklist.
    pub fn stale_owners(&self) -> Vec<PeerId> {
        self.entries
            .values()
            .filter(|r| self.is_stale(r))
            .map(|r| r.owner)
            .collect()
    }

    /// Removes and returns `owner`'s copy (departure promoted it, or the
    /// owner left gracefully and the copy is obsolete).
    pub fn drop_owner(&mut self, owner: PeerId) -> Option<Replica> {
        self.latest.remove(&owner);
        self.entries.remove(&owner)
    }

    /// Promotes `owner`'s copy after the owner crashed: the copy is removed
    /// from the ledger and handed to the repair protocol, which re-inserts
    /// the tuples at their live responsible peers. Counts one repair
    /// transfer and the payload shipped once (holder → adopter).
    pub fn promote(&mut self, owner: PeerId) -> Option<Replica> {
        let rep = self.drop_owner(owner)?;
        self.replica_bytes += rep.payload_bytes();
        self.repair_transfers += 1;
        Some(rep)
    }

    /// Owners (ascending) that list `holder` among their holders — the
    /// entries that must be re-shed when `holder` crashes or departs.
    pub fn owners_held_by(&self, holder: PeerId) -> Vec<PeerId> {
        self.entries
            .values()
            .filter(|r| r.holders.contains(&holder))
            .map(|r| r.owner)
            .collect()
    }

    /// Replaces `dead` in `owner`'s holder list with `fresh` (if the entry
    /// exists and actually listed `dead`), shipping the payload to the new
    /// holder. Counts one repair transfer. No-op when `fresh` already holds
    /// the copy.
    pub fn replace_holder(&mut self, owner: PeerId, dead: PeerId, fresh: Option<PeerId>) {
        if let Some(rep) = self.entries.get_mut(&owner) {
            let Some(pos) = rep.holders.iter().position(|&h| h == dead) else {
                return;
            };
            match fresh {
                Some(f) if !rep.holders.contains(&f) => {
                    rep.holders[pos] = f;
                    self.replica_bytes += rep.payload_bytes();
                    self.repair_transfers += 1;
                }
                _ => {
                    rep.holders.remove(pos);
                }
            }
        }
    }

    /// Total simulated bytes shipped to create/refresh copies so far.
    pub fn replica_bytes(&self) -> u64 {
        self.replica_bytes
    }

    /// Takes (and resets) the transfer counter — harnesses drain this into
    /// the per-query `repair_transfers` metric, like overlay
    /// `repair_messages`.
    pub fn drain_repair_transfers(&mut self) -> u64 {
        std::mem::take(&mut self.repair_transfers)
    }

    /// Takes (and resets) the byte counter.
    pub fn drain_replica_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.replica_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: u64, dims: usize) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(i, vec![0.5; dims])).collect()
    }

    #[test]
    fn capture_get_and_staleness() {
        let mut set = ReplicaSet::new(2);
        assert!(set.is_empty());
        set.capture(
            PeerId::new(3),
            7,
            tuples(4, 2),
            vec![PeerId::new(1), PeerId::new(2)],
        );
        let rep = set.get(PeerId::new(3)).expect("captured");
        assert_eq!(rep.owner(), PeerId::new(3));
        assert_eq!(rep.generation(), 7);
        assert_eq!(rep.tuples().len(), 4);
        assert_eq!(rep.holders(), &[PeerId::new(1), PeerId::new(2)]);
        assert!(!set.is_stale(rep), "fresh right after capture");
        assert!(set.stale_owners().is_empty());
        set.note_generation(PeerId::new(3), 9);
        let rep = set.get(PeerId::new(3)).unwrap();
        assert!(set.is_stale(rep), "observed generation moved past capture");
        assert_eq!(set.stale_owners(), vec![PeerId::new(3)]);
        // Re-capture at the latest generation clears staleness.
        set.capture(PeerId::new(3), 9, tuples(5, 2), vec![PeerId::new(1)]);
        assert!(!set.is_stale(set.get(PeerId::new(3)).unwrap()));
    }

    #[test]
    fn byte_and_transfer_accounting() {
        let mut set = ReplicaSet::new(1);
        // 4 tuples × (8 + 8·2) bytes × 2 holders
        set.capture(
            PeerId::new(0),
            1,
            tuples(4, 2),
            vec![PeerId::new(1), PeerId::new(2)],
        );
        assert_eq!(set.replica_bytes(), 4 * 24 * 2);
        assert_eq!(set.drain_repair_transfers(), 1);
        assert_eq!(set.drain_repair_transfers(), 0, "drain resets");
        // Replacing a holder ships one more copy.
        set.replace_holder(PeerId::new(0), PeerId::new(1), Some(PeerId::new(5)));
        assert_eq!(set.drain_repair_transfers(), 1);
        assert_eq!(
            set.get(PeerId::new(0)).unwrap().holders(),
            &[PeerId::new(5), PeerId::new(2)]
        );
        assert_eq!(set.drain_replica_bytes(), 4 * 24 * 2 + 4 * 24);
        assert_eq!(set.replica_bytes(), 0);
    }

    #[test]
    fn holder_maintenance() {
        let mut set = ReplicaSet::new(2);
        set.capture(PeerId::new(0), 1, tuples(1, 2), vec![PeerId::new(8)]);
        set.capture(
            PeerId::new(4),
            1,
            tuples(1, 2),
            vec![PeerId::new(8), PeerId::new(9)],
        );
        set.capture(PeerId::new(6), 1, tuples(1, 2), vec![PeerId::new(9)]);
        assert_eq!(
            set.owners_held_by(PeerId::new(8)),
            vec![PeerId::new(0), PeerId::new(4)]
        );
        // No fresh target: the dead holder is simply dropped.
        set.replace_holder(PeerId::new(0), PeerId::new(8), None);
        assert!(set.get(PeerId::new(0)).unwrap().holders().is_empty());
        // Fresh target already holding: dead holder dropped, no transfer.
        set.drain_repair_transfers();
        set.replace_holder(PeerId::new(4), PeerId::new(8), Some(PeerId::new(9)));
        assert_eq!(
            set.get(PeerId::new(4)).unwrap().holders(),
            &[PeerId::new(9)]
        );
        assert_eq!(set.drain_repair_transfers(), 0);
        // Dropping an owner removes entry and generation tracking.
        assert!(set.drop_owner(PeerId::new(6)).is_some());
        assert!(set.get(PeerId::new(6)).is_none());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn promotion_counts_one_transfer() {
        let mut set = ReplicaSet::new(1);
        set.capture(PeerId::new(2), 1, tuples(3, 2), vec![PeerId::new(7)]);
        set.drain_repair_transfers();
        set.drain_replica_bytes();
        let rep = set.promote(PeerId::new(2)).expect("copy existed");
        assert_eq!(rep.tuples().len(), 3);
        assert_eq!(set.drain_repair_transfers(), 1);
        assert_eq!(set.drain_replica_bytes(), 3 * 24);
        assert!(set.get(PeerId::new(2)).is_none(), "copy consumed");
        assert!(
            set.promote(PeerId::new(2)).is_none(),
            "second promote no-op"
        );
    }
}
