//! Thread-local accounting of local data-plane work (rows scanned, blocks
//! pruned).
//!
//! The paper's metrics (hops, messages) deliberately ignore local scans,
//! but the columnar block layer exists precisely to shrink them — so the
//! executor reports two observability counters per query:
//! [`QueryMetrics::tuples_scanned`](crate::QueryMetrics::tuples_scanned)
//! and [`QueryMetrics::blocks_pruned`](crate::QueryMetrics::blocks_pruned).
//! The scan sites live deep inside the store and the query kernels, far
//! from any ledger, so the counts flow through a thread-local accumulator:
//! the executor brackets every `computeLocalState` / `computeLocalAnswer`
//! call with [`begin`] / [`end`] and drains the delta into the branch
//! ledger. One peer-visit runs entirely on one thread (the parallel engine
//! forks per restriction-area subtree, never inside a visit), so the
//! bracketing is race-free and the totals are schedule-independent.
//!
//! Accounting is **off by default** — a disabled [`add_scanned`] is a
//! thread-local load and a branch, so the counters cost nothing when the
//! executor runs with tracing off (large sweeps) and nothing at all outside
//! query execution (e.g. baseline code calling `PeerStore::skyline`
//! directly).

use std::cell::Cell;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TUPLES_SCANNED: Cell<u64> = const { Cell::new(0) };
    static BLOCKS_PRUNED: Cell<u64> = const { Cell::new(0) };
}

/// Records `n` tuple rows examined by a local scan (scored, dominance-
/// tested or filtered). No-op unless a [`begin`]/[`end`] bracket is open on
/// this thread.
#[inline]
pub fn add_scanned(n: u64) {
    ENABLED.with(|e| {
        if e.get() {
            TUPLES_SCANNED.with(|c| c.set(c.get() + n));
        }
    });
}

/// Records `n` whole blocks skipped by a bound test without touching a row.
/// No-op unless a [`begin`]/[`end`] bracket is open on this thread.
#[inline]
pub fn add_pruned(n: u64) {
    ENABLED.with(|e| {
        if e.get() {
            BLOCKS_PRUNED.with(|c| c.set(c.get() + n));
        }
    });
}

/// Opens an accounting bracket on this thread: zeroes the counters and
/// enables [`add_scanned`]/[`add_pruned`].
pub fn begin() {
    ENABLED.with(|e| e.set(true));
    TUPLES_SCANNED.with(|c| c.set(0));
    BLOCKS_PRUNED.with(|c| c.set(0));
}

/// Closes the bracket: disables accounting and returns
/// `(tuples_scanned, blocks_pruned)` accumulated since [`begin`].
pub fn end() -> (u64, u64) {
    ENABLED.with(|e| e.set(false));
    (
        TUPLES_SCANNED.with(Cell::get),
        BLOCKS_PRUNED.with(Cell::get),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_outside_brackets() {
        add_scanned(5);
        add_pruned(2);
        begin();
        assert_eq!(end(), (0, 0), "counts outside a bracket are dropped");
    }

    #[test]
    fn bracket_accumulates_and_resets() {
        begin();
        add_scanned(10);
        add_scanned(7);
        add_pruned(3);
        assert_eq!(end(), (17, 3));
        add_scanned(100); // after end: dropped
        begin();
        assert_eq!(end(), (0, 0), "begin zeroes");
    }

    #[test]
    fn threads_are_independent() {
        begin();
        add_scanned(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                begin();
                add_scanned(40);
                assert_eq!(end(), (40, 0));
            });
        });
        add_pruned(2);
        assert_eq!(end(), (1, 2), "sibling thread's bracket is invisible");
    }
}
