//! Thread-local accounting of local data-plane work (rows scanned, blocks
//! pruned, memtable reads, tombstones masked, compaction effort).
//!
//! The paper's metrics (hops, messages) deliberately ignore local scans,
//! but the columnar block layer and the LSM write path exist precisely to
//! shrink them — so the executor reports observability counters per query
//! (see [`ScanCounts`] and the matching `QueryMetrics` fields). The scan
//! sites live deep inside the store and the query kernels, far from any
//! ledger, so the counts flow through a thread-local accumulator: the
//! executor brackets every `computeLocalState` / `computeLocalAnswer` call
//! with [`begin`] / [`end`] and drains the delta into the branch ledger.
//! One peer-visit runs entirely on one thread (the parallel engine forks
//! per restriction-area subtree, never inside a visit), so the bracketing
//! is race-free and the totals are schedule-independent. Ingest paths
//! (freeze, compaction) report through the same brackets when a harness
//! opens one around a mutation batch — outside a bracket they cost nothing.
//!
//! Accounting is **off by default** — a disabled [`add_scanned`] is a
//! thread-local load and a branch, so the counters cost nothing when the
//! executor runs with tracing off (large sweeps) and nothing at all outside
//! query execution (e.g. baseline code calling `PeerStore::skyline`
//! directly).

use std::cell::Cell;

/// The data-plane work accumulated inside one [`begin`]/[`end`] bracket.
/// All counters are observability-only: they are excluded from
/// `QueryMetrics` equality, because they describe how much work an
/// execution *avoided*, which legitimately differs between executions that
/// are bit-identical in every paper metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanCounts {
    /// Tuple rows examined (scored, dominance-tested or filtered).
    pub tuples_scanned: u64,
    /// Whole blocks skipped by a bound test without touching a row.
    pub blocks_pruned: u64,
    /// Rows read from the store's memtable overlay (the unfrozen tail)
    /// rather than from a frozen run.
    pub memtable_hits: u64,
    /// Tombstone-masked rows skipped during scans and projection walks.
    pub tombstones_masked: u64,
    /// Compaction passes that rewrote at least one run.
    pub compactions_run: u64,
    /// Rows physically rewritten by the write path (memtable freezes and
    /// run compactions) — the numerator of write amplification.
    pub rows_rewritten: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNTS: Cell<ScanCounts> = const { Cell::new(ScanCounts {
        tuples_scanned: 0,
        blocks_pruned: 0,
        memtable_hits: 0,
        tombstones_masked: 0,
        compactions_run: 0,
        rows_rewritten: 0,
    }) };
}

#[inline]
fn add(apply: impl FnOnce(&mut ScanCounts)) {
    ENABLED.with(|e| {
        if e.get() {
            COUNTS.with(|c| {
                let mut counts = c.get();
                apply(&mut counts);
                c.set(counts);
            });
        }
    });
}

/// Records `n` tuple rows examined by a local scan (scored, dominance-
/// tested or filtered). No-op unless a [`begin`]/[`end`] bracket is open on
/// this thread.
#[inline]
pub fn add_scanned(n: u64) {
    add(|c| c.tuples_scanned += n);
}

/// Records `n` whole blocks skipped by a bound test without touching a row.
/// No-op unless a [`begin`]/[`end`] bracket is open on this thread.
#[inline]
pub fn add_pruned(n: u64) {
    add(|c| c.blocks_pruned += n);
}

/// Records `n` rows read from the memtable overlay (the store's unfrozen
/// tail) by a scan or projection walk. No-op outside a bracket.
#[inline]
pub fn add_memtable(n: u64) {
    add(|c| c.memtable_hits += n);
}

/// Records `n` tombstone-masked rows skipped by a scan or projection walk.
/// No-op outside a bracket.
#[inline]
pub fn add_masked(n: u64) {
    add(|c| c.tombstones_masked += n);
}

/// Records `n` compaction passes that rewrote runs. No-op outside a
/// bracket.
#[inline]
pub fn add_compactions(n: u64) {
    add(|c| c.compactions_run += n);
}

/// Records `n` rows physically rewritten by a memtable freeze or a run
/// compaction. No-op outside a bracket.
#[inline]
pub fn add_rewritten(n: u64) {
    add(|c| c.rows_rewritten += n);
}

/// Opens an accounting bracket on this thread: zeroes the counters and
/// enables the `add_*` recorders.
pub fn begin() {
    ENABLED.with(|e| e.set(true));
    COUNTS.with(|c| c.set(ScanCounts::default()));
}

/// Closes the bracket: disables accounting and returns the counts
/// accumulated since [`begin`].
pub fn end() -> ScanCounts {
    ENABLED.with(|e| e.set(false));
    COUNTS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_outside_brackets() {
        add_scanned(5);
        add_pruned(2);
        add_memtable(3);
        add_masked(4);
        begin();
        assert_eq!(
            end(),
            ScanCounts::default(),
            "counts outside a bracket are dropped"
        );
    }

    #[test]
    fn bracket_accumulates_and_resets() {
        begin();
        add_scanned(10);
        add_scanned(7);
        add_pruned(3);
        add_memtable(2);
        add_masked(5);
        add_compactions(1);
        add_rewritten(256);
        assert_eq!(
            end(),
            ScanCounts {
                tuples_scanned: 17,
                blocks_pruned: 3,
                memtable_hits: 2,
                tombstones_masked: 5,
                compactions_run: 1,
                rows_rewritten: 256,
            }
        );
        add_scanned(100); // after end: dropped
        begin();
        assert_eq!(end(), ScanCounts::default(), "begin zeroes");
    }

    #[test]
    fn threads_are_independent() {
        begin();
        add_scanned(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                begin();
                add_scanned(40);
                let c = end();
                assert_eq!(c.tuples_scanned, 40);
                assert_eq!(c.blocks_pruned, 0);
            });
        });
        add_pruned(2);
        let c = end();
        assert_eq!(
            (c.tuples_scanned, c.blocks_pruned),
            (1, 2),
            "sibling thread's bracket is invisible"
        );
    }
}
