//! Distribution statistics over per-peer quantities (storage load, link
//! counts, congestion counters). Used by the experiment harness to verify
//! structural claims — e.g. that data-steered joins balance storage, or
//! that routing load does not concentrate on few peers.

/// Summary statistics of a per-peer distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Distribution {
    /// Number of samples.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Gini coefficient in `[0, 1]`: 0 = perfectly even, →1 = concentrated
    /// on one peer. The standard imbalance measure for P2P load.
    pub gini: f64,
}

impl Distribution {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut v: Vec<f64> = values.into_iter().collect();
        assert!(!v.is_empty(), "no samples");
        assert!(v.iter().all(|x| x.is_finite()), "non-finite sample");
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let sum: f64 = v.iter().sum();
        let mean = sum / n as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // Gini from the sorted sample: Σ (2i − n − 1)·x_i / (n·Σx)
        let gini = if sum > 0.0 {
            v.iter()
                .enumerate()
                .map(|(i, x)| (2.0 * (i + 1) as f64 - n as f64 - 1.0) * x)
                .sum::<f64>()
                / (n as f64 * sum)
        } else {
            0.0
        };
        Self {
            count: n,
            min: v[0],
            max: v[n - 1],
            mean,
            median: v[(n - 1) / 2],
            std_dev: var.sqrt(),
            gini: gini.max(0.0),
        }
    }

    /// Max/mean ratio — a quick hotspot indicator (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_is_flat() {
        let d = Distribution::of((0..10).map(|_| 5.0));
        assert_eq!(d.count, 10);
        assert_eq!(d.min, 5.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 5.0);
        assert_eq!(d.median, 5.0);
        assert_eq!(d.std_dev, 0.0);
        assert!(d.gini.abs() < 1e-12);
        assert!((d.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_distribution_has_high_gini() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let d = Distribution::of(v);
        assert!(d.gini > 0.95, "gini = {}", d.gini);
        assert!(d.imbalance() > 50.0);
    }

    #[test]
    fn summary_values() {
        let d = Distribution::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.median, 2.0, "lower median");
        // known Gini of {1,2,3,4} is 0.25
        assert!((d.gini - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_rejected() {
        let _ = Distribution::of(std::iter::empty());
    }

    #[test]
    fn zero_sum_gini_is_zero() {
        let d = Distribution::of([0.0, 0.0, 0.0]);
        assert_eq!(d.gini, 0.0);
    }
}
