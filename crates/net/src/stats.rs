//! Distribution statistics over per-peer quantities (storage load, link
//! counts, congestion counters), plus the observation ledger the adaptive
//! query planner learns from.
//!
//! [`Distribution`] is used by the experiment harness to verify structural
//! claims — e.g. that data-steered joins balance storage, or that routing
//! load does not concentrate on few peers. [`QueryStats`] accumulates what
//! executed queries actually cost per propagation mode (message, hop and
//! wall-clock EWMAs, result-size history, per-peer visit cost), and
//! [`Plan`] is the record of one planning decision — substrate-level data
//! the `ripple-core` planner turns into mode choices. Everything here is
//! deterministic: EWMAs in observation order, no clocks, no randomness.

/// Summary statistics of a per-peer distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Distribution {
    /// Number of samples.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Gini coefficient in `[0, 1]`: 0 = perfectly even, →1 = concentrated
    /// on one peer. The standard imbalance measure for P2P load.
    pub gini: f64,
}

impl Distribution {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut v: Vec<f64> = values.into_iter().collect();
        assert!(!v.is_empty(), "no samples");
        assert!(v.iter().all(|x| x.is_finite()), "non-finite sample");
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let sum: f64 = v.iter().sum();
        let mean = sum / n as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // Gini from the sorted sample: Σ (2i − n − 1)·x_i / (n·Σx)
        let gini = if sum > 0.0 {
            v.iter()
                .enumerate()
                .map(|(i, x)| (2.0 * (i + 1) as f64 - n as f64 - 1.0) * x)
                .sum::<f64>()
                / (n as f64 * sum)
        } else {
            0.0
        };
        Self {
            count: n,
            min: v[0],
            max: v[n - 1],
            mean,
            median: v[(n - 1) / 2],
            std_dev: var.sqrt(),
            gini: gini.max(0.0),
        }
    }

    /// Max/mean ratio — a quick hotspot indicator (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }
}

/// An exponentially-weighted moving average over a stream of observations.
///
/// `observe` folds deterministically in call order; the first observation
/// seeds the average. Used by [`QueryStats`] for per-mode cost tracking and
/// per-peer visit-cost smoothing.
#[derive(Clone, Debug, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    count: u64,
}

impl Ewma {
    /// A fresh average with smoothing factor `alpha` in `(0, 1]` (higher =
    /// more weight on recent observations).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            value: None,
            count: 0,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation");
        self.count += 1;
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current average, `None` before the first observation.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A propagation mode as the planner names it — the substrate-level mirror
/// of `ripple-core`'s `Mode` (kept here so the ledger crates need no
/// dependency on the algorithm crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlannedMode {
    /// Parallel fan-out at every hop.
    Fast,
    /// Fully sequential propagation (refined thresholds, fewest messages).
    Slow,
    /// Sequential above the hop budget, parallel below it.
    Ripple(u32),
    /// Flood every peer.
    Broadcast,
}

impl PlannedMode {
    /// A stable human-readable label (`fast`, `slow`, `ripple(r)`,
    /// `broadcast`) for reports and CSVs.
    pub fn label(&self) -> String {
        match self {
            PlannedMode::Fast => "fast".into(),
            PlannedMode::Slow => "slow".into(),
            PlannedMode::Ripple(r) => format!("ripple({r})"),
            PlannedMode::Broadcast => "broadcast".into(),
        }
    }
}

/// How a [`Plan`] was arrived at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// An exploration probe: the candidate had too few observations, so the
    /// planner scheduled it to gather a sample.
    Probe,
    /// The calibrated cost model's argmin over observed candidates.
    Model,
    /// The never-much-worse fallback: the model's choice had drifted
    /// measurably above the best observed mode, so the planner pinned the
    /// best observed mode instead.
    Fallback,
}

/// One planning decision: the mode (with its ripple radius), the thread
/// count handed to the parallel executor, and how the decision was made.
/// Stamped into `QueryMetrics::plan` *after* the run completes, so ledgers
/// stay bit-identical to a static execution of the same mode.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// The chosen propagation mode.
    pub mode: PlannedMode,
    /// Threads for `run_parallel` (1 = sequential execution).
    pub threads: usize,
    /// How the choice was made.
    pub source: PlanSource,
}

/// Observed cost EWMAs of one candidate mode.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeStats {
    /// The candidate this entry tracks.
    pub mode: PlannedMode,
    /// Total messages per query (the paper's congestion driver).
    pub messages: Ewma,
    /// Critical-path hops per query (the paper's latency metric).
    pub latency: Ewma,
    /// Wall-clock nanoseconds per query on this machine.
    pub wall_ns: Ewma,
    /// Smallest wall-clock ever observed for this mode
    /// (`f64::INFINITY` before the first observation). Wall-clock noise
    /// is one-sided — scheduler interference only ever *adds* time — so
    /// the running floor converges to the mode's true cost from above
    /// and a single clean sample undoes any number of spiked ones,
    /// where an average would stay poisoned for many observations.
    pub wall_floor_ns: f64,
}

/// Smoothing factor of the planner's EWMAs: responsive enough to adapt
/// within a short probe phase, damped enough that one outlier query cannot
/// flip the plan.
const STATS_ALPHA: f64 = 0.4;

/// The observation ledger an adaptive planner learns from: per-mode cost
/// EWMAs, result-size history and per-peer visit cost, all folded in
/// deterministic observation order.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Per-candidate observations, in first-observation order (a `Vec`, not
    /// a map, so iteration order is deterministic).
    modes: Vec<ModeStats>,
    /// Answer-size history across all modes (selectivity feedback).
    result_sizes: Ewma,
    /// Wall-clock nanoseconds per peer visit — the per-peer latency proxy
    /// that scales wall-clock predictions with network size.
    visit_ns: Ewma,
    /// Total observations folded in.
    observations: u64,
}

impl Default for Ewma {
    fn default() -> Self {
        Self::new(STATS_ALPHA)
    }
}

impl QueryStats {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one executed query: its mode, its ledger totals and its
    /// measured wall-clock time.
    pub fn observe(
        &mut self,
        mode: PlannedMode,
        messages: u64,
        latency: u64,
        peers_visited: u64,
        result_size: usize,
        wall_ns: u64,
    ) {
        self.observations += 1;
        self.result_sizes.observe(result_size as f64);
        if peers_visited > 0 {
            self.visit_ns.observe(wall_ns as f64 / peers_visited as f64);
        }
        let entry = match self.modes.iter_mut().find(|m| m.mode == mode) {
            Some(e) => e,
            None => {
                self.modes.push(ModeStats {
                    mode,
                    messages: Ewma::default(),
                    latency: Ewma::default(),
                    wall_ns: Ewma::default(),
                    wall_floor_ns: f64::INFINITY,
                });
                self.modes.last_mut().expect("just pushed")
            }
        };
        entry.messages.observe(messages as f64);
        entry.latency.observe(latency as f64);
        entry.wall_ns.observe(wall_ns as f64);
        entry.wall_floor_ns = entry.wall_floor_ns.min(wall_ns as f64);
    }

    /// The observed stats of `mode`, if it has ever been run.
    pub fn mode_stats(&self, mode: PlannedMode) -> Option<&ModeStats> {
        self.modes.iter().find(|m| m.mode == mode)
    }

    /// Number of observations of `mode`.
    pub fn samples(&self, mode: PlannedMode) -> u64 {
        self.mode_stats(mode).map_or(0, |m| m.messages.count())
    }

    /// All observed candidates, in first-observation order.
    pub fn observed_modes(&self) -> impl Iterator<Item = &ModeStats> {
        self.modes.iter()
    }

    /// EWMA of answer sizes across all observed queries.
    pub fn result_size(&self) -> Option<f64> {
        self.result_sizes.get()
    }

    /// EWMA of wall-clock nanoseconds per peer visit.
    pub fn visit_ns(&self) -> Option<f64> {
        self.visit_ns.get()
    }

    /// Total queries folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_is_flat() {
        let d = Distribution::of((0..10).map(|_| 5.0));
        assert_eq!(d.count, 10);
        assert_eq!(d.min, 5.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 5.0);
        assert_eq!(d.median, 5.0);
        assert_eq!(d.std_dev, 0.0);
        assert!(d.gini.abs() < 1e-12);
        assert!((d.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_distribution_has_high_gini() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let d = Distribution::of(v);
        assert!(d.gini > 0.95, "gini = {}", d.gini);
        assert!(d.imbalance() > 50.0);
    }

    #[test]
    fn summary_values() {
        let d = Distribution::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.median, 2.0, "lower median");
        // known Gini of {1,2,3,4} is 0.25
        assert!((d.gini - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_rejected() {
        let _ = Distribution::of(std::iter::empty());
    }

    #[test]
    fn zero_sum_gini_is_zero() {
        let d = Distribution::of([0.0, 0.0, 0.0]);
        assert_eq!(d.gini, 0.0);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        assert_eq!(e.count(), 0);
        e.observe(10.0);
        assert_eq!(e.get(), Some(10.0), "first observation seeds");
        e.observe(20.0);
        assert_eq!(e.get(), Some(15.0));
        assert_eq!(e.count(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn query_stats_track_per_mode() {
        let mut qs = QueryStats::new();
        assert_eq!(qs.samples(PlannedMode::Fast), 0);
        qs.observe(PlannedMode::Fast, 100, 5, 50, 10, 1_000_000);
        qs.observe(PlannedMode::Slow, 40, 30, 40, 10, 800_000);
        qs.observe(PlannedMode::Fast, 120, 5, 50, 12, 1_200_000);
        assert_eq!(qs.samples(PlannedMode::Fast), 2);
        assert_eq!(qs.samples(PlannedMode::Slow), 1);
        assert_eq!(qs.samples(PlannedMode::Broadcast), 0);
        assert_eq!(qs.observations(), 3);
        let fast = qs.mode_stats(PlannedMode::Fast).unwrap();
        assert_eq!(fast.latency.get(), Some(5.0));
        let msgs = fast.messages.get().unwrap();
        assert!(msgs > 100.0 && msgs < 120.0, "smoothed between samples");
        assert_eq!(fast.wall_floor_ns, 1_000_000.0, "floor keeps the minimum");
        // deterministic first-observation iteration order
        let order: Vec<PlannedMode> = qs.observed_modes().map(|m| m.mode).collect();
        assert_eq!(order, vec![PlannedMode::Fast, PlannedMode::Slow]);
        assert!(qs.result_size().unwrap() > 10.0);
        assert!(qs.visit_ns().unwrap() > 0.0);
    }

    #[test]
    fn zero_visit_queries_do_not_poison_visit_cost() {
        let mut qs = QueryStats::new();
        qs.observe(PlannedMode::Slow, 0, 0, 0, 0, 500);
        assert_eq!(qs.visit_ns(), None, "no visits: no per-visit sample");
        assert_eq!(qs.observations(), 1);
    }

    #[test]
    fn planned_mode_labels() {
        assert_eq!(PlannedMode::Fast.label(), "fast");
        assert_eq!(PlannedMode::Slow.label(), "slow");
        assert_eq!(PlannedMode::Ripple(3).label(), "ripple(3)");
        assert_eq!(PlannedMode::Broadcast.label(), "broadcast");
    }
}
