//! Peer identifiers.

use std::fmt;

/// A stable handle for a simulated peer.
///
/// Ids are allocation indices into an overlay's peer table and are **never
/// reused** after a peer departs; a dangling id is therefore always
/// detectable, which is what the lazy link-repair paths of the overlays rely
/// on under churn.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(u32);

impl PeerId {
    /// Wraps a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_roundtrip() {
        let id = PeerId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "peer#42");
    }

    #[test]
    fn ids_hash_and_compare() {
        let mut set = HashSet::new();
        set.insert(PeerId::new(1));
        set.insert(PeerId::new(1));
        set.insert(PeerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(PeerId::new(1) < PeerId::new(2));
    }
}
