//! Chord-side parallel-execution equivalence: the twins of `ripple-core`'s
//! `parallel_equivalence` suite, proving the intra-query parallel engine is
//! substrate-generic. Ring-arc regions (`Vec<Rect>` with wrap-around
//! segments) exercise a different region algebra than MIDAS boxes, and the
//! clockwise failover discipline trims restrictions — the parallel engine
//! must reproduce all of it bit-for-bit.

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::TopKQuery;
use ripple_core::Executor;
use ripple_geom::{LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Broadcast, Mode::Ripple(2), Mode::Slow];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data);
    (net, rng)
}

#[test]
fn parallel_equals_sequential_on_the_ring() {
    let (net, mut rng) = loaded_ring(80, 500, 61);
    let planes = [FaultPlane::none(), FaultPlane::drops(0.15, 23)];
    for k in [1usize, 10] {
        let q = TopKQuery::new(LinearScore::uniform(1), k);
        for plane in planes {
            for mode in MODES {
                let initiator = net.random_peer(&mut rng);
                let exec = Executor::with_faults(&net, plane, 5);
                let seq = exec.run(initiator, &q, mode);
                for threads in [2usize, 4] {
                    let par = exec.run_parallel(initiator, &q, mode, threads);
                    assert_eq!(
                        seq.metrics, par.metrics,
                        "k={k} [{mode:?}, {threads} threads, drop_p={}]",
                        plane.drop_probability
                    );
                    assert_eq!(seq.answers, par.answers, "k={k} [{mode:?}]");
                    assert_eq!(seq.coverage, par.coverage, "k={k} [{mode:?}]");
                }
            }
        }
    }
}

#[test]
fn parallel_equals_sequential_on_a_crashed_ring() {
    let (mut net, mut rng) = loaded_ring(64, 400, 62);
    for _ in 0..6 {
        let live = net.live_peers();
        if live.len() > 2 {
            let victim = live[rng.gen_range(1..live.len())];
            net.crash(victim);
        }
    }
    net.check_invariants();
    let crash_aware = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 5,
        ..FaultPlane::none()
    };
    let q = TopKQuery::new(LinearScore::uniform(1), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware, 13);
        let seq = exec.run(initiator, &q, mode);
        let par = exec.run_parallel(initiator, &q, mode, 4);
        assert_eq!(seq.metrics, par.metrics, "[{mode:?}]");
        assert_eq!(seq.answers, par.answers, "[{mode:?}]");
        assert_eq!(
            seq.coverage, par.coverage,
            "[{mode:?}] trimmed failover restrictions must be reported \
             identically"
        );
    }
}
