//! Chord-side fault-plane properties: the twins of `ripple-core`'s
//! `fault_equivalence` tests, proving the fault machinery is substrate-
//! generic. A `FaultPlane::none` executor is bit-identical to the plain
//! one over the ring; crashes degrade queries gracefully (survivor-exact
//! answers, honest coverage, no duplicate visits); successor-list repair
//! restores complete coverage; invariants hold across arbitrary
//! crash → repair → query interleavings.

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::{centralized_topk, run_topk_with, TopKQuery};
use ripple_core::Executor;
use ripple_geom::{LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::{ChurnOverlay, ChurnStage, FaultPlane};

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data);
    (net, rng)
}

fn survivors(net: &ChordNetwork) -> Vec<Tuple> {
    net.live_peers()
        .iter()
        .flat_map(|&p| net.peer(p).store.tuples().to_vec())
        .collect()
}

fn ids(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.id).collect()
}

/// Active plane that only exposes crash handling (no drops, no slowness).
fn crash_aware() -> FaultPlane {
    FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 5,
        ..FaultPlane::none()
    }
}

#[test]
fn none_plane_is_observationally_identical_on_chord() {
    let (net, mut rng) = loaded_ring(80, 500, 51);
    let score = LinearScore::uniform(1);
    for k in [1usize, 5, 40] {
        let q = TopKQuery::new(score.clone(), k);
        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let plain = Executor::new(&net).run(initiator, &q, mode);
            let none = Executor::with_faults(&net, FaultPlane::none(), 3).run(initiator, &q, mode);
            assert_eq!(
                plain.metrics, none.metrics,
                "k={k} [{mode:?}]: ledgers must be bit-identical"
            );
            assert_eq!(plain.answers, none.answers, "k={k} [{mode:?}]");
            assert!(none.coverage.is_complete());
            assert_eq!(none.metrics.duplicate_visits, 0);
        }
    }
}

#[test]
fn crash_repair_query_interleavings_stay_sound() {
    let (mut net, mut rng) = loaded_ring(64, 400, 52);
    let score = LinearScore::uniform(1);
    for round in 0..4u64 {
        // Crash a wave of non-anchor peers (the anchor is immortal).
        for _ in 0..4 {
            let live = net.live_peers();
            let candidates: Vec<_> = live.into_iter().filter(|&p| p != net.ring()[0]).collect();
            if candidates.is_empty() || net.peer_count() <= 2 {
                break;
            }
            let victim = candidates[rng.gen_range(0..candidates.len())];
            net.crash(victim);
        }
        net.check_invariants();
        let alive = survivors(&net);
        let orphan_len: f64 = net.orphan_segments().iter().map(|s| s.side(0)).sum();
        assert!(orphan_len > 0.0, "crashes must orphan arc length");

        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::with_faults(&net, crash_aware(), round);
            let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 8, mode);
            assert_eq!(
                ids(&got),
                ids(&centralized_topk(&alive, &score, 8)),
                "[{mode:?}] answers must equal the oracle over survivors"
            );
            assert_eq!(metrics.duplicate_visits, 0, "[{mode:?}]");
            assert!(
                cov.answered_fraction >= 1.0 - orphan_len - 1e-9,
                "[{mode:?}] answered {} with orphaned arcs {orphan_len}",
                cov.answered_fraction
            );
            if mode == Mode::Broadcast {
                assert!(!cov.is_complete());
                assert!(metrics.timeouts > 0, "stale fingers must trip timeouts");
            }
        }

        // Repair: crashed entries are excised, fingers re-aimed at live
        // successors, coverage complete again.
        let msgs = net.repair_all();
        assert!(msgs > 0);
        net.check_invariants();
        assert!(net.orphan_segments().is_empty());
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware(), round);
        let (got, _, cov) = run_topk_with(&exec, initiator, score.clone(), 8, Mode::Fast);
        assert!(cov.is_complete(), "repair must restore full coverage");
        assert_eq!(
            ids(&got),
            ids(&centralized_topk(&survivors(&net), &score, 8))
        );

        // Keep the ring evolving between rounds.
        for _ in 0..3 {
            net.join(rng.gen::<f64>());
        }
        net.check_invariants();
    }
}

/// Property: arbitrary interleavings of the two churn stages with crash
/// waves and repairs — join → crash → repair → depart, in every rotation —
/// keep the ring invariants, the tuple ledger (`stored + lost − recovered ==
/// inserted`) and query soundness intact, with the replica ledger riding
/// along through every transition.
#[test]
fn churn_stages_interleaved_with_crashes_stay_sound() {
    use ripple_net::churn::run_stage;
    let (mut net, mut rng) = loaded_ring(48, 400, 54);
    let inserted = 400u64;
    net.enable_replication(2);
    let score = LinearScore::uniform(1);
    let mut checkpoints_hit = 0usize;

    let audit = |net: &mut ChordNetwork, rng: &mut SmallRng, label: &str| {
        net.check_invariants();
        let stored: u64 = net
            .live_peers()
            .iter()
            .map(|&p| net.peer(p).store.tuples().len() as u64)
            .sum();
        assert_eq!(
            stored + net.tuples_lost() - net.tuples_recovered(),
            inserted,
            "{label}: tuple ledger must balance"
        );
        let initiator = net.random_peer(rng);
        let exec = Executor::with_faults(&*net, crash_aware(), 31);
        let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 8, Mode::Fast);
        assert_eq!(metrics.duplicate_visits, 0, "{label}");
        if cov.is_complete() {
            assert_eq!(
                ids(&got),
                ids(&centralized_topk(&survivors(net), &score, 8)),
                "{label}: complete coverage must imply survivor-exact answers"
            );
        }
    };

    for round in 0..3 {
        // Increasing stage, crash waves injected at each checkpoint.
        let grow_to = net.peer_count() + 12;
        let cps = [net.peer_count() + 4, net.peer_count() + 8, grow_to];
        let mut wave_rng = SmallRng::seed_from_u64(540 + round);
        run_stage(
            &mut net,
            ChurnStage::Increasing,
            grow_to,
            &cps,
            &mut rng,
            |net, _| {
                checkpoints_hit += 1;
                for _ in 0..2 {
                    net.churn_crash(&mut wave_rng);
                }
                net.anti_entropy();
            },
        );
        audit(&mut net, &mut rng, "after increasing stage + crash waves");

        // Repair mid-schedule: promotes surviving copies, reclaims arcs.
        net.repair_all();
        audit(&mut net, &mut rng, "after mid-schedule repair");
        assert!(net.orphan_segments().is_empty());

        // Decreasing stage: graceful departures drop obsolete copies.
        let shrink_to = (net.peer_count().saturating_sub(10)).max(8);
        run_stage(
            &mut net,
            ChurnStage::Decreasing,
            shrink_to,
            &[shrink_to],
            &mut rng,
            |net, _| {
                checkpoints_hit += 1;
                if let Some(set) = net.replicas() {
                    for owner in set.owners() {
                        assert!(
                            net.is_live(owner),
                            "graceful departures must drop their obsolete copies"
                        );
                    }
                }
            },
        );
        audit(&mut net, &mut rng, "after decreasing stage");
    }
    assert!(checkpoints_hit >= 9, "the schedule must actually fire");
    assert!(net.tuples_lost() > 0, "crashes must have destroyed data");
    assert!(
        net.tuples_recovered() > 0,
        "repairs must have promoted copies"
    );
}

#[test]
fn drop_recovery_is_deterministic_on_chord() {
    let (net, mut rng) = loaded_ring(64, 400, 53);
    let score = LinearScore::uniform(1);
    let plane = FaultPlane::drops(0.1, 77);
    let initiator = net.random_peer(&mut rng);
    let exec_a = Executor::with_faults(&net, plane, 11);
    let exec_b = Executor::with_faults(&net, plane, 11);
    let (a, am, ac) = run_topk_with(&exec_a, initiator, score.clone(), 8, Mode::Broadcast);
    let (b, bm, bc) = run_topk_with(&exec_b, initiator, score.clone(), 8, Mode::Broadcast);
    assert_eq!(am, bm, "replay must be exact");
    assert_eq!(a, b);
    assert_eq!(ac, bc);
    assert!(am.messages_dropped > 0, "p=0.1 over a broadcast must drop");
    assert!(am.retries > 0);
    if ac.is_complete() {
        assert_eq!(ids(&a), ids(&centralized_topk(&survivors(&net), &score, 8)));
    }
}
