//! Chord-side smoke for the commission-fault plane: corrupted responses on
//! the ring are audited out, the liars quarantined, and the audited answer
//! stays exact — proving the audit/quarantine/re-query path is substrate-
//! generic (the MIDAS-side depth lives in `ripple-core`'s
//! `audit_equivalence` and `verify_mutation` suites).

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::{centralized_topk, run_topk_certified};
use ripple_core::Executor;
use ripple_geom::{LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::CorruptionPlane;
use ripple_verify::verify_topk;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng, Vec<Tuple>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data.clone());
    (net, rng, data)
}

fn ids(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.id).collect()
}

/// Poisoned responses on a replicated ring: the audited executor keeps
/// recall at 1.0 in every mode, quarantines the corrupting peers, and its
/// certificate still verifies against the overlay epoch.
#[test]
fn audited_ring_survives_corruption_with_exact_recall() {
    let (mut net, mut rng, data) = loaded_ring(64, 800, 31);
    net.enable_replication(1);
    net.refresh_replicas();
    net.check_invariants();
    let score = LinearScore::uniform(1);
    let k = 10;
    let oracle = ids(&centralized_topk(&data, &score, k));
    let plane = CorruptionPlane::flat(0.4, 13);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::new(&net).with_corruption(plane);
        let (got, m, cov, cert) = run_topk_certified(&exec, initiator, score.clone(), k, mode);
        assert_eq!(ids(&got), oracle, "[{mode:?}] audited recall must be 1.0");
        assert!(m.audits_run > 0, "[{mode:?}] remote deposits are audited");
        assert!(cov.is_complete(), "[{mode:?}] replicas keep coverage whole");
        verify_topk(&cert.expect("certs on"), &got, &score, k, net.epoch())
            .unwrap_or_else(|e| panic!("[{mode:?}] audited certificate rejected: {e}"));
    }
    assert!(
        net.quarantine().quarantined() > 0,
        "the sweep must have caught and quarantined at least one liar"
    );
}

/// The invisibility gate on the ring: with corruption off, the auditing
/// executor and the audit-ablated one are bit-identical.
#[test]
fn auditing_is_invisible_on_a_clean_ring() {
    let (net, mut rng, _) = loaded_ring(64, 800, 32);
    let score = LinearScore::uniform(1);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let on = run_topk_certified(&Executor::new(&net), initiator, score.clone(), 10, mode);
        let off = run_topk_certified(
            &Executor::new(&net).without_audit(),
            initiator,
            score.clone(),
            10,
            mode,
        );
        assert_eq!(on.0, off.0, "[{mode:?}] answers");
        assert_eq!(on.1, off.1, "[{mode:?}] ledger");
        assert_eq!(on.2, off.2, "[{mode:?}] coverage");
        assert_eq!(on.3, off.3, "[{mode:?}] certificate");
        assert_eq!(on.1.audits_run, 0, "[{mode:?}] no audit is ever spent");
    }
    assert_eq!(net.quarantine().len(), 0, "nobody to quarantine");
}
