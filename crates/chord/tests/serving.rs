//! Chord behind the [`QueryService`]: the substrate-genericity of the
//! serving plane. Top-k queries are admitted, scheduled and served over
//! the ring exactly as over MIDAS — pinned generations, verifiable
//! certificates, generation-keyed cache hits — while skyline, which has
//! no `Vec<Rect>` instantiation, is rejected at admission with
//! [`ServiceError::Unsupported`] instead of panicking a driver thread.

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::service::{QueryService, ServiceConfig, ServiceError, ServiceQuery, ServiceScore};
use ripple_geom::{LinearScore, Rect, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_verify::{verify_coverage, verify_topk};

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data);
    (net, rng)
}

fn topk_shape(weight: f64, k: usize) -> ServiceQuery {
    ServiceQuery::TopK {
        score: ServiceScore::Linear(vec![weight]),
        k,
    }
}

/// Top-k served through the frontier across churn rounds: every response
/// pins the round's generation and its certificate verifies against it.
#[test]
fn served_topk_over_chord_verifies_across_churn() {
    let (net, mut rng) = loaded_ring(64, 500, 91);
    let service = QueryService::new(
        net,
        ServiceConfig {
            drivers: 2,
            cache: false,
            ..ServiceConfig::default()
        },
    );

    for round in 0..6u64 {
        let pinned = service.generation();
        let mut batch = Vec::new();
        for (i, &mode) in MODES.iter().enumerate() {
            let k = 1 + (round as usize + i) % 10;
            let query = topk_shape(1.0 + round as f64 / 4.0, k);
            let initiator = service.with_network(|net| net.random_peer(&mut rng));
            let ticket = service
                .submit(i as u32, initiator, query.clone(), mode)
                .expect("top-k is supported on the ring");
            batch.push((query, mode, ticket));
        }
        for (query, mode, ticket) in batch {
            let resp = ticket.wait().expect("admitted queries complete");
            assert_eq!(resp.generation, pinned, "[round {round}, {mode:?}]");
            let cert = resp.certificate.as_deref().expect("certificates on");
            let (ServiceQuery::TopK {
                score: ServiceScore::Linear(w),
                k,
            },) = (query,)
            else {
                unreachable!()
            };
            verify_topk(cert, &resp.answers, &LinearScore::new(w), k, pinned)
                .unwrap_or_else(|e| panic!("[round {round}, {mode:?}] rejected: {e}"));
            verify_coverage(
                cert,
                resp.coverage.answered_fraction,
                &resp.coverage.unreachable,
            )
            .unwrap_or_else(|e| panic!("[round {round}, {mode:?}] coverage: {e}"));
        }
        // Churn the ring between rounds: join / graceful leave / insert.
        let before = service.generation();
        service.advance_epoch(|net| match round % 3 {
            0 => {
                let pos = rng.gen::<f64>();
                net.join(pos);
            }
            1 => {
                let live = net.live_peers();
                let anchor = net.ring()[0];
                let victim = live.into_iter().find(|&p| p != anchor).expect("live peer");
                net.leave(victim);
            }
            _ => {
                net.insert_tuple(Tuple::new(30_000 + round, vec![rng.gen::<f64>()]));
            }
        });
        assert!(service.generation() > before, "round {round} must bump");
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, 24);
    assert_eq!(stats.completed, 24);
}

/// The cache is generation-keyed on the ring too: a repeated shape hits
/// for free, and a bump after crash + repair forces a recompute.
#[test]
fn chord_cache_hits_and_crash_repair_invalidation() {
    let (mut net, mut rng) = loaded_ring(48, 400, 92);
    net.enable_replication(1);
    let service = QueryService::new(net, ServiceConfig::default());

    let query = topk_shape(1.0, 10);
    let initiator = service.with_network(|net| net.random_peer(&mut rng));
    let first = service
        .submit(0, initiator, query.clone(), Mode::Fast)
        .unwrap()
        .wait()
        .unwrap();
    assert!(!first.cache_hit);
    // Different tenant, initiator and mode: same shape + generation → hit.
    let other = service.with_network(|net| net.random_peer(&mut rng));
    let hit = service
        .submit(1, other, query.clone(), Mode::Slow)
        .unwrap()
        .wait()
        .unwrap();
    assert!(hit.cache_hit, "repeated shape at a stable generation hits");
    assert_eq!(hit.answers, first.answers);
    assert_eq!(hit.metrics.total_messages(), 0);

    // Crash + repair bumps the generation and purges the cache.
    service.advance_epoch(|net| {
        let anchor = net.ring()[0];
        let victim = net
            .live_peers()
            .into_iter()
            .find(|&p| p != anchor)
            .expect("live peer");
        net.crash(victim);
        net.repair_all();
        net.refresh_replicas();
        net.check_invariants();
    });
    let after = service
        .submit(0, initiator, query, Mode::Fast)
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        !after.cache_hit,
        "a stale-generation hit must be impossible"
    );
    assert!(after.generation > first.generation);
    assert!(after.metrics.total_messages() > 0);
    let cert = after.certificate.as_deref().expect("certificates on");
    verify_topk(
        cert,
        &after.answers,
        &LinearScore::new(vec![1.0]),
        10,
        after.generation,
    )
    .expect("post-repair certificate verifies against the new generation");
    assert!(service.stats().cache_invalidated >= 1);
}

/// Skyline has no ring instantiation: admission rejects it synchronously
/// and the rejection is visible in both the tenant and global ledgers.
#[test]
fn skyline_is_rejected_at_admission_on_chord() {
    let (net, mut rng) = loaded_ring(24, 200, 93);
    let service = QueryService::new(net, ServiceConfig::default());
    let initiator = service.with_network(|net| net.random_peer(&mut rng));
    for constraint in [None, Some(Rect::new(vec![0.1], vec![0.8]))] {
        let err = service
            .submit(
                7,
                initiator,
                ServiceQuery::Skyline { constraint },
                Mode::Fast,
            )
            .unwrap_err();
        assert_eq!(err, ServiceError::Unsupported);
    }
    assert_eq!(service.tenant_stats(7).rejected, 2);
    assert_eq!(service.stats().rejected, 2);
    assert_eq!(service.queue_len(), 0, "rejected queries never enqueue");
}
