//! Chord ring integration: queries stay exact across churn, fingers stay
//! logarithmic, and the RIPPLE adapter's regions track the ring.

use ripple_chord::ChordNetwork;
use ripple_core::framework::{Mode, RippleOverlay};
use ripple_core::topk::{centralized_topk, run_topk};
use ripple_geom::{Norm, PeakScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::ChurnOverlay;

#[test]
fn queries_stay_exact_across_churn() {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut net = ChordNetwork::build(64, &mut rng);
    let data: Vec<Tuple> = (0..400u64)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data.clone());
    let score = PeakScore::new(vec![0.42], Norm::L1);
    let oracle: Vec<u64> = centralized_topk(&data, &score, 6)
        .iter()
        .map(|t| t.id)
        .collect();
    for round in 0..8 {
        for _ in 0..10 {
            if rng.gen_bool(0.5) {
                net.churn_join(&mut rng);
            } else {
                net.churn_leave(&mut rng);
            }
        }
        net.check_invariants();
        let initiator = net.random_peer(&mut rng);
        let (top, _) = run_topk(&net, initiator, score.clone(), 6, Mode::Slow);
        assert_eq!(
            top.iter().map(|t| t.id).collect::<Vec<_>>(),
            oracle,
            "round {round}"
        );
    }
}

#[test]
fn finger_count_tracks_ring_size() {
    let mut rng = SmallRng::seed_from_u64(2);
    let small = ChordNetwork::build(32, &mut rng);
    let big = ChordNetwork::build(1024, &mut rng);
    assert!(big.finger_count() > small.finger_count());
    // fingers per peer stay O(log n)
    let p = big.random_peer(&mut rng);
    assert!(big.fingers(p).len() as u32 <= big.finger_count() + 1);
}

#[test]
fn regions_stay_a_partition_under_churn() {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut net = ChordNetwork::build(48, &mut rng);
    for _ in 0..30 {
        if rng.gen_bool(0.6) {
            net.churn_join(&mut rng);
        } else {
            net.churn_leave(&mut rng);
        }
    }
    for &p in net.ring().iter().take(12) {
        let link_len: f64 = net
            .peer_links(p)
            .iter()
            .flat_map(|(_, segs)| segs.iter().map(|s| s.side(0)))
            .sum();
        let zone_len: f64 = net.zone_segments(p).iter().map(|s| s.side(0)).sum();
        assert!(
            (link_len + zone_len - 1.0).abs() < 1e-9,
            "coverage broke after churn: {}",
            link_len + zone_len
        );
    }
}

#[test]
fn broadcast_reaches_the_whole_ring_after_churn() {
    let mut rng = SmallRng::seed_from_u64(4);
    let mut net = ChordNetwork::build(40, &mut rng);
    for _ in 0..20 {
        net.churn_join(&mut rng);
    }
    net.insert_all((0..100u64).map(|i| Tuple::new(i, vec![(i as f64 + 0.5) / 100.0])));
    let initiator = net.random_peer(&mut rng);
    let score = PeakScore::new(vec![0.0], Norm::L1);
    let (_, m) = run_topk(&net, initiator, score, 5, Mode::Broadcast);
    assert_eq!(m.peers_visited as usize, net.peer_count());
}
