//! Chord-side replica-recovery properties: the twins of `ripple-core`'s
//! `replica_equivalence` suite, proving the recovery path is substrate-
//! generic. On the ring the failover adopter *trims* the abandoned arc to
//! its clockwise-reachable part, so recovery exercises the trim branch of
//! the delivery loop (MIDAS, whose failover adopts whole boxes, only
//! exercises the fully-abandoned branch) — the two suites together cover
//! both code paths.

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::{centralized_topk, run_topk_with, TopKQuery};
use ripple_core::Executor;
use ripple_geom::{LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];
const THREADS: [usize; 2] = [2, 4];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data);
    (net, rng)
}

fn all_tuples(net: &ChordNetwork) -> Vec<Tuple> {
    net.live_peers()
        .iter()
        .flat_map(|&p| net.peer(p).store.tuples().to_vec())
        .collect()
}

fn ids(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.id).collect()
}

fn crash_aware() -> FaultPlane {
    FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 5,
        ..FaultPlane::none()
    }
}

/// Crashes `n` non-anchor peers one at a time, one anti-entropy pass after
/// each (failure detector keeping pace with the repair daemon).
fn crash_wave(net: &mut ChordNetwork, rng: &mut SmallRng, n: usize) {
    for _ in 0..n {
        let candidates: Vec<_> = net
            .live_peers()
            .into_iter()
            .filter(|&p| p != net.ring()[0])
            .collect();
        if candidates.is_empty() || net.peer_count() <= 2 {
            break;
        }
        let victim = candidates[rng.gen_range(0..candidates.len())];
        net.crash(victim);
        net.refresh_replicas();
    }
    net.check_invariants();
}

#[test]
fn k_zero_is_bit_identical_to_unreplicated_on_chord() {
    // Twin rings from the same seed, same crash schedule; one never enables
    // replication, the other carries a k = 0 set.
    let (mut plain, mut rng_a) = loaded_ring(64, 400, 61);
    let (mut replicated, mut rng_b) = loaded_ring(64, 400, 61);
    replicated.enable_replication(0);
    for _ in 0..6 {
        let ca: Vec<_> = plain
            .live_peers()
            .into_iter()
            .filter(|&p| p != plain.ring()[0])
            .collect();
        let va = ca[rng_a.gen_range(0..ca.len())];
        let cb: Vec<_> = replicated
            .live_peers()
            .into_iter()
            .filter(|&p| p != replicated.ring()[0])
            .collect();
        let vb = cb[rng_b.gen_range(0..cb.len())];
        assert_eq!(va, vb, "twins must stay in lockstep");
        plain.crash(va);
        replicated.crash(vb);
        replicated.refresh_replicas();
    }
    let q = TopKQuery::new(LinearScore::uniform(1), 8);
    let initiator = plain.random_peer(&mut rng_a);
    let ea = Executor::with_faults(&plain, crash_aware(), 7);
    let eb = Executor::with_faults(&replicated, crash_aware(), 7);
    for mode in MODES {
        let oa = ea.run(initiator, &q, mode);
        let ob = eb.run(initiator, &q, mode);
        assert_eq!(oa.metrics, ob.metrics, "[{mode:?}] k=0 must be inert");
        assert_eq!(oa.answers, ob.answers, "[{mode:?}]");
        assert_eq!(oa.coverage, ob.coverage, "[{mode:?}]");
        assert_eq!(ob.metrics.replica_hits, 0, "[{mode:?}]");
        for threads in THREADS {
            let par = eb.run_parallel(initiator, &q, mode, threads);
            assert_eq!(oa.metrics, par.metrics, "[{mode:?}, {threads} threads]");
            assert_eq!(oa.answers, par.answers, "[{mode:?}, {threads} threads]");
        }
    }
}

#[test]
fn replication_restores_recall_on_a_crashed_ring() {
    for k in [1usize, 2] {
        // k = 2 survives *any* single-crash sequence with anti-entropy in
        // between (one holder can always re-shed); k = 1 additionally needs
        // no crash to hit the sole holder of an already-dead owner inside
        // the run — a deterministic schedule that satisfies it (the fragility
        // itself is exercised in the resilience bench's k-sweep).
        let seed = if k == 1 { 66 } else { 64 };
        let (mut net, mut rng) = loaded_ring(64, 400, seed);
        let oracle_data = all_tuples(&net);
        assert_eq!(oracle_data.len(), 400);
        net.enable_replication(k);
        // ~20 % of the ring crashes at the gated operating point.
        crash_wave(&mut net, &mut rng, 12);
        assert!(net.tuples_lost() > 0, "crashes must have destroyed data");
        let orphan_len: f64 = net.orphan_segments().iter().map(|s| s.side(0)).sum();
        assert!(orphan_len > 0.0);
        let score = LinearScore::uniform(1);
        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::with_faults(&net, crash_aware(), 21);
            let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 8, mode);
            assert_eq!(
                ids(&got),
                ids(&centralized_topk(&oracle_data, &score, 8)),
                "[k={k}, {mode:?}] recall must equal the oracle over the FULL \
                 initial dataset, dead arcs included"
            );
            assert!(
                cov.is_complete(),
                "[k={k}, {mode:?}] every dead arc must be recovered: {cov:?}"
            );
            assert_eq!(metrics.duplicate_visits, 0, "[k={k}, {mode:?}]");
            if mode == Mode::Broadcast {
                assert!(metrics.replica_hits > 0, "[k={k}]");
                assert!(metrics.replica_bytes > 0, "[k={k}]");
            }
        }
    }
}

#[test]
fn recovery_is_thread_deterministic_on_chord() {
    let (mut net, mut rng) = loaded_ring(64, 400, 65);
    net.enable_replication(2);
    crash_wave(&mut net, &mut rng, 12);
    let q = TopKQuery::new(LinearScore::uniform(1), 8);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware(), 23);
        let seq = exec.run(initiator, &q, mode);
        for threads in THREADS {
            let par = exec.run_parallel(initiator, &q, mode, threads);
            assert_eq!(
                seq.metrics, par.metrics,
                "[{mode:?}, {threads} threads]: recovery is keyed by the \
                 failed edge, not the schedule"
            );
            assert_eq!(seq.answers, par.answers, "[{mode:?}, {threads} threads]");
            assert_eq!(seq.coverage, par.coverage, "[{mode:?}, {threads} threads]");
        }
    }
}

/// Property: the certificate tiling invariant holds on the ring through
/// interleaved churn (inserts, joins) and crash × replica failover waves,
/// for both replica depths and every mode — and the independent checker
/// accepts every certificate against the epoch the query ran at. This is
/// the Chord twin of `ripple-core`'s lifecycle test; arcs wrap, so the
/// tiles here are multi-rect regions, exercising the `Vec<Rect>` geometry
/// path of `ripple-verify`.
#[test]
fn certificates_tile_the_ring_through_churn_and_failover() {
    use ripple_core::topk::run_topk_certified;
    use ripple_verify::{verify_coverage, verify_generation, verify_topk, VerifyError};
    for k in [1usize, 2] {
        let (mut net, mut rng) = loaded_ring(64, 400, 67 + k as u64);
        net.enable_replication(k);
        let mut next_id = 10_000u64;
        let mut stale_cert = None;
        for round in 0..3 {
            // Churn: fresh tuples land on the ring, a peer joins (splitting
            // an arc), then a crash wave with anti-entropy keeping pace.
            for _ in 0..25 {
                net.insert_tuple(Tuple::new(next_id, vec![rng.gen::<f64>()]));
                next_id += 1;
            }
            net.join(rng.gen::<f64>());
            crash_wave(&mut net, &mut rng, 4);
            let epoch = net.epoch();
            let score = LinearScore::uniform(1);
            for mode in MODES {
                let initiator = net.random_peer(&mut rng);
                let exec = Executor::with_faults(&net, crash_aware(), 31);
                let (got, _, cov, cert) =
                    run_topk_certified(&exec, initiator, score.clone(), 8, mode);
                let cert = cert.expect("certificates are on by default");
                verify_topk(&cert, &got, &score, 8, epoch).unwrap_or_else(|e| {
                    panic!("[k={k}, round {round}, {mode:?}] certificate rejected: {e}")
                });
                verify_coverage(&cert, cov.answered_fraction, &cov.unreachable).unwrap_or_else(
                    |e| panic!("[k={k}, round {round}, {mode:?}] coverage rejected: {e}"),
                );
                stale_cert = Some(cert);
            }
        }
        // Churn moved the ring on: the last certificate is pinned to the
        // epoch it was issued at and must not verify against a later one.
        net.insert_tuple(Tuple::new(next_id, vec![0.5]));
        let stale = stale_cert.expect("at least one round ran");
        assert!(
            matches!(
                verify_generation(&stale, net.epoch()),
                Err(VerifyError::GenerationMismatch { .. })
            ),
            "[k={k}] a certificate must not outlive its snapshot"
        );
    }
}

#[test]
fn promotion_at_repair_restores_the_data_itself() {
    let (mut net, mut rng) = loaded_ring(64, 400, 66);
    let initial = all_tuples(&net).len() as u64;
    net.enable_replication(2);
    crash_wave(&mut net, &mut rng, 12);
    let lost = net.tuples_lost();
    assert!(lost > 0);
    net.repair_all();
    net.check_invariants();
    assert!(net.orphan_segments().is_empty());
    let recovered = net.tuples_recovered();
    assert!(recovered > 0, "repair must promote surviving copies");
    let stored = all_tuples(&net).len() as u64;
    assert_eq!(
        stored + lost - recovered,
        initial,
        "ledger: stored + lost - recovered must balance the initial count"
    );
    // After promotion the fault-free oracle over the stored data is served
    // exactly, with no replica reads needed.
    let score = LinearScore::uniform(1);
    let initiator = net.random_peer(&mut rng);
    let exec = Executor::with_faults(&net, crash_aware(), 29);
    let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 8, Mode::Broadcast);
    assert!(cov.is_complete());
    assert_eq!(metrics.replica_hits, 0, "no dead zones remain");
    assert_eq!(
        ids(&got),
        ids(&centralized_topk(&all_tuples(&net), &score, 8))
    );
}
