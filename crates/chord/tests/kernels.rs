//! Chord-side kernel equivalence: the twin of `ripple-core`'s
//! `kernel_equivalence` suite. The columnar block mirror and its scan
//! kernels live entirely below the substrate boundary, so a blocked
//! executor and a block-free one must be observationally identical over
//! ring-arc regions exactly as over MIDAS boxes — including under fault
//! planes, failover and the parallel engine.

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::TopKQuery;
use ripple_core::Executor;
use ripple_geom::{AdHoc, LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Broadcast, Mode::Ripple(2), Mode::Slow];

fn loaded_ring(peers: usize, tuples: u64, seed: u64) -> (ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = ChordNetwork::build(peers, &mut rng);
    let data: Vec<Tuple> = (0..tuples)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
        .collect();
    net.insert_all(data);
    (net, rng)
}

#[test]
fn blocked_equals_scalar_on_the_ring() {
    let (net, mut rng) = loaded_ring(64, 3000, 71);
    let planes = [FaultPlane::none(), FaultPlane::drops(0.15, 23)];
    for k in [1usize, 12] {
        // No cache key: peers take the blocked kernel scan, not the
        // memoised projection.
        let q = TopKQuery::new(AdHoc(LinearScore::uniform(1)), k);
        for plane in planes {
            for mode in MODES {
                let initiator = net.random_peer(&mut rng);
                let blocked = Executor::with_faults(&net, plane, 9);
                let scalar = Executor::with_faults(&net, plane, 9).without_blocks();
                let b = blocked.run(initiator, &q, mode);
                let s = scalar.run(initiator, &q, mode);
                assert_eq!(
                    b.metrics, s.metrics,
                    "k={k} [{mode:?}, drop_p={}]: ledgers must be bit-identical",
                    plane.drop_probability
                );
                assert_eq!(b.answers, s.answers, "k={k} [{mode:?}]: answer streams");
                assert_eq!(b.coverage, s.coverage, "k={k} [{mode:?}]: coverage");
                let bp = blocked.run_parallel(initiator, &q, mode, 4);
                assert_eq!(b.metrics, bp.metrics, "k={k} [{mode:?}]: parallel ledger");
                assert_eq!(b.answers, bp.answers, "k={k} [{mode:?}]: parallel answers");
            }
        }
    }
}

#[test]
fn forced_simd_equals_forced_scalar_on_the_ring() {
    use ripple_geom::KernelDispatch;
    let (net, mut rng) = loaded_ring(48, 2400, 73);
    let planes = [FaultPlane::none(), FaultPlane::drops(0.15, 23)];
    for k in [1usize, 12] {
        let q = TopKQuery::new(AdHoc(LinearScore::uniform(1)), k);
        for plane in planes {
            for mode in MODES {
                let initiator = net.random_peer(&mut rng);
                let scalar = Executor::with_faults(&net, plane, 9)
                    .with_dispatch(KernelDispatch::ForcedScalar);
                let simd =
                    Executor::with_faults(&net, plane, 9).with_dispatch(KernelDispatch::ForcedSimd);
                let s = scalar.run(initiator, &q, mode);
                let v = simd.run(initiator, &q, mode);
                assert_eq!(
                    s.metrics, v.metrics,
                    "k={k} [{mode:?}, drop_p={}]: dispatch arms must produce \
                     bit-identical ledgers",
                    plane.drop_probability
                );
                assert_eq!(s.answers, v.answers, "k={k} [{mode:?}]: answer streams");
                assert_eq!(s.coverage, v.coverage, "k={k} [{mode:?}]: coverage");
                let vp = simd.run_parallel(initiator, &q, mode, 4);
                assert_eq!(s.metrics, vp.metrics, "k={k} [{mode:?}]: parallel ledger");
                assert_eq!(s.answers, vp.answers, "k={k} [{mode:?}]: parallel answers");
            }
        }
    }
}

#[test]
fn planner_probes_and_exploits_on_the_ring() {
    use ripple_core::planner::{run_planned, PlanInputs, Planner, QueryHint};
    use ripple_net::PlanSource;
    let (net, mut rng) = loaded_ring(48, 2400, 74);
    let exec = Executor::new(&net);
    let query = TopKQuery::new(AdHoc(LinearScore::uniform(1)), 8);
    // Chord has no tree depth; log2 of the ring size is the radius scale.
    let delta = (net.peer_count() as f64).log2().ceil() as u32;
    let inputs = PlanInputs {
        peers: net.peer_count(),
        delta,
        hint: QueryHint::TopK { k: 8 },
    };
    let mut planner = Planner::new(1);
    let initiator = net.random_peer(&mut rng);
    let probes = Planner::candidates(delta).len();
    for round in 0..probes + 4 {
        let out = run_planned(&mut planner, &exec, initiator, &query, &inputs);
        let plan = out.metrics.plan.clone().expect("plan stamped");
        if round < probes {
            assert_eq!(plan.source, PlanSource::Probe, "round {round}");
        } else if !(round as u64).is_multiple_of(ripple_core::planner::REPROBE_PERIOD) {
            // Periodic frontier re-probes are legitimately Probe-sourced;
            // every other post-probe round must come from the model.
            assert_ne!(plan.source, PlanSource::Probe, "round {round}");
        }
        // Planned runs are bit-identical to a static run of the same mode.
        let fixed = exec.run(initiator, &query, plan.mode.into());
        assert_eq!(out.answers, fixed.answers, "round {round}");
        assert_eq!(out.metrics, fixed.metrics, "round {round}: ledgers");
    }
}

#[test]
fn blocked_scan_prunes_on_the_ring() {
    // Twin networks from the same seed: the baseline ring never builds a
    // block mirror, so its scan counts are the true scalar effort. Few
    // peers, many tuples: every store spans several blocks, which is what
    // gives the bounded heap blocks to skip.
    let (net_b, mut rng) = loaded_ring(8, 12000, 72);
    let (net_s, _) = loaded_ring(8, 12000, 72);
    let q = TopKQuery::new(AdHoc(LinearScore::new(vec![1.0])), 4);
    let initiator = net_b.random_peer(&mut rng);
    let b = Executor::new(&net_b).run(initiator, &q, Mode::Fast);
    let s = Executor::new(&net_s)
        .without_blocks()
        .run(initiator, &q, Mode::Fast);
    assert!(b.metrics.blocks_pruned > 0, "selective top-k prunes blocks");
    assert_eq!(s.metrics.blocks_pruned, 0, "scalar path never prunes");
    assert!(b.metrics.tuples_scanned < s.metrics.tuples_scanned);
    assert_eq!(b.metrics, s.metrics, "ledgers (excl. scan counters)");
    assert_eq!(b.answers, s.answers);
}
