//! Chord-side ingest equivalence: the twin of `ripple-core`'s
//! `ingest_equivalence` suite. The LSM write path lives entirely below the
//! substrate boundary, so an interleaved insert → query → compact → delete
//! schedule must leave a ring backed by LSM stores observationally
//! identical to one backed by the legacy rebuild-per-insert layout,
//! driven through the same API calls (same epoch and generation history).

use ripple_chord::ChordNetwork;
use ripple_core::framework::Mode;
use ripple_core::topk::TopKQuery;
use ripple_core::Executor;
use ripple_geom::{AdHoc, LinearScore, Tuple};
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Broadcast, Mode::Ripple(2), Mode::Slow];

fn twin_rings(peers: usize, seed: u64) -> (ChordNetwork, ChordNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lsm = ChordNetwork::build(peers, &mut rng);
    let mut rng2 = SmallRng::seed_from_u64(seed);
    let mut legacy = ChordNetwork::build(peers, &mut rng2);
    legacy.set_store_legacy(true);
    (lsm, legacy, rng)
}

#[test]
fn lsm_matches_rebuilt_twin_on_the_ring() {
    let (mut lsm, mut legacy, mut rng) = twin_rings(12, 81);
    let planes = [FaultPlane::none(), FaultPlane::drops(0.15, 23)];
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    for round in 0..3 {
        let batch: Vec<Tuple> = (0..800)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                live.push(id);
                Tuple::new(id, vec![rng.gen::<f64>()])
            })
            .collect();
        lsm.insert_batch(batch.clone());
        legacy.insert_batch(batch);
        if round % 2 == 1 {
            // Compaction is a physical reorganisation on the LSM twin only;
            // it must stay invisible to every comparison below.
            lsm.compact_stores();
        }
        let mut doomed: Vec<u64> = Vec::new();
        let mut kept = Vec::with_capacity(live.len());
        for &id in &live {
            if rng.gen::<f64>() < 0.2 {
                doomed.push(id);
            } else {
                kept.push(id);
            }
        }
        live = kept;
        doomed.push(u64::MAX); // absent id: must not bump any generation
        assert_eq!(
            lsm.delete_tuples(&doomed),
            legacy.delete_tuples(&doomed),
            "round {round}: twins must remove the same rows"
        );
        lsm.check_invariants();
        legacy.check_invariants();
        for k in [1usize, 12] {
            let q = TopKQuery::new(AdHoc(LinearScore::uniform(1)), k);
            for plane in planes {
                for mode in MODES {
                    let initiator = lsm.random_peer(&mut rng);
                    let l = Executor::with_faults(&lsm, plane, 9).run(initiator, &q, mode);
                    let r = Executor::with_faults(&legacy, plane, 9).run(initiator, &q, mode);
                    assert_eq!(
                        l.metrics, r.metrics,
                        "k={k} [{mode:?}, drop_p={}]: ledgers must be bit-identical",
                        plane.drop_probability
                    );
                    assert_eq!(l.answers, r.answers, "k={k} [{mode:?}]: answer streams");
                    assert_eq!(l.coverage, r.coverage, "k={k} [{mode:?}]: coverage");
                    assert_eq!(
                        l.certificate, r.certificate,
                        "k={k} [{mode:?}]: certificate"
                    );
                    let lp =
                        Executor::with_faults(&lsm, plane, 9).run_parallel(initiator, &q, mode, 4);
                    assert_eq!(r.metrics, lp.metrics, "k={k} [{mode:?}]: parallel ledger");
                    assert_eq!(r.answers, lp.answers, "k={k} [{mode:?}]: parallel answers");
                }
            }
        }
    }
}
