//! The Chord overlay (Stoica et al. \[15\]) with RIPPLE support.
//!
//! Chord is the second DHT for which Section 3.1 of the RIPPLE paper spells
//! out a region definition; this crate implements the ring (order-preserving
//! key placement, fingers, greedy `O(log n)` routing, churn) and the
//! [`ripple_core::framework::RippleOverlay`] adapter whose regions are ring
//! arcs (up to two linear segments). The standard top-k query of
//! `ripple-core` runs over it unchanged — the framework's genericity claim,
//! demonstrated and tested.

#![warn(missing_docs)]

pub mod network;
pub mod ripple_impl;

pub use network::{ChordNetwork, ChordPeer};

// Compile-time audit: `Executor::run_parallel` walks the ring from several
// worker threads at once through `&ChordNetwork`, so the overlay must be
// `Send + Sync` (the peer stores only use lock-guarded interior mutability).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChordNetwork>();
    assert_send_sync::<ChordPeer>();
};
