//! The Chord overlay (Stoica et al. \[15\]) over a one-dimensional domain.
//!
//! Chord arranges peers on a ring. Each peer owns the arc from its position
//! to its successor's, and keeps *fingers*: links to the owners of the
//! positions `pos + 2^{-j}` for `j = 1..m`, enabling `O(log n)` greedy
//! routing.
//!
//! Rank queries need the key space to preserve order, so — unlike a classic
//! DHT deployment — tuples are placed by their (one-dimensional) value
//! directly, not by a cryptographic hash; this is the arrangement Section
//! 3.1 of the RIPPLE paper assumes when it defines finger *regions*: "the
//! region of `w`'s `i`-th neighbor is the area of the domain stretching from
//! the beginning of the `i`-th neighbor zone until the beginning of the
//! `(i+1)`-th neighbor zone (or `w`'s zone if `i`-th is the last neighbor)".

use ripple_geom::{Rect, Tuple};
use ripple_net::rng::Rng;
use ripple_net::{ChurnOverlay, PeerId, PeerStore};

/// A Chord peer: a ring position and the tuples of its arc.
#[derive(Clone, Debug)]
pub struct ChordPeer {
    /// Stable handle.
    pub id: PeerId,
    /// Ring position in `[0, 1)`; the peer owns `[position, successor)`.
    pub position: f64,
    /// Locally stored tuples (keys in the owned arc).
    pub store: PeerStore,
}

/// A simulated Chord ring.
#[derive(Clone, Debug)]
pub struct ChordNetwork {
    peers: Vec<Option<ChordPeer>>,
    /// Live peers sorted by ring position.
    ring: Vec<PeerId>,
}

impl ChordNetwork {
    /// Creates a single-peer ring anchored at position 0.
    pub fn new() -> Self {
        let id = PeerId::new(0);
        Self {
            peers: vec![Some(ChordPeer {
                id,
                position: 0.0,
                store: PeerStore::new(),
            })],
            ring: vec![id],
        }
    }

    /// Builds a ring of `n` peers at uniformly random positions.
    pub fn build<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut net = Self::new();
        while net.peer_count() < n {
            net.join(rng.gen::<f64>());
        }
        net
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.ring.len()
    }

    /// The peers in ring order.
    pub fn ring(&self) -> &[PeerId] {
        &self.ring
    }

    /// A uniformly random live peer.
    pub fn random_peer<R: Rng>(&self, rng: &mut R) -> PeerId {
        self.ring[rng.gen_range(0..self.ring.len())]
    }

    /// Borrows a live peer.
    pub fn peer(&self, id: PeerId) -> &ChordPeer {
        self.peers[id.index()].as_ref().expect("peer departed")
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut ChordPeer {
        self.peers[id.index()].as_mut().expect("peer departed")
    }

    /// Ring index of the peer owning `key ∈ [0,1)`.
    fn rank_of_key(&self, key: f64) -> usize {
        match self
            .ring
            .binary_search_by(|&p| self.peer(p).position.total_cmp(&key))
        {
            Ok(r) => r,
            Err(0) => self.ring.len() - 1, // wraps to the last peer
            Err(ins) => ins - 1,
        }
    }

    /// The peer owning `key`.
    pub fn responsible(&self, key: f64) -> PeerId {
        self.ring[self.rank_of_key(key)]
    }

    /// The successor position of the peer at ring index `rank` (1.0 when it
    /// wraps — positions are reported *unwrapped from 0* so arcs read as
    /// plain intervals except the single wrapping one).
    fn arc_of_rank(&self, rank: usize) -> (f64, f64) {
        let start = self.peer(self.ring[rank]).position;
        let end = if rank + 1 < self.ring.len() {
            self.peer(self.ring[rank + 1]).position
        } else {
            1.0
        };
        (start, end)
    }

    /// The owned arc of a peer as up to two `[lo, hi)` segments (the peer at
    /// the largest position owns a segment ending at 1.0; only rank 0's arc
    /// could wrap and by construction position 0 is always occupied by the
    /// founding anchor, so arcs never actually wrap).
    pub fn zone_segments(&self, id: PeerId) -> Vec<Rect> {
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        let (lo, hi) = self.arc_of_rank(rank);
        vec![Rect::new(vec![lo], vec![hi])]
    }

    /// Number of fingers a peer keeps: `⌈log₂ n⌉ + 1`.
    pub fn finger_count(&self) -> u32 {
        (self.ring.len().max(2) as f64).log2().ceil() as u32 + 1
    }

    /// The fingers of `id`: the immediate successor plus the owners of
    /// `position + 2^{-j}` for `j = 1..=finger_count()`, deduplicated,
    /// ordered nearest-first (successor first, halfway-across last).
    ///
    /// A Chord node always knows its successor; without it, greedy routing
    /// could stall when the smallest finger offset lands inside the node's
    /// own arc, and the finger regions would leave the gap between the
    /// node's arc and the first finger uncovered.
    pub fn fingers(&self, id: PeerId) -> Vec<PeerId> {
        if self.ring.len() < 2 {
            return Vec::new();
        }
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        let successor = self.ring[(rank + 1) % self.ring.len()];
        let pos = self.peer(id).position;
        let mut out = vec![successor];
        for j in (1..=self.finger_count()).rev() {
            let target = (pos + (0.5f64).powi(j as i32)).fract();
            let f = self.responsible(target);
            if f != id && !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// Greedy finger routing from `from` to the owner of `key`; returns the
    /// owner and the hop count.
    pub fn route(&self, from: PeerId, key: f64) -> (PeerId, u32) {
        let target = self.responsible(key);
        let mut cur = from;
        let mut hops = 0u32;
        while cur != target {
            // clockwise distance from a candidate to the key
            let dist = |p: PeerId| {
                let d = key - self.peer(p).position;
                if d < 0.0 {
                    d + 1.0
                } else {
                    d
                }
            };
            // move to the finger (or successor) closest behind the key
            let next = self
                .fingers(cur)
                .into_iter()
                .min_by(|&a, &b| dist(a).total_cmp(&dist(b)).then_with(|| a.cmp(&b)))
                .expect("multi-peer ring has fingers");
            debug_assert_ne!(next, cur);
            cur = next;
            hops += 1;
            debug_assert!((hops as usize) <= 4 * self.ring.len());
        }
        (target, hops)
    }

    /// Stores a tuple by its first coordinate.
    pub fn insert_tuple(&mut self, t: Tuple) {
        let key = t.point.coord(0);
        assert!((0.0..=1.0).contains(&key), "key outside the ring domain");
        let owner = self.responsible(key.min(1.0 - f64::EPSILON));
        self.peer_mut(owner).store.insert(t);
    }

    /// Bulk-loads a dataset.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.insert_tuple(t);
        }
    }

    /// A new peer joins at ring position `pos`, taking the tail of the
    /// owner's arc.
    pub fn join(&mut self, pos: f64) -> PeerId {
        let pos = pos.fract().abs();
        let rank = self.rank_of_key(pos);
        let owner = self.ring[rank];
        if self.peer(owner).position == pos {
            // occupied position: nudge deterministically
            return self.join((pos + 1e-9).fract());
        }
        let new_id = PeerId::new(self.peers.len() as u32);
        let moved = self
            .peer_mut(owner)
            .store
            .drain_where(|p| p.coord(0) >= pos);
        let mut store = PeerStore::new();
        store.extend(moved);
        self.peers.push(Some(ChordPeer {
            id: new_id,
            position: pos,
            store,
        }));
        self.ring.insert(rank + 1, new_id);
        new_id
    }

    /// Graceful departure: the predecessor absorbs the arc (the founding
    /// anchor at position 0 never leaves, keeping arcs unwrapped).
    pub fn leave(&mut self, id: PeerId) {
        assert!(self.peer_count() > 1, "cannot remove the last peer");
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        assert!(rank > 0, "the founding anchor cannot leave");
        let tuples = self.peer_mut(id).store.drain_all();
        let heir = self.ring[rank - 1];
        self.peer_mut(heir).store.extend(tuples);
        self.ring.remove(rank);
        self.peers[id.index()] = None;
    }

    /// Checks structural invariants (tests).
    pub fn check_invariants(&self) {
        assert_eq!(self.peer(self.ring[0]).position, 0.0, "anchor at 0");
        for w in self.ring.windows(2) {
            assert!(self.peer(w[0]).position < self.peer(w[1]).position);
        }
        for (rank, &id) in self.ring.iter().enumerate() {
            let (lo, hi) = self.arc_of_rank(rank);
            for t in self.peer(id).store.iter() {
                let k = t.point.coord(0);
                assert!(lo <= k && (k < hi || (hi == 1.0 && k <= 1.0)));
            }
        }
    }
}

impl Default for ChordNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ChurnOverlay for ChordNetwork {
    fn peer_count(&self) -> usize {
        self.ring.len()
    }

    fn churn_join(&mut self, rng: &mut dyn ripple_net::rng::RngCore) {
        let pos = ripple_net::rng::Rng::gen::<f64>(&mut &mut *rng);
        self.join(pos);
    }

    fn churn_leave(&mut self, rng: &mut dyn ripple_net::rng::RngCore) {
        if self.peer_count() <= 1 {
            return;
        }
        // never remove the anchor (rank 0)
        let idx = ripple_net::rng::Rng::gen_range(&mut &mut *rng, 1..self.ring.len());
        self.leave(self.ring[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn build_and_invariants() {
        let mut r = rng(1);
        let net = ChordNetwork::build(64, &mut r);
        assert_eq!(net.peer_count(), 64);
        net.check_invariants();
    }

    #[test]
    fn responsibility_is_predecessor_style() {
        let mut net = ChordNetwork::new();
        net.join(0.5);
        net.join(0.25);
        assert_eq!(net.responsible(0.1), net.ring()[0]);
        assert_eq!(net.responsible(0.25), net.ring()[1]);
        assert_eq!(net.responsible(0.3), net.ring()[1]);
        assert_eq!(net.responsible(0.9), net.ring()[2]);
    }

    #[test]
    fn routing_reaches_owner_logarithmically() {
        let mut r = rng(2);
        let net = ChordNetwork::build(256, &mut r);
        let mut total = 0u32;
        for _ in 0..50 {
            let key = r.gen::<f64>();
            let from = net.random_peer(&mut r);
            let (owner, hops) = net.route(from, key);
            assert_eq!(owner, net.responsible(key));
            total += hops;
        }
        let mean = total as f64 / 50.0;
        assert!(mean < 16.0, "mean hops {mean} too high for 256 peers");
    }

    #[test]
    fn tuples_follow_arcs_under_churn() {
        let mut r = rng(3);
        let mut net = ChordNetwork::build(16, &mut r);
        for i in 0..100 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        for _ in 0..40 {
            if r.gen_bool(0.5) {
                net.churn_join(&mut r);
            } else {
                net.churn_leave(&mut r);
            }
        }
        net.check_invariants();
        let total: usize = net.ring().iter().map(|&p| net.peer(p).store.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn fingers_are_deduplicated_and_remote() {
        let mut r = rng(4);
        let net = ChordNetwork::build(64, &mut r);
        let p = net.random_peer(&mut r);
        let fingers = net.fingers(p);
        assert!(!fingers.is_empty());
        assert!(!fingers.contains(&p));
        let mut dedup = fingers.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), fingers.len());
    }
}
