//! The Chord overlay (Stoica et al. \[15\]) over a one-dimensional domain.
//!
//! Chord arranges peers on a ring. Each peer owns the arc from its position
//! to its successor's, and keeps *fingers*: links to the owners of the
//! positions `pos + 2^{-j}` for `j = 1..m`, enabling `O(log n)` greedy
//! routing.
//!
//! Rank queries need the key space to preserve order, so — unlike a classic
//! DHT deployment — tuples are placed by their (one-dimensional) value
//! directly, not by a cryptographic hash; this is the arrangement Section
//! 3.1 of the RIPPLE paper assumes when it defines finger *regions*: "the
//! region of `w`'s `i`-th neighbor is the area of the domain stretching from
//! the beginning of the `i`-th neighbor zone until the beginning of the
//! `(i+1)`-th neighbor zone (or `w`'s zone if `i`-th is the last neighbor)".

//!
//! **Crash + repair**: an ungraceful departure ([`ChordNetwork::crash`])
//! leaves the dead node *in the ring* — exactly the real-world failure mode
//! where successors and finger tables go stale — with its arc unreachable
//! and its data lost until [`ChordNetwork::repair_all`] patches successor
//! lists, at which point the predecessor's arc extends over the gap.

use ripple_geom::{Rect, Tuple};
use ripple_net::rng::Rng;
use ripple_net::{ChurnOverlay, PeerId, PeerStore, Quarantine, ReplicaSet};
use std::collections::BTreeSet;

/// A Chord peer: a ring position and the tuples of its arc.
#[derive(Clone, Debug)]
pub struct ChordPeer {
    /// Stable handle.
    pub id: PeerId,
    /// Ring position in `[0, 1)`; the peer owns `[position, successor)`.
    pub position: f64,
    /// Locally stored tuples (keys in the owned arc).
    pub store: PeerStore,
}

/// A simulated Chord ring.
#[derive(Clone, Debug)]
pub struct ChordNetwork {
    peers: Vec<Option<ChordPeer>>,
    /// Peers sorted by ring position. Crashed-but-unrepaired peers *stay*
    /// in the ring (their position still shapes everyone's stale view);
    /// repair removes them.
    ring: Vec<PeerId>,
    /// Crashed peers not yet repaired (`BTreeSet` for deterministic
    /// repair order).
    crashed: BTreeSet<PeerId>,
    /// Tuples lost to crashes (dead stores + inserts into orphaned arcs).
    tuples_lost: u64,
    /// Tuples restored from replicas by repair-time promotion.
    tuples_recovered: u64,
    /// Repair messages accumulated since the last drain.
    repair_messages: u64,
    /// The replica ledger, when replication is enabled
    /// ([`enable_replication`](ChordNetwork::enable_replication)). Copies go
    /// to the owner's first `k` live ring successors — Chord's successor
    /// list reused as the replica topology.
    replicas: Option<ReplicaSet>,
    /// Peers caught lying by the executor's online response audit. Always
    /// present (an empty registry costs one snapshot check per query); the
    /// executor snapshots and flushes it, the serving layer grants
    /// probation on epoch advances.
    quarantine: Quarantine,
    /// Snapshot generation: bumped by every mutation (joins, leaves,
    /// crashes, repairs, inserts, replication changes). Answer certificates
    /// are stamped with it so a verifier can tell which ring state a query
    /// ran against.
    epoch: u64,
}

impl ChordNetwork {
    /// Creates a single-peer ring anchored at position 0.
    pub fn new() -> Self {
        let id = PeerId::new(0);
        Self {
            peers: vec![Some(ChordPeer {
                id,
                position: 0.0,
                store: PeerStore::new(),
            })],
            ring: vec![id],
            crashed: BTreeSet::new(),
            tuples_lost: 0,
            tuples_recovered: 0,
            repair_messages: 0,
            replicas: None,
            quarantine: Quarantine::new(),
            epoch: 0,
        }
    }

    /// The current snapshot generation (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The quarantine registry of peers caught by the online response
    /// audit.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Builds a ring of `n` peers at uniformly random positions.
    pub fn build<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut net = Self::new();
        while net.peer_count() < n {
            net.join(rng.gen::<f64>());
        }
        net
    }

    /// Number of live peers (crashed-but-unrepaired peers do not count).
    pub fn peer_count(&self) -> usize {
        self.ring.len() - self.crashed.len()
    }

    /// The peers in ring order, *including* crashed-but-unrepaired entries
    /// (everyone's view of the ring is stale until repair).
    pub fn ring(&self) -> &[PeerId] {
        &self.ring
    }

    /// The live peers in ring order.
    pub fn live_peers(&self) -> Vec<PeerId> {
        self.ring
            .iter()
            .copied()
            .filter(|&p| self.is_live(p))
            .collect()
    }

    /// True if the peer is live (present and not crashed).
    pub fn is_live(&self, id: PeerId) -> bool {
        self.peers.get(id.index()).is_some_and(|p| p.is_some()) && !self.crashed.contains(&id)
    }

    /// A uniformly random live peer.
    pub fn random_peer<R: Rng>(&self, rng: &mut R) -> PeerId {
        // Rejection sampling keeps the RNG stream identical to the
        // pre-fault implementation whenever nobody is crashed (one draw).
        loop {
            let p = self.ring[rng.gen_range(0..self.ring.len())];
            if self.is_live(p) {
                return p;
            }
        }
    }

    /// Borrows a peer (live, or crashed-but-unrepaired — its position still
    /// shapes the ring until repair).
    pub fn peer(&self, id: PeerId) -> &ChordPeer {
        self.peers[id.index()].as_ref().expect("peer departed")
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut ChordPeer {
        self.peers[id.index()].as_mut().expect("peer departed")
    }

    /// Ring index of the peer owning `key ∈ [0,1)`.
    fn rank_of_key(&self, key: f64) -> usize {
        match self
            .ring
            .binary_search_by(|&p| self.peer(p).position.total_cmp(&key))
        {
            Ok(r) => r,
            Err(0) => self.ring.len() - 1, // wraps to the last peer
            Err(ins) => ins - 1,
        }
    }

    /// The peer owning `key`.
    pub fn responsible(&self, key: f64) -> PeerId {
        self.ring[self.rank_of_key(key)]
    }

    /// The successor position of the peer at ring index `rank` (1.0 when it
    /// wraps — positions are reported *unwrapped from 0* so arcs read as
    /// plain intervals except the single wrapping one).
    fn arc_of_rank(&self, rank: usize) -> (f64, f64) {
        let start = self.peer(self.ring[rank]).position;
        let end = if rank + 1 < self.ring.len() {
            self.peer(self.ring[rank + 1]).position
        } else {
            1.0
        };
        (start, end)
    }

    /// The owned arc of a peer as up to two `[lo, hi)` segments (the peer at
    /// the largest position owns a segment ending at 1.0; only rank 0's arc
    /// could wrap and by construction position 0 is always occupied by the
    /// founding anchor, so arcs never actually wrap).
    pub fn zone_segments(&self, id: PeerId) -> Vec<Rect> {
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        let (lo, hi) = self.arc_of_rank(rank);
        vec![Rect::new(vec![lo], vec![hi])]
    }

    /// Number of fingers a peer keeps: `⌈log₂ n⌉ + 1`.
    pub fn finger_count(&self) -> u32 {
        (self.ring.len().max(2) as f64).log2().ceil() as u32 + 1
    }

    /// The fingers of `id`: the immediate successor plus the owners of
    /// `position + 2^{-j}` for `j = 1..=finger_count()`, deduplicated,
    /// ordered nearest-first (successor first, halfway-across last).
    ///
    /// A Chord node always knows its successor; without it, greedy routing
    /// could stall when the smallest finger offset lands inside the node's
    /// own arc, and the finger regions would leave the gap between the
    /// node's arc and the first finger uncovered.
    pub fn fingers(&self, id: PeerId) -> Vec<PeerId> {
        if self.ring.len() < 2 {
            return Vec::new();
        }
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        let successor = self.ring[(rank + 1) % self.ring.len()];
        let pos = self.peer(id).position;
        let mut out = vec![successor];
        for j in (1..=self.finger_count()).rev() {
            let target = (pos + (0.5f64).powi(j as i32)).fract();
            let f = self.responsible(target);
            if f != id && !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// Greedy finger routing from `from` to the owner of `key`; returns the
    /// reached peer and the hop count. With crash damage present the route
    /// may dead-end at the last *live* peer before a stale finger (or a
    /// crashed owner); it never steps onto — and never panics at — a dead
    /// node.
    pub fn route(&self, from: PeerId, key: f64) -> (PeerId, u32) {
        let target = self.responsible(key);
        let mut cur = from;
        let mut hops = 0u32;
        while cur != target {
            // clockwise distance from a candidate to the key
            let dist = |p: PeerId| {
                let d = key - self.peer(p).position;
                if d < 0.0 {
                    d + 1.0
                } else {
                    d
                }
            };
            // move to the finger (or successor) closest behind the key
            let next = self
                .fingers(cur)
                .into_iter()
                .min_by(|&a, &b| dist(a).total_cmp(&dist(b)).then_with(|| a.cmp(&b)))
                .expect("multi-peer ring has fingers");
            debug_assert_ne!(next, cur);
            if !self.is_live(next) {
                return (cur, hops);
            }
            cur = next;
            hops += 1;
            debug_assert!((hops as usize) <= 4 * self.ring.len());
        }
        (cur, hops)
    }

    /// Stores a tuple by its first coordinate. A tuple whose key falls in a
    /// crashed peer's (orphaned) arc has no live owner: it is counted as
    /// lost ([`tuples_lost`](ChordNetwork::tuples_lost)), not panicked on.
    pub fn insert_tuple(&mut self, t: Tuple) {
        let key = t.point.coord(0);
        assert!((0.0..=1.0).contains(&key), "key outside the ring domain");
        self.epoch += 1;
        let owner = self.responsible(key.min(1.0 - f64::EPSILON));
        if self.is_live(owner) {
            self.peer_mut(owner).store.insert(t);
            let generation = self.peer(owner).store.generation();
            if let Some(set) = self.replicas.as_mut() {
                // The copy (if any) is now behind the store: the next
                // anti-entropy pass refreshes it, and a recovery read in
                // between counts as stale.
                set.note_generation(owner, generation);
            }
        } else {
            self.tuples_lost += 1;
        }
    }

    /// Bulk-loads a dataset.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.insert_tuple(t);
        }
    }

    /// Stores a batch of tuples as **one** logical mutation: the epoch
    /// advances once and each owning peer's store generation bumps once.
    /// Tuples keyed into orphaned arcs are counted as lost, like
    /// [`insert_tuple`](Self::insert_tuple).
    pub fn insert_batch(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        self.epoch += 1;
        let mut by_owner: std::collections::BTreeMap<PeerId, Vec<Tuple>> =
            std::collections::BTreeMap::new();
        for t in tuples {
            let key = t.point.coord(0);
            assert!((0.0..=1.0).contains(&key), "key outside the ring domain");
            let owner = self.responsible(key.min(1.0 - f64::EPSILON));
            if self.is_live(owner) {
                by_owner.entry(owner).or_default().push(t);
            } else {
                self.tuples_lost += 1;
            }
        }
        for (owner, batch) in by_owner {
            self.peer_mut(owner).store.insert_batch(batch);
            let generation = self.peer(owner).store.generation();
            if let Some(set) = self.replicas.as_mut() {
                set.note_generation(owner, generation);
            }
        }
    }

    /// Deletes tuples by id across all live peers as **one** logical
    /// mutation per affected store (one epoch step, one generation bump per
    /// store that actually loses rows). Returns how many rows were removed.
    pub fn delete_tuples(&mut self, ids: &[ripple_geom::TupleId]) -> usize {
        self.epoch += 1;
        let mut removed = 0;
        for id in self.live_peers() {
            let n = self.peer_mut(id).store.delete_batch(ids.iter().copied());
            if n > 0 {
                removed += n;
                let generation = self.peer(id).store.generation();
                if let Some(set) = self.replicas.as_mut() {
                    set.note_generation(id, generation);
                }
            }
        }
        removed
    }

    /// Compacts every live peer's store (folding tombstoned runs into fresh
    /// ones). Compaction is a physical reorganisation, not a logical
    /// mutation: the epoch and store generations are untouched, so cached
    /// results and certificates stay valid. Returns total rows rewritten.
    pub fn compact_stores(&mut self) -> u64 {
        let mut rewritten = 0;
        for id in self.live_peers() {
            rewritten += self.peer_mut(id).store.compact();
        }
        rewritten
    }

    /// Switches every live peer's store between the LSM write path and the
    /// legacy rebuild-per-insert layout (test/bench baseline harness).
    pub fn set_store_legacy(&mut self, legacy: bool) {
        for id in self.live_peers() {
            self.peer_mut(id).store.set_legacy(legacy);
        }
    }

    /// A new peer joins at ring position `pos`, taking the tail of the
    /// owner's arc.
    pub fn join(&mut self, pos: f64) -> PeerId {
        self.epoch += 1;
        let pos = pos.fract().abs();
        let rank = self.rank_of_key(pos);
        let owner = self.ring[rank];
        if !self.is_live(owner) {
            // A joiner cannot take over the tail of a dead peer's arc; the
            // contact attempt triggers repair (lazily), then the join
            // proceeds against the patched ring.
            self.repair_all();
            return self.join(pos);
        }
        if self.peer(owner).position == pos {
            // occupied position: nudge deterministically
            return self.join((pos + 1e-9).fract());
        }
        let new_id = PeerId::new(self.peers.len() as u32);
        let moved = self
            .peer_mut(owner)
            .store
            .drain_where(|p| p.coord(0) >= pos);
        let mut store = PeerStore::new();
        store.extend(moved);
        self.peers.push(Some(ChordPeer {
            id: new_id,
            position: pos,
            store,
        }));
        self.ring.insert(rank + 1, new_id);
        // The split moved tuples between stores; re-capture what changed.
        self.refresh_replicas();
        new_id
    }

    /// Graceful departure: the predecessor absorbs the arc (the founding
    /// anchor at position 0 never leaves, keeping arcs unwrapped). The
    /// handover needs a live predecessor, so pending crash damage is
    /// repaired first (cost booked to the repair ledger).
    pub fn leave(&mut self, id: PeerId) {
        assert!(self.is_live(id), "peer already departed");
        assert!(self.peer_count() > 1, "cannot remove the last peer");
        self.epoch += 1;
        if !self.crashed.is_empty() {
            self.repair_all();
        }
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        assert!(rank > 0, "the founding anchor cannot leave");
        let tuples = self.peer_mut(id).store.drain_all();
        let heir = self.ring[rank - 1];
        self.peer_mut(heir).store.extend(tuples);
        self.ring.remove(rank);
        self.peers[id.index()] = None;
        // Handover done: the departed owner's copy is obsolete and the
        // heir's grown store needs a fresh capture.
        self.refresh_replicas();
    }

    /// Ungraceful departure: `id` dies without handover. It *stays in the
    /// ring* (successor pointers and finger tables go stale, exactly the
    /// deployment failure mode), its arc is unreachable and its tuples are
    /// lost until [`repair_all`](ChordNetwork::repair_all) patches the
    /// successor lists. Distinct from [`leave`](ChordNetwork::leave).
    /// Returns the number of tuples lost.
    ///
    /// # Panics
    /// Panics if `id` is not live, is the founding anchor, or is the last
    /// live peer.
    pub fn crash(&mut self, id: PeerId) -> usize {
        assert!(self.is_live(id), "peer already departed");
        assert!(self.peer_count() > 1, "cannot crash the last live peer");
        assert_ne!(id, self.ring[0], "the founding anchor cannot crash");
        self.epoch += 1;
        let lost = self.peer_mut(id).store.drain_all().len();
        self.tuples_lost += lost as u64;
        self.crashed.insert(id);
        lost
    }

    /// Runs the repair protocol: every crashed node is removed from the
    /// ring (its predecessor's arc extends over the gap, mirroring
    /// successor-list stabilization), charging `finger_count() + 1`
    /// messages per removal — the predecessor learns its new successor and
    /// the peers holding a stale finger refresh it. Returns the messages
    /// spent (also accumulated for
    /// [`take_repair_messages`](ChordNetwork::take_repair_messages)).
    /// Orphaned data is *not* recovered (no replication in this model).
    pub fn repair_all(&mut self) -> u64 {
        self.epoch += 1;
        let mut msgs = 0u64;
        let dead: Vec<PeerId> = std::mem::take(&mut self.crashed).into_iter().collect();
        for &id in &dead {
            let rank = self
                .ring
                .iter()
                .position(|&p| p == id)
                .expect("crashed peers stay in the ring until repair");
            self.ring.remove(rank);
            self.peers[id.index()] = None;
            msgs += u64::from(self.finger_count()) + 1;
        }
        self.repair_messages += msgs;
        // Ring patched: read the crashed owners' copies back into the (now
        // fully live) ring and re-replicate the grown stores.
        self.promote_replicas(&dead);
        msgs
    }

    /// The orphaned (crashed, unrepaired) arcs as `[lo, hi)` segments.
    pub fn orphan_segments(&self) -> Vec<Rect> {
        self.ring
            .iter()
            .enumerate()
            .filter(|&(_, &id)| !self.is_live(id))
            .map(|(rank, _)| {
                let (lo, hi) = self.arc_of_rank(rank);
                Rect::new(vec![lo], vec![hi])
            })
            .collect()
    }

    /// Tuples lost to crashes so far (dead stores + inserts into orphans).
    pub fn tuples_lost(&self) -> u64 {
        self.tuples_lost
    }

    /// Drains the count of repair messages spent since the last call.
    pub fn take_repair_messages(&mut self) -> u64 {
        std::mem::take(&mut self.repair_messages)
    }

    /// Enables k-replication: every peer's tuples are copied onto its first
    /// `k` live ring successors (the successor list reused as the replica
    /// topology). Captures the initial copies immediately and returns how
    /// many were shipped; the ledger is kept fresh by
    /// [`refresh_replicas`](ChordNetwork::refresh_replicas) (invoked after
    /// joins, leaves and repairs, and by [`ChurnOverlay::anti_entropy`]).
    pub fn enable_replication(&mut self, k: usize) -> u64 {
        self.epoch += 1;
        self.replicas = Some(ReplicaSet::new(k));
        self.refresh_replicas()
    }

    /// The replica ledger, when replication is enabled.
    pub fn replicas(&self) -> Option<&ReplicaSet> {
        self.replicas.as_ref()
    }

    /// Mutable access to the replica ledger (harnesses drain its transfer
    /// and byte counters into their metrics).
    pub fn replicas_mut(&mut self) -> Option<&mut ReplicaSet> {
        self.replicas.as_mut()
    }

    /// The peers that should hold `id`'s replicas: its first `k` live ring
    /// successors, clockwise. Deterministic; never contains `id`; shorter
    /// than `k` only when fewer than `k` other live peers exist.
    pub fn replica_targets(&self, id: PeerId, k: usize) -> Vec<PeerId> {
        let mut out = Vec::new();
        if k == 0 || !self.is_live(id) {
            return out;
        }
        let rank = self
            .ring
            .iter()
            .position(|&p| p == id)
            .expect("peer is live");
        let n = self.ring.len();
        for step in 1..n {
            if out.len() >= k {
                break;
            }
            let p = self.ring[(rank + step) % n];
            if self.is_live(p) {
                out.push(p);
            }
        }
        out
    }

    /// One anti-entropy pass over the replica ledger: re-captures live
    /// owners whose copy is missing, stale, short of holders or placed on a
    /// dead holder; re-sheds crashed owners' copies from a surviving holder
    /// (dropping them when none survived); prunes entries of gracefully
    /// departed owners. Returns the number of copies shipped or re-shed.
    pub fn refresh_replicas(&mut self) -> u64 {
        let Some(mut set) = self.replicas.take() else {
            return 0;
        };
        self.epoch += 1;
        let k = set.k();
        let mut refreshed = 0u64;
        if k > 0 {
            let mut ids = self.live_peers();
            ids.sort_unstable();
            for id in ids {
                let generation = self.peer(id).store.generation();
                let want = k.min(self.peer_count().saturating_sub(1));
                let needs = match set.get(id) {
                    None => want > 0,
                    Some(rep) => {
                        rep.generation() != generation
                            || rep.holders().len() < want
                            || rep.holders().iter().any(|&h| !self.is_live(h))
                    }
                };
                if !needs {
                    continue;
                }
                let holders = self.replica_targets(id, k);
                if holders.is_empty() {
                    set.note_generation(id, generation);
                    continue;
                }
                let tuples = self.peer(id).store.tuples().to_vec();
                set.capture(id, generation, tuples, holders);
                refreshed += 1;
            }
            // Owners no longer live: graceful departures handed their data
            // over (copy obsolete); crashed owners' copies are the recovery
            // substrate — keep them on live holders while one survives.
            for owner in set.owners() {
                if self.is_live(owner) {
                    continue;
                }
                if !self.crashed.contains(&owner) {
                    set.drop_owner(owner);
                    continue;
                }
                let rep = set.get(owner).expect("iterating current owners");
                if !rep.holders().iter().any(|&h| self.is_live(h)) {
                    // every holder died before re-shedding: the copy is lost
                    set.drop_owner(owner);
                    continue;
                }
                let dead: Vec<PeerId> = rep
                    .holders()
                    .iter()
                    .copied()
                    .filter(|&h| !self.is_live(h))
                    .collect();
                for h in dead {
                    let current = set.get(owner).expect("entry kept").holders().to_vec();
                    let mut fresh_ids = self.live_peers();
                    fresh_ids.sort_unstable();
                    let fresh = fresh_ids
                        .into_iter()
                        .find(|&p| p != owner && !current.contains(&p));
                    set.replace_holder(owner, h, fresh);
                    refreshed += 1;
                }
            }
        }
        self.replicas = Some(set);
        refreshed
    }

    /// The dead peers whose orphaned arcs overlap `segments`, each with the
    /// total overlap length, in ring order (deterministic).
    pub fn dead_zones_in(&self, segments: &[Rect]) -> Vec<(PeerId, f64)> {
        self.ring
            .iter()
            .enumerate()
            .filter(|&(_, &p)| !self.is_live(p))
            .filter_map(|(rank, &p)| {
                let (lo, hi) = self.arc_of_rank(rank);
                let overlap: f64 = segments
                    .iter()
                    .map(|s| {
                        let a = s.lo().coord(0).max(lo);
                        let b = s.hi().coord(0).min(hi);
                        (b - a).max(0.0)
                    })
                    .sum();
                (overlap > 0.0).then_some((p, overlap))
            })
            .collect()
    }

    /// The arcs of the listed live peers inside `segments` — the
    /// quarantine twin of [`dead_zones_in`](ChordNetwork::dead_zones_in):
    /// a quarantined peer still sits on the ring (its arc is no dead zone)
    /// but delivery routes around it, so recovery needs its arc geometry
    /// explicitly. Ring order, like its twin.
    pub fn peer_zones_in(&self, peers: &[PeerId], segments: &[Rect]) -> Vec<(PeerId, f64)> {
        if peers.is_empty() {
            return Vec::new();
        }
        self.ring
            .iter()
            .filter(|&&p| peers.contains(&p) && self.is_live(p))
            .filter_map(|&p| {
                let overlap: f64 = self
                    .zone_segments(p)
                    .iter()
                    .flat_map(|z| {
                        segments.iter().map(|s| {
                            let a = s.lo().coord(0).max(z.lo().coord(0));
                            let b = s.hi().coord(0).min(z.hi().coord(0));
                            (b - a).max(0.0)
                        })
                    })
                    .sum();
                (overlap > 0.0).then_some((p, overlap))
            })
            .collect()
    }

    /// Promotes the replicas of `dead_owners` after the ring is patched:
    /// each copy with a surviving holder is read back and its tuples
    /// re-inserted at their (live again) responsible peers; copies without
    /// a live holder are dropped as lost. Ends with a refresh pass so the
    /// grown stores are re-replicated.
    fn promote_replicas(&mut self, dead_owners: &[PeerId]) {
        if self.replicas.is_none() {
            return;
        }
        let mut set = self.replicas.take().expect("checked");
        for &owner in dead_owners {
            let has_live_holder = set
                .get(owner)
                .is_some_and(|r| r.holders().iter().any(|&h| self.is_live(h)));
            if has_live_holder {
                let rep = set.promote(owner).expect("entry checked");
                self.tuples_recovered += rep.tuples().len() as u64;
                for t in rep.tuples().iter().cloned() {
                    self.insert_tuple(t);
                }
            } else {
                set.drop_owner(owner);
            }
        }
        self.replicas = Some(set);
        self.refresh_replicas();
    }

    /// Tuples restored from replicas by repair-time promotion so far (a
    /// subset of [`tuples_lost`](ChordNetwork::tuples_lost), which keeps
    /// counting the raw crash damage).
    pub fn tuples_recovered(&self) -> u64 {
        self.tuples_recovered
    }

    /// A live peer positioned inside one of `segments` and not in `tried`,
    /// if any (smallest id, for determinism). The executor's failover
    /// primitive: the peers *positioned inside* a finger region are exactly
    /// the peers reachable through that finger, so entering the region
    /// through one of them cannot double-visit peers owned by other links.
    pub fn live_peer_in_segments(&self, segments: &[Rect], tried: &[PeerId]) -> Option<PeerId> {
        self.ring
            .iter()
            .copied()
            .filter(|&p| self.is_live(p) && !tried.contains(&p))
            .filter(|&p| {
                let pos = self.peer(p).position;
                segments
                    .iter()
                    .any(|s| s.lo().coord(0) <= pos && pos < s.hi().coord(0))
            })
            .min()
    }

    /// The executor's failover primitive: the first live, untried peer
    /// *clockwise from the arc's start* adopts the arc, trimmed to the part
    /// clockwise-reachable from it.
    ///
    /// Ring propagation is order-sensitive: a peer can only cover what lies
    /// clockwise between itself and the arc's end — its wrapping finger
    /// regions would hand the arc's *prefix* to peers outside the arc,
    /// breaking the visit-once guarantee. Trimming instead is sound and
    /// honest: segments arrive in clockwise order (a wrapped arc is listed
    /// origin-suffix first), the adopter is the first live candidate in that
    /// order (within a segment, lowest position), so everything trimmed off
    /// holds only dead or already-tried peers and is reported as
    /// unreachable by the caller.
    pub fn adopt_segments(
        &self,
        segments: &[Rect],
        tried: &[PeerId],
    ) -> Option<(PeerId, Vec<Rect>)> {
        for (i, seg) in segments.iter().enumerate() {
            let (lo, hi) = (seg.lo().coord(0), seg.hi().coord(0));
            let adopter = self
                .ring
                .iter()
                .copied()
                .filter(|&p| self.is_live(p) && !tried.contains(&p))
                .filter(|&p| {
                    let pos = self.peer(p).position;
                    lo <= pos && pos < hi
                })
                .min_by(|&a, &b| self.peer(a).position.total_cmp(&self.peer(b).position));
            if let Some(p) = adopter {
                let pos = self.peer(p).position;
                let mut sub = Vec::with_capacity(segments.len() - i);
                sub.push(Rect::new(vec![pos], vec![hi]));
                sub.extend(segments[i + 1..].iter().cloned());
                return Some((p, sub));
            }
        }
        None
    }

    /// Checks structural invariants (tests), crash-aware: positions stay
    /// strictly sorted (dead entries included — they shape the stale ring),
    /// the anchor is live at 0, crashed peers are ring members with drained
    /// stores, and every stored tuple sits inside its owner's arc.
    pub fn check_invariants(&self) {
        assert_eq!(self.peer(self.ring[0]).position, 0.0, "anchor at 0");
        assert!(self.is_live(self.ring[0]), "anchor must be live");
        for w in self.ring.windows(2) {
            assert!(self.peer(w[0]).position < self.peer(w[1]).position);
        }
        for &c in &self.crashed {
            assert!(self.ring.contains(&c), "crashed peers stay in the ring");
            assert!(
                self.peer(c).store.is_empty(),
                "crashed stores must be drained (data lost)"
            );
        }
        for (rank, &id) in self.ring.iter().enumerate() {
            let (lo, hi) = self.arc_of_rank(rank);
            for t in self.peer(id).store.iter() {
                let k = t.point.coord(0);
                assert!(lo <= k && (k < hi || (hi == 1.0 && k <= 1.0)));
            }
        }
    }
}

impl Default for ChordNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ChurnOverlay for ChordNetwork {
    fn peer_count(&self) -> usize {
        self.peer_count()
    }

    fn churn_join(&mut self, rng: &mut dyn ripple_net::rng::RngCore) {
        let pos = ripple_net::rng::Rng::gen::<f64>(&mut &mut *rng);
        self.join(pos);
    }

    fn churn_leave(&mut self, rng: &mut dyn ripple_net::rng::RngCore) {
        if self.peer_count() <= 1 {
            return;
        }
        // Never remove the anchor (rank 0) and never pick a dead entry.
        // With no crash damage this draws the same stream and picks the
        // same peer as the pre-fault implementation.
        let live: Vec<PeerId> = self.ring[1..]
            .iter()
            .copied()
            .filter(|&p| self.is_live(p))
            .collect();
        if live.is_empty() {
            return;
        }
        let idx = ripple_net::rng::Rng::gen_range(&mut &mut *rng, 0..live.len());
        self.leave(live[idx]);
    }

    fn churn_crash(&mut self, rng: &mut dyn ripple_net::rng::RngCore) -> Option<u32> {
        if self.peer_count() <= 1 {
            return None;
        }
        let live: Vec<PeerId> = self.ring[1..]
            .iter()
            .copied()
            .filter(|&p| self.is_live(p))
            .collect();
        if live.is_empty() {
            return None;
        }
        let idx = ripple_net::rng::Rng::gen_range(&mut &mut *rng, 0..live.len());
        let id = live[idx];
        self.crash(id);
        Some(id.index() as u32)
    }

    fn anti_entropy(&mut self) -> u64 {
        self.refresh_replicas()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn build_and_invariants() {
        let mut r = rng(1);
        let net = ChordNetwork::build(64, &mut r);
        assert_eq!(net.peer_count(), 64);
        net.check_invariants();
    }

    #[test]
    fn responsibility_is_predecessor_style() {
        let mut net = ChordNetwork::new();
        net.join(0.5);
        net.join(0.25);
        assert_eq!(net.responsible(0.1), net.ring()[0]);
        assert_eq!(net.responsible(0.25), net.ring()[1]);
        assert_eq!(net.responsible(0.3), net.ring()[1]);
        assert_eq!(net.responsible(0.9), net.ring()[2]);
    }

    #[test]
    fn routing_reaches_owner_logarithmically() {
        let mut r = rng(2);
        let net = ChordNetwork::build(256, &mut r);
        let mut total = 0u32;
        for _ in 0..50 {
            let key = r.gen::<f64>();
            let from = net.random_peer(&mut r);
            let (owner, hops) = net.route(from, key);
            assert_eq!(owner, net.responsible(key));
            total += hops;
        }
        let mean = total as f64 / 50.0;
        assert!(mean < 16.0, "mean hops {mean} too high for 256 peers");
    }

    #[test]
    fn tuples_follow_arcs_under_churn() {
        let mut r = rng(3);
        let mut net = ChordNetwork::build(16, &mut r);
        for i in 0..100 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        for _ in 0..40 {
            if r.gen_bool(0.5) {
                net.churn_join(&mut r);
            } else {
                net.churn_leave(&mut r);
            }
        }
        net.check_invariants();
        let total: usize = net.ring().iter().map(|&p| net.peer(p).store.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn crash_keeps_stale_ring_until_repair() {
        let mut r = rng(5);
        let mut net = ChordNetwork::build(32, &mut r);
        for i in 0..100 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        let stored: usize = net.ring().iter().map(|&p| net.peer(p).store.len()).sum();
        let victim = {
            let live = net.live_peers();
            live[5] // never the anchor
        };
        let held = net.peer(victim).store.len();
        let lost = net.crash(victim);
        assert_eq!(lost, held);
        assert_eq!(net.tuples_lost(), held as u64);
        assert!(!net.is_live(victim));
        assert_eq!(net.peer_count(), 31);
        assert_eq!(net.ring().len(), 32, "dead entry stays in the stale ring");
        assert_eq!(net.orphan_segments().len(), 1);
        net.check_invariants();
        let msgs = net.repair_all();
        assert!(msgs > 0);
        assert_eq!(net.take_repair_messages(), msgs);
        assert_eq!(net.ring().len(), 31, "repair removes the dead entry");
        assert!(net.orphan_segments().is_empty());
        net.check_invariants();
        let after: usize = net.ring().iter().map(|&p| net.peer(p).store.len()).sum();
        assert_eq!(after, stored - held, "orphaned data is lost, not recovered");
    }

    #[test]
    fn routing_never_panics_with_dead_ring_entries() {
        let mut r = rng(6);
        let mut net = ChordNetwork::build(64, &mut r);
        for _ in 0..16 {
            net.churn_crash(&mut r);
        }
        net.check_invariants();
        for _ in 0..100 {
            let key = r.gen::<f64>();
            let from = net.random_peer(&mut r);
            assert!(net.is_live(from));
            let (reached, _hops) = net.route(from, key);
            assert!(net.is_live(reached), "routes end at live peers");
        }
    }

    #[test]
    fn crash_repair_churn_interleaving_holds_invariants() {
        let mut r = rng(7);
        let mut net = ChordNetwork::build(24, &mut r);
        for i in 0..60 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        for step in 0..150 {
            match step % 5 {
                0 | 1 => net.churn_join(&mut r),
                2 => {
                    net.churn_crash(&mut r);
                }
                3 => net.churn_leave(&mut r), // repairs lazily first
                _ => {
                    net.repair_all();
                }
            }
            net.check_invariants();
        }
        net.repair_all();
        net.check_invariants();
        assert!(net.orphan_segments().is_empty());
    }

    #[test]
    fn join_into_dead_arc_triggers_lazy_repair() {
        let mut r = rng(8);
        let mut net = ChordNetwork::build(8, &mut r);
        let victim = net.live_peers()[3];
        let pos = net.peer(victim).position;
        net.crash(victim);
        // joining just above the dead peer's position lands in its arc
        let id = net.join(pos + 1e-6);
        assert!(net.is_live(id));
        assert!(net.orphan_segments().is_empty(), "join repaired first");
        assert!(net.take_repair_messages() > 0);
        net.check_invariants();
    }

    #[test]
    fn failover_candidates_sit_inside_segments() {
        let mut r = rng(9);
        let mut net = ChordNetwork::build(32, &mut r);
        let victim = net.live_peers()[10];
        net.crash(victim);
        let segs = vec![Rect::new(vec![0.0], vec![1.0])];
        let c = net
            .live_peer_in_segments(&segs, &[])
            .expect("whole domain has live peers");
        assert!(net.is_live(c));
        let narrow = net.zone_segments(victim);
        if let Some(alt) = net.live_peer_in_segments(&narrow, &[]) {
            let pos = net.peer(alt).position;
            assert!(narrow
                .iter()
                .any(|s| s.lo().coord(0) <= pos && pos < s.hi().coord(0)));
        }
    }

    fn stored_total(net: &ChordNetwork) -> usize {
        net.ring().iter().map(|&p| net.peer(p).store.len()).sum()
    }

    #[test]
    fn replication_targets_are_ring_successors() {
        let mut r = rng(40);
        let net = ChordNetwork::build(32, &mut r);
        for &id in &net.live_peers() {
            let rank = net.ring().iter().position(|&p| p == id).unwrap();
            let targets = net.replica_targets(id, 2);
            assert_eq!(targets.len(), 2);
            assert_eq!(targets[0], net.ring()[(rank + 1) % 32]);
            assert_eq!(targets[1], net.ring()[(rank + 2) % 32]);
        }
    }

    #[test]
    fn crash_then_repair_promotes_replicas() {
        let mut r = rng(41);
        let mut net = ChordNetwork::build(16, &mut r);
        for i in 0..100 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        let shipped = net.enable_replication(2);
        assert_eq!(shipped, 16);
        let victim = net.live_peers()[5];
        let arc = net.zone_segments(victim);
        let held = net.crash(victim);
        // the dead owner's copy survives on its successors
        let rep = net.replicas().unwrap().get(victim).expect("copy kept");
        assert_eq!(rep.tuples().len(), held);
        let zones = net.dead_zones_in(&arc);
        assert_eq!(zones.len(), 1);
        assert_eq!(zones[0].0, victim);
        assert!((zones[0].1 - arc[0].side(0)).abs() < 1e-12);
        // repair promotes: the predecessor ends up owning the tuples again
        net.repair_all();
        assert_eq!(net.tuples_recovered(), held as u64);
        assert_eq!(stored_total(&net), 100, "promotion restored every tuple");
        assert!(net.replicas().unwrap().get(victim).is_none());
        net.check_invariants();
    }

    #[test]
    fn anti_entropy_replaces_dead_holders() {
        let mut r = rng(42);
        let mut net = ChordNetwork::build(12, &mut r);
        for i in 0..50 {
            net.insert_tuple(Tuple::new(i, vec![r.gen::<f64>()]));
        }
        net.enable_replication(1);
        // crash a peer that holds someone's copy
        let holder = net
            .live_peers()
            .into_iter()
            .skip(1)
            .find(|&p| !net.replicas().unwrap().owners_held_by(p).is_empty())
            .expect("every successor holds a copy");
        let owners = net.replicas().unwrap().owners_held_by(holder);
        net.crash(holder);
        ChurnOverlay::anti_entropy(&mut net);
        let set = net.replicas().unwrap();
        for o in owners {
            if net.is_live(o) {
                let rep = set.get(o).expect("live owner stays covered");
                assert!(rep.holders().iter().all(|&h| net.is_live(h)));
                assert!(!rep.holders().contains(&holder));
            }
        }
        // churn cycle with replication stays consistent
        for _ in 0..20 {
            if r.gen_bool(0.4) {
                net.churn_join(&mut r);
            } else if r.gen_bool(0.5) {
                net.churn_crash(&mut r);
            } else {
                net.churn_leave(&mut r);
            }
            ChurnOverlay::anti_entropy(&mut net);
            net.check_invariants();
        }
        net.repair_all();
        assert_eq!(
            stored_total(&net) as u64 + net.tuples_lost() - net.tuples_recovered(),
            50
        );
    }

    #[test]
    fn fingers_are_deduplicated_and_remote() {
        let mut r = rng(4);
        let net = ChordNetwork::build(64, &mut r);
        let p = net.random_peer(&mut r);
        let fingers = net.fingers(p);
        assert!(!fingers.is_empty());
        assert!(!fingers.contains(&p));
        let mut dedup = fingers.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), fingers.len());
    }
}
