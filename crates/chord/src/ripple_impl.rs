//! RIPPLE over Chord: the substrate adapter (Section 3.1's Chord example).
//!
//! The region of `w`'s `i`-th finger stretches from the beginning of that
//! finger's zone to the beginning of the next finger's zone (wrapping back
//! to `w`'s own zone after the last finger). A clockwise arc that wraps the
//! ring origin is represented as two `[lo, hi)` segments, so regions are
//! `Vec<Rect>` (one-dimensional rectangles) and the standard [`TopKQuery`]
//! runs unchanged — the genericity claim of the paper, demonstrated.
//!
//! [`TopKQuery`]: ripple_core::topk::TopKQuery

use crate::network::ChordNetwork;
use ripple_core::framework::RippleOverlay;
use ripple_geom::{Rect, Tuple};
use ripple_net::{LocalView, PeerId};

/// Clockwise arc `[from, to)` as up to two linear segments.
fn arc_segments(from: f64, to: f64) -> Vec<Rect> {
    if from < to {
        vec![Rect::new(vec![from], vec![to])]
    } else {
        // wraps the origin
        let mut segs = Vec::with_capacity(2);
        if from < 1.0 {
            segs.push(Rect::new(vec![from], vec![1.0]));
        }
        if to > 0.0 {
            segs.push(Rect::new(vec![0.0], vec![to]));
        }
        segs
    }
}

impl RippleOverlay for ChordNetwork {
    type Region = Vec<Rect>;

    fn full_region(&self) -> Vec<Rect> {
        vec![Rect::new(vec![0.0], vec![1.0])]
    }

    fn region_intersect(&self, region: &Vec<Rect>, restriction: &Vec<Rect>) -> Option<Vec<Rect>> {
        let mut out = Vec::new();
        for a in region {
            for b in restriction {
                if let Some(i) = a.intersection(b) {
                    out.push(i);
                }
            }
        }
        (!out.is_empty()).then_some(out)
    }

    fn peer_links(&self, peer: PeerId) -> Vec<(PeerId, Vec<Rect>)> {
        let fingers = self.fingers(peer);
        if fingers.is_empty() {
            return Vec::new();
        }
        // region of finger i: from its zone start to the next finger's zone
        // start; the last region closes the ring at w's own zone start.
        let start_of = |p: PeerId| self.peer(p).position;
        let own_start = start_of(peer);
        let mut links = Vec::with_capacity(fingers.len());
        for (i, &f) in fingers.iter().enumerate() {
            let from = start_of(f);
            let to = if i + 1 < fingers.len() {
                start_of(fingers[i + 1])
            } else {
                own_start
            };
            links.push((f, arc_segments(from, to)));
        }
        links
    }

    fn peer_count(&self) -> usize {
        ChordNetwork::peer_count(self)
    }

    fn peer_tuples(&self, peer: PeerId) -> &[Tuple] {
        self.peer(peer).store.tuples()
    }

    fn peer_view(&self, peer: PeerId) -> LocalView<'_> {
        LocalView::Indexed(&self.peer(peer).store, ripple_geom::KernelDispatch::Auto)
    }

    fn region_volume(&self, region: &Vec<Rect>) -> f64 {
        region.iter().map(|seg| seg.side(0)).sum()
    }

    fn region_rects(&self, region: &Vec<Rect>) -> Vec<Rect> {
        region.clone()
    }

    fn snapshot_generation(&self) -> u64 {
        self.epoch()
    }

    fn is_peer_live(&self, peer: PeerId) -> bool {
        self.is_live(peer)
    }

    /// The first live peer clockwise from the arc start adopts the arc,
    /// trimmed to its clockwise-reachable part (see
    /// [`ChordNetwork::adopt_segments`]): the trimmed restriction then
    /// starts exactly at the adopter's zone start — the same shape a
    /// fault-free forward produces — so every deeper link target lies
    /// inside its restricted region and no peer outside the arc is ever
    /// re-entered.
    fn failover_target(&self, region: &Vec<Rect>, tried: &[PeerId]) -> Option<(PeerId, Vec<Rect>)> {
        self.adopt_segments(region, tried)
    }

    fn replica_targets(&self, peer: PeerId, k: usize) -> Vec<PeerId> {
        ChordNetwork::replica_targets(self, peer, k)
    }

    fn replicas(&self) -> Option<&ripple_net::ReplicaSet> {
        ChordNetwork::replicas(self)
    }

    fn quarantine(&self) -> Option<&ripple_net::Quarantine> {
        Some(ChordNetwork::quarantine(self))
    }

    fn dead_zones_in(&self, region: &Vec<Rect>) -> Vec<(PeerId, f64)> {
        ChordNetwork::dead_zones_in(self, region)
    }

    fn peer_zones_in(&self, peers: &[PeerId], region: &Vec<Rect>) -> Vec<(PeerId, f64)> {
        ChordNetwork::peer_zones_in(self, peers, region)
    }
}

/// Chord serves top-k (the [`TopKQuery`] segment impl); skyline has no
/// `Vec<Rect>` instantiation, so skyline submissions are rejected at
/// admission with `ServiceError::Unsupported` instead of panicking a
/// driver thread.
impl ripple_core::service::Servable for ChordNetwork {
    fn supports(query: &ripple_core::service::ServiceQuery) -> bool {
        matches!(query, ripple_core::service::ServiceQuery::TopK { .. })
    }

    fn serve(
        exec: &ripple_core::Executor<'_, Self>,
        initiator: PeerId,
        query: &ripple_core::service::ServiceQuery,
        mode: ripple_core::framework::Mode,
        threads: usize,
    ) -> ripple_core::service::Served {
        use ripple_core::service::{Served, ServiceQuery, ServiceScore};
        match query {
            ServiceQuery::TopK { score, k } => {
                let (answers, metrics, coverage, certificate) = match score {
                    ServiceScore::Linear(w) => ripple_core::topk::run_topk_certified_par(
                        exec,
                        initiator,
                        ripple_geom::LinearScore::new(w.clone()),
                        *k,
                        mode,
                        threads,
                    ),
                    ServiceScore::Peak(p, norm) => ripple_core::topk::run_topk_certified_par(
                        exec,
                        initiator,
                        ripple_geom::PeakScore::new(p.clone(), *norm),
                        *k,
                        mode,
                        threads,
                    ),
                };
                Served {
                    answers,
                    metrics,
                    coverage,
                    certificate,
                }
            }
            ServiceQuery::Skyline { .. } => {
                unreachable!("skyline is rejected at admission: supports() returned false")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_core::framework::Mode;
    use ripple_core::topk::{centralized_topk, run_topk};
    use ripple_geom::{LinearScore, Norm, PeakScore};
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};

    #[test]
    fn arc_segment_wrapping() {
        assert_eq!(arc_segments(0.2, 0.7).len(), 1);
        let wrapped = arc_segments(0.7, 0.2);
        assert_eq!(wrapped.len(), 2);
        let total: f64 = wrapped.iter().map(|r| r.side(0)).sum();
        assert!((total - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regions_partition_the_ring() {
        let mut rng = SmallRng::seed_from_u64(5);
        let net = ChordNetwork::build(64, &mut rng);
        for &p in net.ring().iter().take(10) {
            let links = net.peer_links(p);
            let link_len: f64 = links
                .iter()
                .flat_map(|(_, segs)| segs.iter().map(|s| s.side(0)))
                .sum();
            let zone_len: f64 = net.zone_segments(p).iter().map(|s| s.side(0)).sum();
            assert!(
                (link_len + zone_len - 1.0).abs() < 1e-9,
                "regions + zone must cover the ring: {}",
                link_len + zone_len
            );
        }
    }

    #[test]
    fn topk_over_chord_matches_centralized() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = ChordNetwork::build(80, &mut rng);
        let data: Vec<Tuple> = (0..500u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
            .collect();
        net.insert_all(data.clone());
        let score = LinearScore::uniform(1);
        let oracle = centralized_topk(&data, &score, 10);
        for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast] {
            let initiator = net.random_peer(&mut rng);
            let (got, metrics) = run_topk(&net, initiator, score.clone(), 10, mode);
            let got_ids: Vec<u64> = got.iter().map(|t| t.id).collect();
            let want_ids: Vec<u64> = oracle.iter().map(|t| t.id).collect();
            assert_eq!(got_ids, want_ids, "{mode:?}");
            assert!(metrics.peers_visited > 0);
        }
    }

    #[test]
    fn unimodal_topk_over_chord() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = ChordNetwork::build(40, &mut rng);
        let data: Vec<Tuple> = (0..300u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
            .collect();
        net.insert_all(data.clone());
        let score = PeakScore::new(vec![0.37], Norm::L1);
        let oracle = centralized_topk(&data, &score, 5);
        let initiator = net.random_peer(&mut rng);
        let (got, _) = run_topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert_eq!(
            got.iter().map(|t| t.id).collect::<Vec<_>>(),
            oracle.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pruned_modes_visit_fewer_peers_than_broadcast() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut net = ChordNetwork::build(100, &mut rng);
        let data: Vec<Tuple> = (0..600u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>()]))
            .collect();
        net.insert_all(data);
        let initiator = net.random_peer(&mut rng);
        let score = LinearScore::uniform(1);
        let (_, bcast) = run_topk(&net, initiator, score.clone(), 5, Mode::Broadcast);
        let (_, slow) = run_topk(&net, initiator, score.clone(), 5, Mode::Slow);
        assert_eq!(bcast.peers_visited as usize, net.peer_count());
        assert!(
            slow.peers_visited < bcast.peers_visited / 2,
            "slow should prune hard on a 1-d ring: {} vs {}",
            slow.peers_visited,
            bcast.peers_visited
        );
    }
}
