//! The `ripple-serve` demo binary: a seeded MIDAS overlay behind the
//! multi-tenant [`QueryService`], speaking newline-delimited JSON on
//! stdin/stdout. See the crate docs for the request grammar.
//!
//! ```text
//! echo '{"op":"topk","k":3,"weights":[1.0,0.5]}' | cargo run --release --bin ripple-serve
//! ```
//!
//! Flags (all optional): `--dims D --peers P --tuples N --seed S
//! --drivers K --no-cache`.
//!
//! [`QueryService`]: ripple_core::QueryService

use ripple_core::service::ServiceConfig;
use ripple_serve::Session;
use std::io::{BufRead, Write};

fn usage() -> ! {
    eprintln!(
        "usage: ripple-serve [--dims D] [--peers P] [--tuples N] [--seed S] \
         [--drivers K] [--no-cache]"
    );
    std::process::exit(2);
}

fn main() {
    let mut dims = 2usize;
    let mut peers = 64usize;
    let mut tuples = 2_000u64;
    let mut seed = 42u64;
    let mut config = ServiceConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--dims" => dims = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--peers" => peers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tuples" => tuples = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--drivers" => config.drivers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-cache" => config.cache = false,
            _ => usage(),
        }
        i += 1;
    }

    let mut session = Session::new(dims, peers, tuples, seed, config);
    eprintln!(
        "ripple-serve: {dims}-d MIDAS, {peers} peers, {tuples} tuples, \
         generation {} — one JSON request per line",
        session.service().generation()
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let resp = session.handle_line(line.trim());
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            break;
        }
    }
}
