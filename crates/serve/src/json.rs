//! A minimal hand-rolled JSON reader/writer — the workspace is
//! dependency-free by construction, so the wire layer parses its own
//! request lines. Covers the full JSON grammar except exotic float forms
//! (`NaN`, `Infinity`), which JSON itself forbids anyway.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not significant, so a sorted map.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere / when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a usize (floor), if numeric and finite.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0)
            .map(|n| n as usize)
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// An array of numbers as a `Vec<f64>`, if every element is numeric.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates would need pairing; the wire
                            // format never emits them, so reject.
                            out.push(char::from_u32(code).ok_or("unpaired surrogate")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_grammar() {
        let v = parse(r#"{"op":"topk","k":10,"weights":[1.0,0.5],"tenant":3}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("topk"));
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(10));
        assert_eq!(
            v.get("weights").and_then(Json::as_f64_vec),
            Some(vec![1.0, 0.5])
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nesting_escapes_and_numbers() {
        let v = parse(r#"{"a":[{"b":null},true,false,-1.5e2,"x\n\"yA"]}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("b"), Some(&Json::Null));
        assert_eq!(arr[3], Json::Num(-150.0));
        assert_eq!(arr[4].as_str(), Some("x\n\"yA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"open", "1 2"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "line\nquote\" slash\\ tab\tctrl\u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(s));
    }
}
