//! `ripple-serve`: the multi-tenant front door as a process.
//!
//! A thin wire layer over [`ripple_core::QueryService`]: newline-delimited
//! JSON requests in, newline-delimited JSON responses out (the
//! `ripple-serve` binary pipes stdin/stdout through a [`Session`]). The
//! protocol is deliberately tiny — this is the demo skin over the serving
//! plane, not a network server; the scheduler, epoch handshake and result
//! cache all live in `ripple-core`.
//!
//! ```text
//! {"op":"topk","tenant":0,"k":3,"weights":[1.0,0.5]}
//! {"op":"topk","k":5,"peak":[0.3,0.6],"norm":"l2","mode":"slow"}
//! {"op":"skyline","constraint":{"lo":[0.2,0.2],"hi":[0.9,0.9]}}
//! {"op":"churn","kind":"join"}
//! {"op":"stats"}
//! ```

#![warn(missing_docs)]

pub mod json;

use json::{escape, parse, Json};
use ripple_core::framework::Mode;
use ripple_core::service::{QueryService, ServiceConfig, ServiceError, ServiceQuery, ServiceScore};
use ripple_geom::{Norm, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};

/// One serving session: a seeded MIDAS overlay behind a [`QueryService`],
/// speaking the line protocol.
pub struct Session {
    service: QueryService<MidasNetwork>,
    rng: SmallRng,
    dims: usize,
    next_insert_id: u64,
}

impl Session {
    /// Builds a `dims`-dimensional overlay of `peers` peers loaded with
    /// `tuples` uniform tuples, and wraps it in a service.
    pub fn new(dims: usize, peers: usize, tuples: u64, seed: u64, config: ServiceConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
        for i in 0..tuples {
            let p: Vec<f64> = (0..dims).map(|_| rng.gen()).collect();
            net.insert_tuple(Tuple::new(i, p));
        }
        Self {
            service: QueryService::new(net, config),
            rng,
            dims,
            next_insert_id: tuples,
        }
    }

    /// The wrapped service (for tests and embedding).
    pub fn service(&self) -> &QueryService<MidasNetwork> {
        &self.service
    }

    /// Handles one request line, returning one response line (no trailing
    /// newline). Malformed input never panics: it becomes an `"ok":false`
    /// response.
    pub fn handle_line(&mut self, line: &str) -> String {
        match self.dispatch(line) {
            Ok(resp) => resp,
            Err(msg) => format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(&msg)),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<String, String> {
        let req = parse(line)?;
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "topk" | "skyline" => self.query(&req),
            "churn" => self.churn(&req),
            "stats" => Ok(self.stats()),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    fn query(&mut self, req: &Json) -> Result<String, String> {
        let query = parse_query(req)?;
        let mode = parse_mode(req)?;
        let tenant = req.get("tenant").and_then(Json::as_usize).unwrap_or(0) as u32;
        let initiator = self
            .service
            .with_network(|net| net.random_peer(&mut self.rng));
        let ticket = self
            .service
            .submit(tenant, initiator, query, mode)
            .map_err(|e| e.to_string())?;
        let resp = match ticket.wait() {
            Ok(resp) => resp,
            Err(ServiceError::Shutdown) => return Err("service shut down".into()),
            Err(e) => return Err(e.to_string()),
        };
        let answers: Vec<String> = resp
            .answers
            .iter()
            .map(|t| {
                let coords: Vec<String> = t.point.coords().iter().map(|c| format!("{c}")).collect();
                format!("{{\"id\":{},\"point\":[{}]}}", t.id, coords.join(","))
            })
            .collect();
        Ok(format!(
            "{{\"ok\":true,\"generation\":{},\"cache_hit\":{},\"queue_wait_ns\":{},\
             \"messages\":{},\"certified\":{},\"answers\":[{}]}}",
            resp.generation,
            resp.cache_hit,
            resp.metrics.queue_wait_ns,
            resp.metrics.total_messages(),
            resp.certificate.is_some(),
            answers.join(",")
        ))
    }

    fn churn(&mut self, req: &Json) -> Result<String, String> {
        let kind = req
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        let rng = &mut self.rng;
        let generation = match kind {
            "join" => {
                self.service.advance_epoch(|net| net.join_random(rng));
                self.service.generation()
            }
            "insert" => {
                let point = match req.get("point").and_then(Json::as_f64_vec) {
                    Some(p) => p,
                    None => (0..self.dims).map(|_| rng.gen()).collect(),
                };
                let id = self.next_insert_id;
                self.next_insert_id += 1;
                self.service
                    .advance_epoch(|net| net.insert_tuple(Tuple::new(id, point)));
                self.service.generation()
            }
            other => return Err(format!("unknown churn kind {other:?}")),
        };
        Ok(format!("{{\"ok\":true,\"generation\":{generation}}}"))
    }

    fn stats(&self) -> String {
        let s = self.service.stats();
        format!(
            "{{\"ok\":true,\"generation\":{},\"admitted\":{},\"rejected\":{},\
             \"completed\":{},\"cache_hits\":{},\"cache_invalidated\":{},\"queued\":{}}}",
            self.service.generation(),
            s.admitted,
            s.rejected,
            s.completed,
            s.cache_hits,
            s.cache_invalidated,
            self.service.queue_len()
        )
    }
}

fn parse_query(req: &Json) -> Result<ServiceQuery, String> {
    match req.get("op").and_then(Json::as_str) {
        Some("topk") => {
            let k = req
                .get("k")
                .and_then(Json::as_usize)
                .filter(|&k| k > 0)
                .ok_or("top-k needs a positive \"k\"")?;
            let score = if let Some(w) = req.get("weights").and_then(Json::as_f64_vec) {
                ServiceScore::Linear(w)
            } else if let Some(p) = req.get("peak").and_then(Json::as_f64_vec) {
                let norm = match req.get("norm").and_then(Json::as_str).unwrap_or("l2") {
                    "l1" => Norm::L1,
                    "l2" => Norm::L2,
                    "linf" => Norm::Linf,
                    other => return Err(format!("unknown norm {other:?}")),
                };
                ServiceScore::Peak(p, norm)
            } else {
                return Err("top-k needs \"weights\" or \"peak\"".into());
            };
            Ok(ServiceQuery::TopK { score, k })
        }
        Some("skyline") => {
            let constraint = match req.get("constraint") {
                None => None,
                Some(c) => {
                    let lo = c
                        .get("lo")
                        .and_then(Json::as_f64_vec)
                        .ok_or("constraint needs \"lo\"")?;
                    let hi = c
                        .get("hi")
                        .and_then(Json::as_f64_vec)
                        .ok_or("constraint needs \"hi\"")?;
                    if lo.len() != hi.len() {
                        return Err("constraint lo/hi dimensionality mismatch".into());
                    }
                    Some(Rect::new(lo, hi))
                }
            };
            Ok(ServiceQuery::Skyline { constraint })
        }
        _ => Err("unknown query op".into()),
    }
}

fn parse_mode(req: &Json) -> Result<Mode, String> {
    match req.get("mode").and_then(Json::as_str) {
        None | Some("fast") => Ok(Mode::Fast),
        Some("slow") => Ok(Mode::Slow),
        Some("broadcast") => Ok(Mode::Broadcast),
        Some("ripple") => {
            let r = req.get("radius").and_then(Json::as_usize).unwrap_or(2);
            Ok(Mode::Ripple(r.max(1) as u32))
        }
        Some(other) => Err(format!("unknown mode {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(2, 32, 300, 7, ServiceConfig::default())
    }

    #[test]
    fn topk_request_roundtrip() {
        let mut s = session();
        let resp = s.handle_line(r#"{"op":"topk","tenant":1,"k":3,"weights":[1.0,0.5]}"#);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("answers").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("certified"), Some(&Json::Bool(true)));
        // A repeat of the same shape is a cache hit.
        let resp = s.handle_line(r#"{"op":"topk","tenant":2,"k":3,"weights":[1.0,0.5]}"#);
        let v = parse(&resp).unwrap();
        assert_eq!(v.get("cache_hit"), Some(&Json::Bool(true)));
        assert_eq!(v.get("messages"), Some(&Json::Num(0.0)));
    }

    #[test]
    fn skyline_peak_and_modes() {
        let mut s = session();
        for line in [
            r#"{"op":"skyline"}"#,
            r#"{"op":"skyline","constraint":{"lo":[0.2,0.2],"hi":[0.9,0.9]},"mode":"slow"}"#,
            r#"{"op":"topk","k":5,"peak":[0.3,0.6],"norm":"l1","mode":"ripple","radius":2}"#,
            r#"{"op":"topk","k":5,"peak":[0.3,0.6],"mode":"broadcast"}"#,
        ] {
            let v = parse(&s.handle_line(line)).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
        }
    }

    #[test]
    fn churn_bumps_generation_and_invalidates() {
        let mut s = session();
        let v = parse(&s.handle_line(r#"{"op":"topk","k":2,"weights":[1.0,1.0]}"#)).unwrap();
        let g0 = v.get("generation").unwrap().as_f64().unwrap();
        let v = parse(&s.handle_line(r#"{"op":"churn","kind":"join"}"#)).unwrap();
        assert!(v.get("generation").unwrap().as_f64().unwrap() > g0);
        let v = parse(&s.handle_line(r#"{"op":"topk","k":2,"weights":[1.0,1.0]}"#)).unwrap();
        assert_eq!(v.get("cache_hit"), Some(&Json::Bool(false)));
        let v =
            parse(&s.handle_line(r#"{"op":"churn","kind":"insert","point":[0.5,0.5]}"#)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let v = parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(v.get("admitted"), Some(&Json::Num(2.0)));
        assert_eq!(v.get("completed"), Some(&Json::Num(2.0)));
    }

    #[test]
    fn malformed_requests_answer_instead_of_panicking() {
        let mut s = session();
        for line in [
            "",
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"topk"}"#,
            r#"{"op":"topk","k":0,"weights":[1.0,1.0]}"#,
            r#"{"op":"topk","k":3,"weights":[1.0],"mode":"warp"}"#,
            r#"{"op":"skyline","constraint":{"lo":[0.1]}}"#,
            r#"{"op":"churn","kind":"meteor"}"#,
        ] {
            let v = parse(&s.handle_line(line)).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line:?}");
            assert!(v.get("error").is_some(), "{line:?}");
        }
    }
}
