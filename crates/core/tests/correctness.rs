//! End-to-end correctness: every RIPPLE mode must return exactly the
//! centralized answer, from any initiator, for all three query types.

use ripple_core::diversify::{diversify, greedy_trace, run_single_tuple, Initialize};
use ripple_core::framework::Mode;
use ripple_core::skyline::{centralized_skyline, run_skyline};
use ripple_core::topk::{centralized_topk, run_topk};
use ripple_geom::{DiversityQuery, LinearScore, Norm, PeakScore, Point, ScoreFn, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};

fn build(dims: usize, peers: usize, tuples: usize, seed: u64) -> (MidasNetwork, Vec<Tuple>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    let data: Vec<Tuple> = (0..tuples as u64)
        .map(|i| Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>()))
        .collect();
    net.insert_all(data.clone());
    (net, data)
}

fn all_modes(delta: u32) -> Vec<Mode> {
    vec![
        Mode::Fast,
        Mode::Slow,
        Mode::Ripple(1),
        Mode::Ripple(2),
        Mode::Ripple(delta / 2),
        Mode::Broadcast,
    ]
}

fn ids(ts: &[Tuple]) -> Vec<u64> {
    let mut v: Vec<u64> = ts.iter().map(|t| t.id).collect();
    v.sort_unstable();
    v
}

#[test]
fn topk_matches_centralized_in_all_modes() {
    let (net, data) = build(3, 100, 600, 42);
    let mut rng = SmallRng::seed_from_u64(7);
    let score = LinearScore::new(vec![1.0, 0.5, 2.0]);
    let oracle = centralized_topk(&data, &score, 10);
    let oracle_scores: Vec<f64> = oracle.iter().map(|t| score.score(&t.point)).collect();
    for mode in all_modes(net.delta()) {
        for _ in 0..3 {
            let initiator = net.random_peer(&mut rng);
            let (ans, _) = run_topk(&net, initiator, score.clone(), 10, mode);
            let got: Vec<f64> = ans.iter().map(|t| score.score(&t.point)).collect();
            assert_eq!(got.len(), 10, "{mode:?}");
            for (g, o) in got.iter().zip(&oracle_scores) {
                assert!(
                    (g - o).abs() < 1e-12,
                    "{mode:?}: scores {got:?} vs {oracle_scores:?}"
                );
            }
        }
    }
}

#[test]
fn topk_with_unimodal_score() {
    let (net, data) = build(2, 64, 400, 43);
    let mut rng = SmallRng::seed_from_u64(8);
    let score = PeakScore::new(vec![0.3, 0.7], Norm::L2);
    let oracle = centralized_topk(&data, &score, 5);
    for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(2)] {
        let initiator = net.random_peer(&mut rng);
        let (ans, _) = run_topk(&net, initiator, score.clone(), 5, mode);
        assert_eq!(ids(&ans), ids(&oracle), "{mode:?}");
    }
}

#[test]
fn topk_k_larger_than_dataset() {
    let (net, data) = build(2, 16, 8, 44);
    let score = LinearScore::uniform(2);
    let mut rng = SmallRng::seed_from_u64(9);
    let initiator = net.random_peer(&mut rng);
    for mode in [Mode::Fast, Mode::Slow] {
        let (ans, _) = run_topk(&net, initiator, score.clone(), 20, mode);
        assert_eq!(ans.len(), 8, "{mode:?}: every tuple must be returned");
        assert_eq!(ids(&ans), ids(&data));
    }
}

#[test]
fn skyline_matches_centralized_in_all_modes() {
    let (net, data) = build(3, 80, 500, 45);
    let mut rng = SmallRng::seed_from_u64(10);
    let oracle = centralized_skyline(&data);
    assert!(!oracle.is_empty());
    for mode in all_modes(net.delta()) {
        let initiator = net.random_peer(&mut rng);
        let (sky, _) = run_skyline(&net, initiator, mode);
        assert_eq!(ids(&sky), ids(&oracle), "{mode:?}");
    }
}

#[test]
fn skyline_with_border_policy_overlay() {
    let mut rng = SmallRng::seed_from_u64(46);
    let mut net = MidasNetwork::build(2, 64, true, &mut rng);
    let data: Vec<Tuple> = (0..300u64)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]))
        .collect();
    net.insert_all(data.clone());
    let oracle = centralized_skyline(&data);
    for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(3)] {
        let initiator = net.random_peer(&mut rng);
        let (sky, _) = run_skyline(&net, initiator, mode);
        assert_eq!(ids(&sky), ids(&oracle), "{mode:?}");
    }
}

#[test]
fn constrained_skyline_matches_centralized() {
    use ripple_core::skyline::run_skyline_query;
    use ripple_core::SkylineQuery;
    use ripple_geom::{constrained_skyline, Rect};
    let (net, data) = build(2, 64, 500, 46);
    let mut rng = SmallRng::seed_from_u64(99);
    let constraint = Rect::new(vec![0.25, 0.1], vec![0.8, 0.75]);
    let mut oracle = constrained_skyline(&data, &constraint);
    oracle.sort_by_key(|t| t.id);
    assert!(!oracle.is_empty());
    for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(2)] {
        let initiator = net.random_peer(&mut rng);
        let (sky, m) = run_skyline_query(
            &net,
            initiator,
            SkylineQuery::constrained(constraint.clone()),
            mode,
        );
        assert_eq!(ids(&sky), ids(&oracle), "{mode:?}");
        // constraining must not widen the search
        let (_, unconstrained) = run_skyline(&net, initiator, mode);
        assert!(m.peers_visited <= unconstrained.peers_visited, "{mode:?}");
    }
}

#[test]
fn single_tuple_query_matches_centralized() {
    let (net, data) = build(2, 60, 300, 47);
    let mut rng = SmallRng::seed_from_u64(11);
    let div = DiversityQuery::new(vec![0.5, 0.5], 0.5, Norm::L1);
    // a current set of three tuples
    let set = vec![data[0].clone(), data[1].clone(), data[2].clone()];
    let stats = div.stats(&set);
    let oracle = data
        .iter()
        .filter(|t| set.iter().all(|o| o.id != t.id))
        .map(|t| (t.clone(), div.phi_with_stats(&t.point, &set, stats)))
        .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)))
        .unwrap();
    for mode in all_modes(net.delta()) {
        let initiator = net.random_peer(&mut rng);
        let (found, _) = run_single_tuple(&net, initiator, &div, &set, f64::INFINITY, mode);
        let (_t, phi) = found.expect("a best tuple exists");
        assert!(
            (phi - oracle.1).abs() < 1e-12,
            "{mode:?}: φ {phi} vs oracle {}",
            oracle.1
        );
    }
}

#[test]
fn single_tuple_query_respects_threshold() {
    let (net, data) = build(2, 40, 200, 48);
    let mut rng = SmallRng::seed_from_u64(12);
    let div = DiversityQuery::new(vec![0.2, 0.8], 0.7, Norm::L2);
    let set = vec![data[5].clone()];
    let initiator = net.random_peer(&mut rng);
    // with τ = 0 no tuple can strictly improve, so nothing is returned
    let (found, _) = run_single_tuple(&net, initiator, &div, &set, 0.0, Mode::Fast);
    assert!(found.is_none());
}

/// The distributed single-tuple search is *exact*: at every step of the
/// centralized greedy trajectory it finds a tuple attaining the same best
/// insertion score φ. (Identity of the returned tuple is not asserted — φ
/// clamps at 0, so exact ties are common, and any minimizer is a correct
/// answer per Section 6; Section 7.1 fixes the trajectory centrally for
/// exactly this reason.)
#[test]
fn diversify_matches_centralized_greedy() {
    let (net, data) = build(2, 50, 250, 49);
    let mut rng = SmallRng::seed_from_u64(13);
    let div = DiversityQuery::new(vec![0.5, 0.5], 0.5, Norm::L1);
    let trace = greedy_trace(&data, &div, 6, 10);
    assert!(trace.len() >= 6, "trace covers init and improvement steps");
    for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(2)] {
        let initiator = net.random_peer(&mut rng);
        for (i, step) in trace.iter().enumerate() {
            let stats = div.stats(&step.set);
            let oracle = data
                .iter()
                .filter(|t| !step.set.iter().any(|m| m.id == t.id))
                .map(|t| div.phi_with_stats(&t.point, &step.set, stats))
                .filter(|phi| *phi < step.tau)
                .fold(f64::INFINITY, f64::min);
            let (found, _) = run_single_tuple(&net, initiator, &div, &step.set, step.tau, mode);
            match found {
                Some((_, phi)) => {
                    assert!(
                        (phi - oracle).abs() < 1e-12,
                        "{mode:?} step {i}: φ {phi} vs oracle {oracle}"
                    );
                }
                None => assert!(
                    oracle.is_infinite(),
                    "{mode:?} step {i}: found nothing but oracle has φ {oracle}"
                ),
            }
        }
        // End to end, the greedy wrapper still returns a full set of k
        // distinct members whose objective never worsens with iterations.
        let (got, _) = diversify(&net, initiator, &div, 6, mode, Initialize::Greedy, 10);
        assert_eq!(got.len(), 6, "{mode:?}");
        assert_eq!(ids(&got).len(), 6, "{mode:?}: members distinct");
        let (init_only, _) = diversify(&net, initiator, &div, 6, mode, Initialize::Greedy, 0);
        assert!(
            div.objective(&got) <= div.objective(&init_only) + 1e-12,
            "{mode:?}"
        );
    }
}

#[test]
fn diversify_objective_never_worsens_with_iterations() {
    let (net, _) = build(2, 40, 200, 50);
    let mut rng = SmallRng::seed_from_u64(14);
    let div = DiversityQuery::new(vec![0.4, 0.6], 0.5, Norm::L1);
    let initiator = net.random_peer(&mut rng);
    let (init_only, _) = diversify(&net, initiator, &div, 5, Mode::Fast, Initialize::Greedy, 0);
    let (improved, _) = diversify(&net, initiator, &div, 5, Mode::Fast, Initialize::Greedy, 8);
    assert!(div.objective(&improved) <= div.objective(&init_only) + 1e-12);
}

#[test]
fn metrics_are_sane() {
    let (net, _) = build(2, 64, 400, 51);
    let mut rng = SmallRng::seed_from_u64(15);
    let initiator = net.random_peer(&mut rng);
    let score = LinearScore::uniform(2);

    let (_, fast) = run_topk(&net, initiator, score.clone(), 10, Mode::Fast);
    let (_, slow) = run_topk(&net, initiator, score.clone(), 10, Mode::Slow);
    let (_, bcast) = run_topk(&net, initiator, score.clone(), 10, Mode::Broadcast);

    // Fast latency: the Lemma 1 bound (Δ) covers the propagation phase;
    // `run_topk` additionally routes the query to the peer owning the
    // score's peak first (at most Δ more hops), so the end-to-end bound
    // is 2Δ.
    assert!(fast.latency <= 2 * net.delta() as u64);
    // broadcast reaches everybody
    assert_eq!(bcast.peers_visited as usize, net.peer_count());
    // pruned modes never visit more peers than broadcast
    assert!(fast.peers_visited <= bcast.peers_visited);
    assert!(slow.peers_visited <= fast.peers_visited);
    // slow is at least as slow as fast
    assert!(slow.latency >= fast.latency);
    // messages: one query message per visited peer beyond the starting
    // peer, plus the hops of the initial route to the score's peak
    assert!(fast.query_messages >= fast.peers_visited - 1);
}

#[test]
fn ripple_interpolates_between_fast_and_slow() {
    let (net, _) = build(2, 128, 600, 52);
    let mut rng = SmallRng::seed_from_u64(16);
    let initiator = net.random_peer(&mut rng);
    let score = LinearScore::uniform(2);
    let delta = net.delta();

    let latency_of = |mode| {
        let (_, m) = run_topk(&net, initiator, score.clone(), 10, mode);
        m.latency
    };
    let fast = latency_of(Mode::Fast);
    let slow = latency_of(Mode::Slow);
    let r_delta = latency_of(Mode::Ripple(delta));
    assert_eq!(r_delta, slow, "r = Δ degenerates to slow");
    let r0 = latency_of(Mode::Ripple(0));
    assert_eq!(r0, fast, "r = 0 degenerates to fast");
}

#[test]
fn every_initiator_gets_the_same_answer() {
    let (net, data) = build(2, 48, 240, 53);
    let oracle = centralized_skyline(&data);
    for &initiator in net.live_peers().iter().take(12) {
        let (sky, _) = run_skyline(&net, initiator, Mode::Ripple(1));
        assert_eq!(ids(&sky), ids(&oracle), "initiator {initiator}");
    }
}

#[test]
fn queries_survive_churn() {
    let mut rng = SmallRng::seed_from_u64(54);
    let mut net = MidasNetwork::build(2, 64, false, &mut rng);
    let data: Vec<Tuple> = (0..400u64)
        .map(|i| Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]))
        .collect();
    net.insert_all(data.clone());
    // heavy churn
    for _ in 0..80 {
        if rng.gen_bool(0.5) {
            net.join_random(&mut rng);
        } else if net.peer_count() > 2 {
            let v = net.random_peer(&mut rng);
            net.leave(v);
        }
    }
    net.check_invariants();
    let oracle = centralized_skyline(&data);
    let initiator = net.random_peer(&mut rng);
    let (sky, _) = run_skyline(&net, initiator, Mode::Fast);
    assert_eq!(ids(&sky), ids(&oracle));
    let score = LinearScore::uniform(2);
    let top_oracle = centralized_topk(&data, &score, 10);
    let (top, _) = run_topk(&net, initiator, score.clone(), 10, Mode::Slow);
    assert_eq!(ids(&top), ids(&top_oracle));
}

#[test]
fn single_peer_network_answers_locally() {
    let mut net = MidasNetwork::new(2, false);
    let data: Vec<Tuple> = (0..20u64)
        .map(|i| Tuple::new(i, vec![(i as f64) / 20.0, 1.0 - (i as f64) / 20.0]))
        .collect();
    net.insert_all(data.clone());
    let initiator = net.live_peers()[0];
    let (top, m) = run_topk(&net, initiator, LinearScore::uniform(2), 3, Mode::Fast);
    assert_eq!(top.len(), 3);
    assert_eq!(m.latency, 0);
    assert_eq!(m.query_messages, 0);
    let point_query = Point::new(vec![0.5, 0.5]);
    assert!(net.peer(initiator).zone.contains_key(&point_query));
}
