//! Framework-level tests of the three propagation templates, driven on
//! *perfect* overlays so the Lemma 1–3 worst cases can be checked for
//! exact equality (not just as bounds).

use crate::exec::Executor;
use crate::framework::{Mode, Unprioritized};
use crate::latency::{fast_worst_case, ripple_worst_case, slow_worst_case};
use crate::topk::TopKQuery;
use ripple_geom::{LinearScore, Point, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::PeerId;

/// A perfectly balanced MIDAS overlay of `2^depth` peers over a 1-d
/// domain: every leaf at exactly `depth`, every sibling subtree full.
fn perfect_overlay(depth: u32) -> MidasNetwork {
    let n = 1usize << depth;
    let mut net = MidasNetwork::new(1, false);
    // round r splits each of the 2^(r−1) cells once: join at the centre of
    // every cell's upper half, keeping the tree perfectly balanced
    for r in 1..=depth {
        let cells = 1usize << (r - 1);
        let width = 1.0 / cells as f64;
        for c in 0..cells {
            let key = c as f64 * width + 0.75 * width;
            net.join(&Point::new(vec![key]));
        }
    }
    assert_eq!(net.peer_count(), n);
    assert_eq!(net.delta(), depth);
    // perfection: every peer at full depth
    for &p in net.live_peers() {
        assert_eq!(net.peer(p).depth(), depth);
    }
    net
}

/// An unprunable query: top-k with k far beyond the (empty) data, so every
/// link stays relevant and the propagation covers the whole network —
/// exactly the worst case of the Lemmas.
fn unprunable() -> Unprioritized<TopKQuery<LinearScore>> {
    Unprioritized(TopKQuery::new(LinearScore::uniform(1), usize::MAX / 2))
}

#[test]
fn fast_latency_equals_lemma_1_exactly() {
    for depth in [3u32, 4, 5, 6] {
        let net = perfect_overlay(depth);
        let q = unprunable();
        let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Fast);
        assert_eq!(
            out.metrics.latency,
            fast_worst_case(depth, 0),
            "Δ = {depth}"
        );
        assert_eq!(out.metrics.peers_visited as usize, 1 << depth);
    }
}

#[test]
fn slow_latency_equals_lemma_2_exactly() {
    for depth in [3u32, 4, 5] {
        let net = perfect_overlay(depth);
        let q = unprunable();
        let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Slow);
        assert_eq!(
            out.metrics.latency,
            slow_worst_case(depth, 0),
            "Δ = {depth}"
        );
        assert_eq!(out.metrics.peers_visited as usize, 1 << depth);
    }
}

#[test]
fn ripple_latency_equals_lemma_3_exactly() {
    for depth in [3u32, 4, 5] {
        let net = perfect_overlay(depth);
        for r in 1..=depth {
            let q = unprunable();
            let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Ripple(r));
            assert_eq!(
                out.metrics.latency,
                ripple_worst_case(depth, 0, r),
                "Δ = {depth}, r = {r}"
            );
            assert_eq!(out.metrics.peers_visited as usize, 1 << depth);
        }
    }
}

#[test]
fn every_mode_visits_each_peer_exactly_once() {
    // the restriction areas must make re-visits impossible even when
    // nothing is pruned; the executor debug-asserts this internally, and
    // the visit count proves it in release builds too
    let net = perfect_overlay(5);
    for mode in [
        Mode::Fast,
        Mode::Slow,
        Mode::Ripple(2),
        Mode::Ripple(4),
        Mode::Broadcast,
    ] {
        let q = unprunable();
        let out = Executor::new(&net).run(net.live_peers()[7], &q, mode);
        assert_eq!(
            out.metrics.peers_visited as usize,
            net.peer_count(),
            "{mode:?}"
        );
    }
}

#[test]
fn message_accounting_is_exact_on_perfect_overlays() {
    let depth = 4u32;
    let n = 1usize << depth;
    let net = perfect_overlay(depth);
    let q = unprunable();

    // fast: one query message per non-initiator peer, one answer each,
    // no state responses
    let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Fast);
    assert_eq!(out.metrics.query_messages as usize, n - 1);
    assert_eq!(out.metrics.response_messages as usize, n, "answers only");

    // slow: additionally one state response per non-initiator peer
    let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Slow);
    assert_eq!(out.metrics.query_messages as usize, n - 1);
    assert_eq!(
        out.metrics.response_messages as usize,
        n + (n - 1),
        "answers + state responses"
    );
}

#[test]
fn ripple_extremes_equal_fast_and_slow() {
    let net = perfect_overlay(4);
    let initiator = net.live_peers()[3];
    let run = |mode| {
        let q = unprunable();
        let out = Executor::new(&net).run(initiator, &q, mode);
        (out.metrics.latency, out.metrics.total_messages())
    };
    assert_eq!(run(Mode::Ripple(0)), run(Mode::Fast));
    assert_eq!(run(Mode::Ripple(4)), run(Mode::Slow));
    assert_eq!(run(Mode::Ripple(99)), run(Mode::Slow));
}

/// A two-peer overlay exercises the degenerate edges of all templates.
#[test]
fn two_peer_overlay_edges() {
    let mut net = MidasNetwork::new(1, false);
    net.join(&Point::new(vec![0.75]));
    net.insert_tuple(Tuple::new(1, vec![0.1]));
    net.insert_tuple(Tuple::new(2, vec![0.9]));
    let q = TopKQuery::new(LinearScore::uniform(1), 1);
    for (mode, want_latency) in [(Mode::Fast, 1), (Mode::Slow, 1)] {
        let out = Executor::new(&net).run(net.live_peers()[0], &q, mode);
        assert_eq!(out.metrics.latency, want_latency, "{mode:?}");
        assert_eq!(out.metrics.peers_visited, 2);
        // the single best tuple is id 2 (higher coordinate wins)
        assert!(out.answers.iter().any(|t| t.id == 2));
    }
}

/// The initiator's position must not change the answer, only the cost.
#[test]
fn initiator_independence_on_perfect_overlay() {
    let mut net = perfect_overlay(4);
    for i in 0..32u64 {
        net.insert_tuple(Tuple::new(i, vec![(i as f64 + 0.5) / 32.0]));
    }
    let q = TopKQuery::new(LinearScore::uniform(1), 3);
    let reference: Vec<u64> = {
        let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Slow);
        let mut ids: Vec<u64> = out.answers.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids
    };
    for &p in net.live_peers().iter().skip(1).take(6) {
        let out = Executor::new(&net).run(p, &q, Mode::Slow);
        let mut ids: Vec<u64> = out.answers.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        // answers may contain extra candidates; the top-3 must agree
        assert!(
            reference.iter().all(|r| ids.contains(r)),
            "initiator {p} lost {reference:?} (got {ids:?})"
        );
    }
}

/// `PeerId`s reported by the ledger refer to real processing events.
#[test]
fn broadcast_message_shape() {
    let net = perfect_overlay(3);
    let q = unprunable();
    let out = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Broadcast);
    // broadcast = fast without pruning; on an unprunable query they match
    let out_fast = Executor::new(&net).run(net.live_peers()[0], &q, Mode::Fast);
    assert_eq!(out.metrics.latency, out_fast.metrics.latency);
    assert_eq!(out.metrics.query_messages, out_fast.metrics.query_messages);
}

/// The executor only needs `RippleOverlay`; a PeerId picked from the live
/// list is always a valid initiator.
#[test]
fn arbitrary_initiators_work() {
    let net = perfect_overlay(4);
    let q = unprunable();
    for idx in [0usize, 5, 15] {
        let p: PeerId = net.live_peers()[idx];
        let out = Executor::new(&net).run(p, &q, Mode::Ripple(2));
        assert_eq!(out.metrics.peers_visited as usize, net.peer_count());
    }
}

/// `RankQuery` object usage: the trait remains usable through the wrapper
/// without changing results (pruning semantics preserved).
#[test]
fn unprioritized_wrapper_preserves_answers() {
    let mut net = perfect_overlay(4);
    for i in 0..64u64 {
        net.insert_tuple(Tuple::new(i, vec![((i * 37) % 64) as f64 / 64.0]));
    }
    let plain = TopKQuery::new(LinearScore::uniform(1), 5);
    let wrapped = Unprioritized(TopKQuery::new(LinearScore::uniform(1), 5));
    let a = Executor::new(&net).run(net.live_peers()[0], &plain, Mode::Slow);
    let b = Executor::new(&net).run(net.live_peers()[0], &wrapped, Mode::Slow);
    let ids = |answers: &[Tuple]| {
        let mut v: Vec<u64> = answers.iter().map(|t| t.id).collect();
        v.sort_unstable();
        v
    };
    // both contain the true top-5; the wrapper may fetch more candidates
    let top5: Vec<u64> = {
        let mut scored: Vec<&Tuple> = a.answers.iter().collect();
        scored.sort_by(|x, y| y.point.coord(0).total_cmp(&x.point.coord(0)));
        let mut v: Vec<u64> = scored.iter().take(5).map(|t| t.id).collect();
        v.sort_unstable();
        v
    };
    assert!(top5.iter().all(|t| ids(&b.answers).contains(t)));
    assert!(top5.iter().all(|t| ids(&a.answers).contains(t)));
}
