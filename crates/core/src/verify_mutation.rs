//! Mutation tests for the certificate checker: each test models one
//! *corrupted executor* — an engine with a specific, realistic bug — by
//! applying the corruption the bug would have produced to an honest run's
//! `(answer, certificate)` pair, and pins the exact [`VerifyError`] the
//! independent checker raises. Every mutation is first shown to verify
//! cleanly *before* corruption, so no test can pass vacuously.
//!
//! The modelled fault planes:
//!
//! * an executor that silently **drops a sub-region** (forgets to forward
//!   to one link) → the tiling has a hole → [`VerifyError::TilingGap`];
//! * an executor that **duplicates an answer tuple** (double-delivery on a
//!   retried edge) → [`VerifyError::DuplicateAnswer`];
//! * an executor serving from a **stale snapshot** (the overlay mutated
//!   after the run) → [`VerifyError::GenerationMismatch`];
//! * an executor that prunes with a **stale threshold** (a τ from a
//!   generation whose k-th score was higher) → the pruned region's honest
//!   `f⁺` no longer falls below the final τ →
//!   [`VerifyError::BoundNotBelowThreshold`];
//! * a **wrong-arc failover** (a replica read adopted for a different
//!   region than the one that died) → the adopted volume disagrees with
//!   the dead zone → [`VerifyError::TilingGap`];
//! * an engine **lying about a bound** it never evaluated →
//!   [`VerifyError::WitnessMismatch`];
//! * a **fabricated skyline dominator** no delivered member justifies →
//!   [`VerifyError::WitnessUnsupported`];
//! * an executor that **hides abandoned volume** from the coverage report
//!   → [`VerifyError::CoverageMismatch`] (and a tiling hole).
//!
//! The second half of the file moves from post-hoc mutation to **in-flight
//! corruption**: the [`CorruptionPlane`] forges responses on the wire while
//! the query runs, and each test contrasts the unaudited executor (which
//! demonstrably admits the poison, or emits a certificate the offline
//! checker rejects) with the audited one (which discards the taint,
//! re-answers from replicas, quarantines the liar, and still produces the
//! honest answer with a verifying certificate).

use crate::exec::Executor;
use crate::framework::Mode;
use crate::skyline::{run_skyline_certified, SkylineQuery};
use crate::topk::run_topk_certified;
use ripple_geom::{LinearScore, Point, Rect, ScoreFn, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::{CorruptionMode, CorruptionPlane, FaultPlane};
use ripple_verify::{
    verify_coverage, verify_skyline, verify_tiling, verify_topk, CertRegion, Certificate,
    PruneWitness, VerifyError,
};

fn loaded_net(seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(2, 48, false, &mut rng);
    for i in 0..600u64 {
        net.insert_tuple(Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]));
    }
    (net, rng)
}

/// An honest top-k run whose certificate contains at least one pruned tile
/// (the mutations below need prunes to corrupt).
fn honest_topk(
    net: &MidasNetwork,
    rng: &mut SmallRng,
) -> (Vec<Tuple>, Certificate, LinearScore, usize) {
    let score = LinearScore::uniform(2);
    let k = 10;
    let initiator = net.random_peer(rng);
    let (answers, _, _, cert) =
        run_topk_certified(&Executor::new(net), initiator, score.clone(), k, Mode::Slow);
    let cert = cert.expect("certificates are on by default");
    assert!(
        cert.regions
            .iter()
            .any(|r| matches!(r, CertRegion::Pruned { .. })),
        "slow-mode top-k over a loaded overlay must prune something"
    );
    verify_topk(&cert, &answers, &score, k, net.epoch()).expect("the honest run must verify");
    (answers, cert, score, k)
}

#[test]
fn dropped_subregion_is_caught() {
    let (net, mut rng) = loaded_net(71);
    let (answers, mut cert, score, k) = honest_topk(&net, &mut rng);
    // The corrupted executor forgets one peer's zone: its Scanned tile
    // never reaches the certificate and its answers never reach the
    // initiator. The remaining tiles no longer cover the domain.
    let dropped = cert
        .regions
        .iter()
        .position(|r| matches!(r, CertRegion::Scanned { volume, .. } if *volume > 1e-6))
        .expect("some peer owns visible volume");
    cert.regions.remove(dropped);
    assert!(matches!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::TilingGap { .. })
    ));
}

#[test]
fn duplicated_answer_tuple_is_caught() {
    let (net, mut rng) = loaded_net(72);
    let (mut answers, cert, score, k) = honest_topk(&net, &mut rng);
    // A retried edge double-delivers: the same tuple arrives twice and the
    // corrupted initiator forgets to dedup.
    answers.truncate(k - 1);
    let dup = answers[0].clone();
    answers.insert(1, dup.clone());
    assert_eq!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::DuplicateAnswer { id: dup.id })
    );
}

#[test]
fn stale_snapshot_is_caught() {
    let (mut net, mut rng) = loaded_net(73);
    let (answers, cert, score, k) = honest_topk(&net, &mut rng);
    let issued_at = net.epoch();
    // The overlay mutates after the run: a reader checking against the
    // current snapshot must reject the old certificate...
    net.insert_tuple(Tuple::new(9_999, vec![0.99, 0.99]));
    assert!(net.epoch() > issued_at, "every mutation bumps the epoch");
    assert_eq!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::GenerationMismatch {
            expected: net.epoch(),
            found: issued_at,
        })
    );
    // ...while a reader pinned to the issuing snapshot still accepts it.
    verify_topk(&cert, &answers, &score, k, issued_at).unwrap();
}

#[test]
fn stale_tau_prune_is_caught() {
    let (net, mut rng) = loaded_net(74);
    let (answers, mut cert, score, k) = honest_topk(&net, &mut rng);
    // A corrupted executor prunes a peak-adjacent region using a τ from a
    // stale generation in which the k-th score was higher. The witness is
    // honest about the region's f⁺ (it recomputes exactly), but that bound
    // does not fall below the final τ — the region could have held a
    // better answer.
    let hot = vec![Rect::new(vec![0.9, 0.9], vec![1.0, 1.0])];
    let bound = hot
        .iter()
        .map(|r| score.upper_bound(r))
        .fold(f64::NEG_INFINITY, f64::max);
    let tau = score.score(&answers[k - 1].point);
    assert!(bound >= tau, "the peak corner beats any attainable τ");
    let target = cert
        .regions
        .iter()
        .position(|r| matches!(r, CertRegion::Pruned { .. }))
        .unwrap();
    let CertRegion::Pruned { volume, .. } = cert.regions[target] else {
        unreachable!()
    };
    // Claimed volume unchanged, so the tiling still balances: only the
    // bound check can catch this corruption.
    cert.regions[target] = CertRegion::Pruned {
        rects: hot,
        volume,
        witness: PruneWitness::ScoreBound { bound },
    };
    assert!(matches!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::BoundNotBelowThreshold { .. })
    ));
}

#[test]
fn wrong_arc_failover_is_caught() {
    // An overlay with replicas and real crash failover, so the honest
    // certificate carries Replica tiles.
    let (mut net, mut rng) = loaded_net(75);
    net.enable_replication(2);
    for _ in 0..6 {
        let victim = net.random_peer(&mut rng);
        net.crash(victim);
        net.refresh_replicas();
    }
    net.check_invariants();
    let score = LinearScore::uniform(2);
    let k = 10;
    let plane = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    };
    let initiator = net.random_peer(&mut rng);
    let exec = Executor::with_faults(&net, plane, 11);
    let (answers, _, _, cert) =
        run_topk_certified(&exec, initiator, score.clone(), k, Mode::Broadcast);
    let mut cert = cert.unwrap();
    let target = cert
        .regions
        .iter()
        .position(|r| matches!(r, CertRegion::Replica { .. }))
        .expect("broadcast over a crashed replicated overlay must fail over");
    verify_topk(&cert, &answers, &score, k, net.epoch()).expect("the honest failover verifies");
    // The corrupted failover adopts the wrong arc: the region it claims to
    // have recovered is not the zone that died, so the adopted volume
    // disagrees with the hole the dead peer left.
    let CertRegion::Replica { owner, volume } = cert.regions[target] else {
        unreachable!()
    };
    cert.regions[target] = CertRegion::Replica {
        owner,
        volume: volume * 0.5,
    };
    assert!(matches!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::TilingGap { .. })
    ));
}

#[test]
fn lying_bound_witness_is_caught() {
    let (net, mut rng) = loaded_net(76);
    let (answers, mut cert, score, k) = honest_topk(&net, &mut rng);
    // The engine reports a bound it never evaluated: the checker recomputes
    // f⁺ from the region geometry and the claim does not match.
    let target = cert
        .regions
        .iter()
        .position(|r| matches!(r, CertRegion::Pruned { .. }))
        .unwrap();
    let CertRegion::Pruned {
        ref rects,
        volume,
        witness: PruneWitness::ScoreBound { bound },
    } = cert.regions[target]
    else {
        panic!("top-k prunes carry score bounds");
    };
    cert.regions[target] = CertRegion::Pruned {
        rects: rects.clone(),
        volume,
        witness: PruneWitness::ScoreBound {
            bound: bound - 0.125,
        },
    };
    assert!(matches!(
        verify_topk(&cert, &answers, &score, k, net.epoch()),
        Err(VerifyError::WitnessMismatch { .. })
    ));
}

#[test]
fn fabricated_skyline_dominator_is_caught() {
    let (net, mut rng) = loaded_net(77);
    let initiator = net.random_peer(&mut rng);
    let (sky, _, _, cert) = run_skyline_certified(
        &Executor::new(&net),
        initiator,
        SkylineQuery::new(),
        Mode::Slow,
    );
    let mut cert = cert.unwrap();
    let target = cert
        .regions
        .iter()
        .position(|r| {
            matches!(
                r,
                CertRegion::Pruned {
                    witness: PruneWitness::Dominator { .. },
                    ..
                }
            )
        })
        .expect("skyline over a loaded overlay must prune by domination");
    verify_skyline(&cert, &sky, None, net.epoch()).expect("the honest run must verify");
    // The engine invents a dominator no delivered tuple supports. The
    // near-origin point dominates the region, so the geometric test passes
    // — only the answer-support test can expose the fabrication.
    let CertRegion::Pruned {
        ref rects, volume, ..
    } = cert.regions[target]
    else {
        unreachable!()
    };
    let fake = Point::new(vec![1e-9, 1e-9]);
    assert!(!sky.iter().any(|m| m.point == fake));
    cert.regions[target] = CertRegion::Pruned {
        rects: rects.clone(),
        volume,
        witness: PruneWitness::Dominator { point: fake },
    };
    assert_eq!(
        verify_skyline(&cert, &sky, None, net.epoch()),
        Err(VerifyError::WitnessUnsupported)
    );
}

#[test]
fn hidden_abandoned_volume_is_caught() {
    // A crashed, unreplicated overlay: the honest run abandons the orphan
    // volume and declares it, in the coverage report and the certificate.
    let (mut net, mut rng) = loaded_net(78);
    for _ in 0..5 {
        let victim = net.random_peer(&mut rng);
        net.crash(victim);
    }
    net.check_invariants();
    let score = LinearScore::uniform(2);
    let plane = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    };
    let initiator = net.random_peer(&mut rng);
    let exec = Executor::with_faults(&net, plane, 13);
    let (answers, _, cov, cert) =
        run_topk_certified(&exec, initiator, score.clone(), 10, Mode::Broadcast);
    let mut cert = cert.unwrap();
    assert!(
        !cov.is_complete(),
        "crashes without replicas must lose volume"
    );
    verify_topk(&cert, &answers, &score, 10, net.epoch()).unwrap();
    verify_coverage(&cert, cov.answered_fraction, &cov.unreachable).unwrap();
    // The corrupted executor drops the loss from both reports, presenting
    // a degraded answer as complete. The unreachable tiles no longer match
    // the coverage claim, and the tiling has a hole where the zone died.
    let target = cert
        .regions
        .iter()
        .position(|r| matches!(r, CertRegion::Unreachable { .. }))
        .unwrap();
    cert.regions.remove(target);
    assert!(matches!(
        verify_coverage(&cert, 1.0, &[]),
        Err(VerifyError::CoverageMismatch { .. })
    ));
    assert!(matches!(
        verify_tiling(&cert, cert.default_tolerance()),
        Err(VerifyError::TilingGap { .. })
    ));
}

// ---- in-flight corruption: the CorruptionPlane forges on the wire ----

/// A replicated, fully-live overlay: the audited arms below re-answer every
/// tainted zone from a fresh replica, so recall stays perfect even at 100%
/// corruption.
fn replicated_net(seed: u64) -> (MidasNetwork, SmallRng) {
    let (mut net, rng) = loaded_net(seed);
    net.enable_replication(1);
    net.refresh_replicas();
    net.check_invariants();
    (net, rng)
}

fn ids(answers: &[Tuple]) -> Vec<u64> {
    answers.iter().map(|t| t.id).collect()
}

/// Runs the three arms of one in-flight corruption experiment — honest,
/// corrupted-unaudited, corrupted-audited, in that order (the audited arm
/// goes last because its flush populates the quarantine registry) — and
/// asserts the audited arm's universal guarantees: honest answer, failed
/// audits on the ledger, complete coverage, verifying certificate,
/// populated quarantine. Returns the honest and unaudited answers for the
/// per-mode poisoning asserts.
fn corruption_arms(
    net: &MidasNetwork,
    rng: &mut SmallRng,
    plane: CorruptionPlane,
    k: usize,
    mode: Mode,
) -> (Vec<Tuple>, Vec<Tuple>, ripple_net::QueryMetrics) {
    let score = LinearScore::uniform(2);
    let initiator = net.random_peer(rng);
    let (honest, ..) = run_topk_certified(&Executor::new(net), initiator, score.clone(), k, mode);

    let ablation = Executor::new(net).with_corruption(plane).without_audit();
    let (poisoned, pm, _, _) = run_topk_certified(&ablation, initiator, score.clone(), k, mode);
    assert_eq!(pm.audits_run, 0, "the ablation arm must not audit");
    assert_eq!(net.quarantine().len(), 0, "nor quarantine anyone");

    let audited = Executor::new(net).with_corruption(plane);
    let (clean, m, cov, cert) = run_topk_certified(&audited, initiator, score.clone(), k, mode);
    assert_eq!(
        ids(&clean),
        ids(&honest),
        "audit + replica re-query must restore the honest answer"
    );
    assert!(m.audits_run > 0, "remote deposits must be audited");
    assert!(m.audits_failed > 0, "100% corruption must fail audits");
    assert!(
        cov.is_complete(),
        "every tainted zone has a live replica: coverage stays complete"
    );
    verify_topk(&cert.expect("certs on"), &clean, &score, k, net.epoch())
        .expect("the audited certificate must verify");
    assert!(
        net.quarantine().quarantined() > 0,
        "tainted peers must be quarantined at flush"
    );
    (honest, poisoned, m)
}

#[test]
fn in_flight_fabrication_poisons_unaudited_and_is_audited_out() {
    let (net, mut rng) = replicated_net(81);
    let plane = CorruptionPlane::only(CorruptionMode::Fabricate, 1.0, 21);
    let (_, poisoned, m) = corruption_arms(&net, &mut rng, plane, 10, Mode::Broadcast);
    // The forgery sits at the hi corner of the forger's restriction area:
    // the best corner beats every real tuple under a monotone score, so the
    // unaudited merge must rank at least one fabricated id into the top-k.
    assert!(
        poisoned.iter().any(|t| t.id >= 600),
        "the unaudited executor must admit a fabricated tuple: {:?}",
        ids(&poisoned)
    );
    // The audit catches the forgery as a tuple the responder's
    // authoritative store does not contain.
    assert!(m.tainted_tuples_discarded > 0);
}

#[test]
fn in_flight_score_flip_corrupts_unaudited_and_is_audited_out() {
    let (net, mut rng) = replicated_net(82);
    let plane = CorruptionPlane::only(CorruptionMode::ScoreFlip, 1.0, 22);
    let (honest, poisoned, _) = corruption_arms(&net, &mut rng, plane, 10, Mode::Broadcast);
    // The flip drives each deposit's best tuple negative: the true winners
    // vanish from the unaudited merge and the tail is promoted.
    assert_ne!(
        ids(&poisoned),
        ids(&honest),
        "the unaudited answer must lose flipped winners"
    );
}

#[test]
fn in_flight_truncation_is_caught_by_the_declared_length() {
    let (net, mut rng) = replicated_net(83);
    let plane = CorruptionPlane::only(CorruptionMode::Truncate, 1.0, 23);
    // k = 1: every remote deposit carries exactly its local best, so the
    // truncation empties it and the unaudited answer degrades to whatever
    // the initiator holds locally.
    let (honest, poisoned, _) = corruption_arms(&net, &mut rng, plane, 1, Mode::Broadcast);
    assert_ne!(
        ids(&poisoned),
        ids(&honest),
        "truncated deposits must cost the unaudited run its top-1"
    );
}

#[test]
fn in_flight_stale_generation_replay_is_pinned_out() {
    let (net, mut rng) = replicated_net(84);
    let plane = CorruptionPlane::only(CorruptionMode::StaleGeneration, 1.0, 24);
    let (honest, poisoned, _) = corruption_arms(&net, &mut rng, plane, 10, Mode::Broadcast);
    // The replayed payload is byte-identical to the honest one — replay
    // only poisons once the data changes underneath it — so the unaudited
    // answer happens to be right. The audited arm still rejects and
    // quarantines: the generation pin is what makes the next mutation safe.
    assert_eq!(ids(&poisoned), ids(&honest));
}

#[test]
fn in_flight_lying_witness_fails_cert_unaudited_and_is_recomputed_audited() {
    let (net, mut rng) = replicated_net(85);
    let score = LinearScore::uniform(2);
    let k = 10;
    let initiator = net.random_peer(&mut rng);
    let plane = CorruptionPlane::only(CorruptionMode::LyingWitness, 1.0, 25);
    let (honest, ..) = run_topk_certified(
        &Executor::new(&net),
        initiator,
        score.clone(),
        k,
        Mode::Slow,
    );

    // Witness corruption never touches answers — only the certificate.
    let ablation = Executor::new(&net).with_corruption(plane).without_audit();
    let (answers, _, _, cert) =
        run_topk_certified(&ablation, initiator, score.clone(), k, Mode::Slow);
    let cert = cert.expect("certs on");
    assert_eq!(ids(&answers), ids(&honest));
    assert!(
        cert.regions
            .iter()
            .any(|r| matches!(r, CertRegion::Pruned { .. })),
        "slow mode must prune (and therefore lie) somewhere"
    );
    assert!(
        matches!(
            verify_topk(&cert, &answers, &score, k, net.epoch()),
            Err(VerifyError::WitnessMismatch { .. })
        ),
        "the offline checker must reject the forged bound"
    );

    // The online audit recomputes each claimed bound before it enters the
    // certificate: the audited cert carries honest witnesses and verifies.
    let audited = Executor::new(&net).with_corruption(plane);
    let (answers, m, _, cert) =
        run_topk_certified(&audited, initiator, score.clone(), k, Mode::Slow);
    assert_eq!(ids(&answers), ids(&honest));
    assert!(m.audits_failed > 0, "every witness lie must be caught");
    verify_topk(&cert.expect("certs on"), &answers, &score, k, net.epoch())
        .expect("the audited certificate must verify");
    assert!(net.quarantine().quarantined() > 0, "liars are quarantined");
}
