//! Property tests for the fault plane.
//!
//! Two families of guarantees are enforced here (the Chord-side twins live
//! in `ripple-chord`'s `tests/fault.rs`):
//!
//! 1. **No-fault observational identity.** An executor driven by
//!    [`FaultPlane::none`] must be indistinguishable — equal answers, equal
//!    coverage, and *bit-identical* cost ledgers including the per-peer
//!    visit sequence — from the historical fault-unaware executor, for every
//!    propagation mode and every query type. The fault plane is a strict
//!    superset of the old behaviour, not a parallel code path.
//!
//! 2. **Graceful, honest degradation.** On an overlay damaged by ungraceful
//!    crashes, queries never panic and never silently drop data: every
//!    surviving tuple is still found (answers equal the centralized oracle
//!    over the survivors), the abandoned orphan volume is reported in
//!    [`Coverage`], restriction areas stay intact (`duplicate_visits == 0`),
//!    and running the repair protocol restores complete coverage.
//!
//! [`Coverage`]: crate::framework::Coverage

use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::{centralized_skyline, run_skyline_query_with, SkylineQuery};
use crate::topk::TopKQuery;
use crate::topk::{centralized_topk, run_topk_with};
use ripple_geom::{LinearScore, Norm, PeakScore, Rect, ScoreFn, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn random_tuple(id: u64, dims: usize, rng: &mut SmallRng) -> Tuple {
    Tuple::new(id, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>())
}

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = random_tuple(i, dims, &mut rng);
        net.insert_tuple(t);
    }
    (net, rng)
}

/// All tuples still stored at live peers.
fn survivors(net: &MidasNetwork) -> Vec<Tuple> {
    net.live_peers()
        .iter()
        .flat_map(|&p| net.peer(p).store.tuples().to_vec())
        .collect()
}

fn ids(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.id).collect()
}

/// A plane that is *active* (so dead targets are detected, timed out and
/// failed over) but injects no drops and no slowness: it isolates the
/// crash-handling machinery.
fn crash_aware() -> FaultPlane {
    FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    }
}

/// Runs `query` through the plain and the `FaultPlane::none` executor in
/// every mode and asserts observational identity.
fn assert_none_identical<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
where
    Q: RankQuery<Rect>,
{
    for mode in MODES {
        let initiator = net.random_peer(rng);
        let plain = Executor::new(net).run(initiator, query, mode);
        let none = Executor::with_faults(net, FaultPlane::none(), 7).run(initiator, query, mode);
        assert_eq!(
            plain.metrics, none.metrics,
            "{label} [{mode:?}]: a FaultPlane::none executor must produce a \
             bit-identical ledger (including the visit sequence)"
        );
        assert_eq!(
            plain.answers, none.answers,
            "{label} [{mode:?}]: answers must be identical"
        );
        assert!(none.coverage.is_complete(), "{label} [{mode:?}]");
        assert_eq!(none.coverage.answered_fraction, 1.0, "{label} [{mode:?}]");
        assert_eq!(none.metrics.duplicate_visits, 0, "{label} [{mode:?}]");
    }
}

#[test]
fn none_plane_is_observationally_identical() {
    for (dims, peers, tuples, seed) in [(2usize, 48usize, 600u64, 41u64), (3, 32, 400, 42)] {
        let (net, mut rng) = loaded_net(dims, peers, tuples, seed);
        for k in [1usize, 5, 64] {
            let q = TopKQuery::new(LinearScore::uniform(dims), k);
            assert_none_identical(&net, &q, &mut rng, &format!("topk-linear k={k}"));
            let peak: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
            let q = TopKQuery::new(PeakScore::new(peak, Norm::L2), k);
            assert_none_identical(&net, &q, &mut rng, &format!("topk-peak k={k}"));
        }
        assert_none_identical(&net, &SkylineQuery::new(), &mut rng, "skyline");
        let c = Rect::new(vec![0.2; dims], vec![0.9; dims]);
        assert_none_identical(
            &net,
            &SkylineQuery::constrained(c),
            &mut rng,
            "skyline-constrained",
        );
    }
}

#[test]
fn trace_off_preserves_every_counter() {
    let (net, mut rng) = loaded_net(2, 40, 500, 43);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let traced = Executor::new(&net).run(initiator, &q, mode);
        let lean = Executor::new(&net).without_trace().run(initiator, &q, mode);
        assert!(!traced.metrics.visited.is_empty());
        assert!(
            lean.metrics.visited.is_empty(),
            "trace must not be retained"
        );
        let mut expect = traced.metrics.clone();
        expect.visited.clear();
        expect.trace_off = true;
        assert_eq!(
            expect, lean.metrics,
            "[{mode:?}] every counter must survive trace-off unchanged"
        );
        assert_eq!(traced.answers, lean.answers);
    }
}

#[test]
fn crashed_overlay_degrades_gracefully_and_repair_restores() {
    let (mut net, mut rng) = loaded_net(2, 48, 600, 44);
    let score = LinearScore::uniform(2);
    for round in 0..3u64 {
        // A crash wave: ungraceful departures, zones orphaned, data lost.
        for _ in 0..5 {
            if net.peer_count() > 1 {
                let victim = net.random_peer(&mut rng);
                net.crash(victim);
            }
        }
        net.check_invariants();
        let alive = survivors(&net);
        let orphan_vol: f64 = net.orphan_regions().iter().map(Rect::volume).sum();
        assert!(orphan_vol > 0.0, "crashes must orphan volume");

        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::with_faults(&net, crash_aware(), round);
            let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 10, mode);
            // Never silently wrong: every surviving tuple is still ranked.
            assert_eq!(
                ids(&got),
                ids(&centralized_topk(&alive, &score, 10)),
                "[{mode:?}] top-k over the damaged overlay must equal the \
                 oracle over the surviving tuples"
            );
            assert_eq!(metrics.duplicate_visits, 0, "[{mode:?}]");
            // Coverage is honest: at most the orphaned volume is missing
            // (pruned subtrees are answered by proof, not abandoned), and
            // under Broadcast — no pruning — the loss is exactly it.
            assert!(
                cov.answered_fraction >= 1.0 - orphan_vol - 1e-9,
                "[{mode:?}] answered {} with orphan volume {orphan_vol}",
                cov.answered_fraction
            );
            if mode == Mode::Broadcast {
                assert!(
                    (cov.answered_fraction - (1.0 - orphan_vol)).abs() < 1e-9,
                    "broadcast coverage must report exactly the orphan volume: \
                     {} vs {}",
                    cov.answered_fraction,
                    1.0 - orphan_vol
                );
                assert!(!cov.is_complete());
                assert!(metrics.timeouts > 0, "dead targets must trip timeouts");
            }
            let exec = Executor::with_faults(&net, crash_aware(), round);
            let (sky, _, scov) =
                run_skyline_query_with(&exec, initiator, SkylineQuery::new(), mode);
            assert_eq!(sky, centralized_skyline(&alive), "[{mode:?}] skyline");
            assert!(scov.answered_fraction >= 1.0 - orphan_vol - 1e-9);
        }

        // Repair reclaims the orphans; coverage is complete again and the
        // fault-free executor agrees with the oracle.
        net.repair_all();
        net.check_invariants();
        assert!(net.orphan_regions().is_empty());
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware(), round);
        let (got, _, cov) = run_topk_with(&exec, initiator, score.clone(), 10, Mode::Slow);
        assert!(cov.is_complete(), "repair must restore full coverage");
        assert_eq!(
            ids(&got),
            ids(&centralized_topk(&survivors(&net), &score, 10))
        );
    }
}

#[test]
fn faulty_runs_are_deterministic_and_recover_through_retries() {
    let (net, mut rng) = loaded_net(2, 48, 600, 45);
    let score = LinearScore::uniform(2);
    let plane = FaultPlane::drops(0.1, 99);
    for (stream, mode) in MODES.into_iter().enumerate() {
        let initiator = net.random_peer(&mut rng);
        let run = |s: u64| {
            Executor::with_faults(&net, plane, s).run(
                initiator,
                &TopKQuery::new(score.clone(), 10),
                mode,
            )
        };
        let a = run(stream as u64);
        let b = run(stream as u64);
        assert_eq!(a.metrics, b.metrics, "[{mode:?}] replay must be exact");
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.metrics.duplicate_visits, 0);
        // Complete coverage under drops means the answer is *exact*, not
        // merely close: retries and failover fully masked the faults.
        if a.coverage.is_complete() {
            let mut answers = a.answers;
            answers.sort_by(|x, y| {
                score
                    .score(&y.point)
                    .total_cmp(&score.score(&x.point))
                    .then_with(|| x.id.cmp(&y.id))
            });
            answers.truncate(10);
            assert_eq!(
                ids(&answers),
                ids(&centralized_topk(&survivors(&net), &score, 10)),
                "[{mode:?}] complete coverage must imply an exact answer"
            );
        }
    }
    // At p = 0.1 over a broadcast's many messages, drops certainly occurred
    // and the retry counters must have registered them.
    let initiator = net.random_peer(&mut rng);
    let out = Executor::with_faults(&net, plane, 1234).run(
        initiator,
        &TopKQuery::new(score.clone(), 10),
        Mode::Broadcast,
    );
    assert!(out.metrics.messages_dropped > 0);
    assert!(out.metrics.retries > 0);
    assert!(out.metrics.timeouts >= out.metrics.retries);
    assert!(out.metrics.latency > 0);
}

/// Property: the retry budget is *monotone*. Because drop verdicts are keyed
/// by `(sender, target, attempt)` — not drawn from a shared stream — raising
/// `max_retries` can only extend each edge's attempt sequence: every edge
/// that delivered within budget `m` delivers verbatim within budget `m + 1`.
/// The executor inherits the monotonicity: across a ladder of budgets the
/// answered fraction never shrinks and a large-enough budget recovers exact
/// answers.
#[test]
fn retry_budgets_are_monotone() {
    // 1. The session-level subset property, over a grid of edges.
    for seed in [7u64, 19, 23] {
        let plane = FaultPlane {
            drop_probability: 0.4,
            timeout_hops: 2,
            max_retries: 0,
            seed,
            ..FaultPlane::none()
        };
        let session = plane.session(1);
        let delivers_within = |s: u64, t: u64, budget: u32| -> bool {
            (0..=budget).any(|a| {
                !session.drops_message(
                    ripple_net::PeerId::new(s as u32),
                    ripple_net::PeerId::new(t as u32),
                    a,
                )
            })
        };
        for s in 0..12u64 {
            for t in 0..12u64 {
                if s == t {
                    continue;
                }
                for budget in 0..4u32 {
                    if delivers_within(s, t, budget) {
                        assert!(
                            delivers_within(s, t, budget + 1),
                            "edge {s}->{t}: delivery within budget {budget} must \
                             be preserved by budget {}",
                            budget + 1
                        );
                    }
                }
            }
        }
    }

    // 2. The executor-level consequence: a deterministic budget ladder over
    // a lossy overlay never loses coverage as the budget grows, and the
    // counters stay within the budget's arithmetic bounds.
    let (net, mut rng) = loaded_net(2, 40, 500, 47);
    let score = LinearScore::uniform(2);
    let q = TopKQuery::new(score.clone(), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let mut prev = -1.0f64;
        for max_retries in 0..=4u32 {
            let plane = FaultPlane {
                drop_probability: 0.3,
                timeout_hops: 2,
                max_retries,
                seed: 13,
                ..FaultPlane::none()
            };
            let out = Executor::with_faults(&net, plane, 2).run(initiator, &q, mode);
            assert!(
                out.coverage.answered_fraction >= prev,
                "[{mode:?}] coverage must be monotone in the retry budget: \
                 {} < {prev} at max_retries={max_retries}",
                out.coverage.answered_fraction
            );
            prev = out.coverage.answered_fraction;
            assert!(
                out.metrics.retries <= out.metrics.timeouts,
                "[{mode:?}] every retry is preceded by a timeout"
            );
            if max_retries == 0 {
                assert_eq!(
                    out.metrics.retries, 0,
                    "[{mode:?}] a zero budget must never retry"
                );
            }
            if max_retries == 4 {
                // p=0.3 with five attempts per edge and failover behind it:
                // the budget fully masks the losses on this schedule.
                assert!(out.coverage.is_complete(), "[{mode:?}]");
                let mut answers = out.answers.clone();
                answers.sort_by(|x, y| {
                    score
                        .score(&y.point)
                        .total_cmp(&score.score(&x.point))
                        .then_with(|| x.id.cmp(&y.id))
                });
                answers.truncate(10);
                assert_eq!(
                    ids(&answers),
                    ids(&centralized_topk(&survivors(&net), &score, 10)),
                    "[{mode:?}] a generous budget must recover exact answers"
                );
            }
        }
    }
}

/// Certificates across a crash → repair → query lifecycle: before repair the
/// tiling closes over honestly-declared unreachable tiles and the generation
/// stamp pins the damaged snapshot; after `repair_all` a fresh certificate
/// carries the *new* generation, tiles the domain with no unreachable
/// volume, and the stale pre-repair certificate is rejected with a
/// generation mismatch — it certifies an answer about an overlay that no
/// longer exists.
#[test]
fn certificates_span_crash_repair_query_lifecycle() {
    use crate::topk::run_topk_certified;
    use ripple_verify::{verify_coverage, verify_generation, verify_topk, VerifyError};
    let (mut net, mut rng) = loaded_net(2, 48, 600, 48);
    let score = LinearScore::uniform(2);
    for _ in 0..5 {
        if net.peer_count() > 1 {
            let victim = net.random_peer(&mut rng);
            net.crash(victim);
        }
    }
    net.check_invariants();
    assert!(!net.orphan_regions().is_empty());
    let damaged_epoch = net.epoch();
    let initiator = net.random_peer(&mut rng);
    for mode in MODES {
        let exec = Executor::with_faults(&net, crash_aware(), 5);
        let (got, _, cov, cert) = run_topk_certified(&exec, initiator, score.clone(), 10, mode);
        let cert = cert.expect("certificates are on by default");
        verify_topk(&cert, &got, &score, 10, damaged_epoch)
            .unwrap_or_else(|e| panic!("[{mode:?}] damaged-overlay certificate rejected: {e}"));
        verify_coverage(&cert, cov.answered_fraction, &cov.unreachable)
            .unwrap_or_else(|e| panic!("[{mode:?}] coverage rejected: {e}"));
        if mode == Mode::Broadcast {
            assert!(
                cert.regions
                    .iter()
                    .any(|r| matches!(r, ripple_verify::CertRegion::Unreachable { .. })),
                "broadcast over a damaged overlay must declare unreachable tiles"
            );
        }
    }
    // The stale certificate is pinned to the damaged snapshot.
    let exec = Executor::with_faults(&net, crash_aware(), 5);
    let (_, _, _, stale) = run_topk_certified(&exec, initiator, score.clone(), 10, Mode::Slow);
    let stale = stale.expect("certificates are on by default");

    net.repair_all();
    net.check_invariants();
    assert!(net.orphan_regions().is_empty());
    let repaired_epoch = net.epoch();
    assert!(
        repaired_epoch > damaged_epoch,
        "repair must advance the overlay generation"
    );
    assert!(
        matches!(
            verify_generation(&stale, repaired_epoch),
            Err(VerifyError::GenerationMismatch { .. })
        ),
        "a pre-repair certificate must not verify against the repaired overlay"
    );
    let initiator = net.random_peer(&mut rng);
    let exec = Executor::with_faults(&net, crash_aware(), 5);
    let (got, _, cov, fresh) = run_topk_certified(&exec, initiator, score.clone(), 10, Mode::Slow);
    let fresh = fresh.expect("certificates are on by default");
    assert!(cov.is_complete(), "repair must restore full coverage");
    verify_topk(&fresh, &got, &score, 10, repaired_epoch)
        .unwrap_or_else(|e| panic!("post-repair certificate rejected: {e}"));
    assert!(
        !fresh
            .regions
            .iter()
            .any(|r| matches!(r, ripple_verify::CertRegion::Unreachable { .. })),
        "a repaired overlay leaves nothing unreachable"
    );
}

#[test]
fn slow_peers_stretch_latency_without_changing_answers() {
    let (net, mut rng) = loaded_net(2, 40, 500, 46);
    let score = LinearScore::uniform(2);
    let initiator = net.random_peer(&mut rng);
    let q = TopKQuery::new(score.clone(), 10);
    let crisp = Executor::new(&net).run(initiator, &q, Mode::Fast);
    let sluggish = Executor::with_faults(
        &net,
        FaultPlane {
            slow_fraction: 0.3,
            slow_penalty_hops: 5,
            seed: 9,
            ..FaultPlane::none()
        },
        0,
    )
    .run(initiator, &q, Mode::Fast);
    assert_eq!(
        crisp.answers, sluggish.answers,
        "delay must not change data"
    );
    assert_eq!(
        crisp.metrics.query_messages, sluggish.metrics.query_messages,
        "no drops, so no extra messages"
    );
    assert!(
        sluggish.metrics.latency > crisp.metrics.latency,
        "slow peers must show up in completion time: {} vs {}",
        sluggish.metrics.latency,
        crisp.metrics.latency
    );
    assert!(sluggish.coverage.is_complete());
}
