//! Equivalence suite for the LSM write path (DESIGN.md §15).
//!
//! The LSM-shaped `PeerStore` — memtable overlay, tombstone masks,
//! background compaction — is a *write-path layout*, not a semantics
//! change. The suite drives **twin networks built from the same seed**
//! through identical interleaved schedules of `insert_batch` → queries →
//! `compact_stores` → `delete_tuples` → queries:
//!
//! * one twin runs the incremental LSM path (the default), where mutations
//!   touch only the memtable and compaction folds tombstoned runs;
//! * the other runs the **legacy rebuild-per-insert layout**
//!   (`set_store_legacy(true)`), where every store stays a single flat
//!   memtable — the faithful "freshly rebuilt store" baseline, driven
//!   through the *same API calls* so epoch and generation counters (which
//!   certificates and the result cache embed) advance in lockstep.
//!
//! At every checkpoint the twins must produce **bit-identical answers,
//! ledgers (excluding the data-plane scan counters, which are the
//! observability payload of the optimisation), coverage, and
//! certificates** — across every mode, under omission-fault planes, under
//! an active corruption plane (where both twins must also quarantine the
//! same peers), and through the parallel engine. Compaction must be
//! *invisible*: the same query before and after `compact_stores` returns
//! the same everything.
//!
//! The Chord-side twin lives in `ripple-chord`'s `tests/ingest.rs`.

use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::SkylineQuery;
use crate::topk::TopKQuery;
use ripple_geom::{AdHoc, LinearScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::{CorruptionPlane, FaultPlane};

const MODES: [Mode; 5] = [
    Mode::Fast,
    Mode::Broadcast,
    Mode::Ripple(1),
    Mode::Ripple(2),
    Mode::Slow,
];
const THREADS: [usize; 2] = [2, 4];

/// Twin overlays from the same seed: identical zones, links, and routing.
/// The second is switched to the legacy rebuild-per-insert store layout
/// before any tuple lands, so its stores never freeze a run.
fn twin_nets(dims: usize, peers: usize, seed: u64) -> (MidasNetwork, MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lsm = MidasNetwork::build(dims, peers, false, &mut rng);
    let mut rng2 = SmallRng::seed_from_u64(seed);
    let mut legacy = MidasNetwork::build(dims, peers, false, &mut rng2);
    legacy.set_store_legacy(true);
    (lsm, legacy, rng)
}

fn planes() -> [FaultPlane; 2] {
    [FaultPlane::none(), FaultPlane::drops(0.15, 17)]
}

/// Runs `query` on both twins under every plane × mode (sequential and
/// parallel) and asserts observational equality.
fn assert_twins_agree<Q>(
    lsm: &MidasNetwork,
    legacy: &MidasNetwork,
    query: &Q,
    rng: &mut SmallRng,
    label: &str,
) where
    Q: RankQuery<Rect> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    for plane in planes() {
        for mode in MODES {
            let initiator = lsm.random_peer(rng);
            let l = Executor::with_faults(lsm, plane, 7).run(initiator, query, mode);
            let r = Executor::with_faults(legacy, plane, 7).run(initiator, query, mode);
            assert_eq!(
                l.metrics, r.metrics,
                "{label} [{mode:?}, drop_p={}]: LSM and rebuilt ledgers must be \
                 bit-identical (excl. scan counters)",
                plane.drop_probability
            );
            assert_eq!(
                l.answers, r.answers,
                "{label} [{mode:?}]: answer streams must be identical, element for element"
            );
            assert_eq!(l.coverage, r.coverage, "{label} [{mode:?}]: coverage");
            assert_eq!(
                l.certificate, r.certificate,
                "{label} [{mode:?}]: the write path must not leak into the certificate"
            );
            for threads in THREADS {
                let lp = Executor::with_faults(lsm, plane, 7)
                    .run_parallel(initiator, query, mode, threads);
                assert_eq!(
                    r.metrics, lp.metrics,
                    "{label} [{mode:?}, {threads} threads]: parallel LSM ledger"
                );
                assert_eq!(
                    r.answers, lp.answers,
                    "{label} [{mode:?}, {threads} threads]: parallel LSM answers"
                );
                assert_eq!(
                    r.certificate, lp.certificate,
                    "{label} [{mode:?}, {threads} threads]: parallel LSM certificate"
                );
            }
        }
    }
}

/// The query battery: cached and ad-hoc top-k (projection merge and kernel
/// scan paths) plus unconstrained and constrained skyline (the blocked
/// fold over masked runs).
fn check_battery(lsm: &MidasNetwork, legacy: &MidasNetwork, dims: usize, rng: &mut SmallRng) {
    let q = TopKQuery::new(LinearScore::uniform(dims), 8);
    assert_twins_agree(lsm, legacy, &q, rng, "topk-cached-linear");
    let q = TopKQuery::new(AdHoc(LinearScore::uniform(dims)), 8);
    assert_twins_agree(lsm, legacy, &q, rng, "topk-adhoc-linear");
    assert_twins_agree(lsm, legacy, &SkylineQuery::new(), rng, "skyline");
    let c = Rect::new(vec![0.1; dims], vec![0.9; dims]);
    assert_twins_agree(
        lsm,
        legacy,
        &SkylineQuery::constrained(c),
        rng,
        "skyline-constrained",
    );
}

fn fresh_batch(
    dims: usize,
    n: usize,
    next_id: &mut u64,
    live: &mut Vec<u64>,
    rng: &mut SmallRng,
) -> Vec<Tuple> {
    (0..n)
        .map(|_| {
            let id = *next_id;
            *next_id += 1;
            live.push(id);
            Tuple::new(id, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>())
        })
        .collect()
}

/// Picks ~`frac` of the live ids (removing them from `live`), plus a few
/// ids that were never inserted, so `delete_tuples` also exercises the
/// absent-id fast path (which must not bump generations on either twin).
fn doomed_ids(live: &mut Vec<u64>, frac: f64, rng: &mut SmallRng) -> Vec<u64> {
    let mut doomed = Vec::new();
    let mut kept = Vec::with_capacity(live.len());
    for &id in live.iter() {
        if rng.gen::<f64>() < frac {
            doomed.push(id);
        } else {
            kept.push(id);
        }
    }
    *live = kept;
    doomed.push(u64::MAX);
    doomed.push(u64::MAX - 1);
    doomed
}

/// The tentpole contract: an interleaved insert → query → compact → delete
/// schedule leaves the LSM twin observationally identical to the
/// rebuild-per-insert twin at every checkpoint, and compaction is
/// invisible even mid-schedule.
#[test]
fn lsm_matches_rebuilt_twin_under_interleaved_schedule() {
    let dims = 2;
    let (mut lsm, mut legacy, mut rng) = twin_nets(dims, 8, 71);
    let (mut next_id, mut live) = (0u64, Vec::new());
    for round in 0..3 {
        let batch = fresh_batch(dims, 700, &mut next_id, &mut live, &mut rng);
        lsm.insert_batch(batch.clone());
        legacy.insert_batch(batch);
        check_battery(&lsm, &legacy, dims, &mut rng);

        // Compaction (LSM only — a no-op layout on the legacy twin) is a
        // physical reorganisation: the same query straddling it must return
        // the same everything, and the twins must still agree afterwards.
        let q = TopKQuery::new(LinearScore::uniform(dims), 8);
        let initiator = lsm.random_peer(&mut rng);
        let before = Executor::new(&lsm).run(initiator, &q, Mode::Fast);
        lsm.compact_stores();
        let after = Executor::new(&lsm).run(initiator, &q, Mode::Fast);
        assert_eq!(before.answers, after.answers, "compaction changed answers");
        assert_eq!(before.metrics, after.metrics, "compaction changed ledger");
        assert_eq!(
            before.certificate, after.certificate,
            "compaction changed the certificate"
        );

        let doomed = doomed_ids(&mut live, 0.2, &mut rng);
        let a = lsm.delete_tuples(&doomed);
        let b = legacy.delete_tuples(&doomed);
        assert_eq!(a, b, "round {round}: twins must remove the same rows");
        assert!(a > 0, "round {round}: the delete batch must hit something");
        lsm.check_invariants();
        legacy.check_invariants();
        check_battery(&lsm, &legacy, dims, &mut rng);
    }
}

/// Same schedule under an *active* corruption plane: the response auditing
/// and quarantine machinery sits above the store, so both twins must
/// corrupt, audit, and quarantine identically.
#[test]
fn lsm_matches_rebuilt_twin_under_corruption() {
    let dims = 2;
    let (mut lsm, mut legacy, mut rng) = twin_nets(dims, 8, 72);
    let (mut next_id, mut live) = (0u64, Vec::new());
    let plane = CorruptionPlane::flat(0.35, 19);
    for _round in 0..2 {
        let batch = fresh_batch(dims, 600, &mut next_id, &mut live, &mut rng);
        lsm.insert_batch(batch.clone());
        legacy.insert_batch(batch);
        let doomed = doomed_ids(&mut live, 0.15, &mut rng);
        assert_eq!(lsm.delete_tuples(&doomed), legacy.delete_tuples(&doomed));
        lsm.compact_stores();
        let q = TopKQuery::new(LinearScore::uniform(dims), 10);
        for mode in MODES {
            let initiator = lsm.random_peer(&mut rng);
            let l = Executor::new(&lsm)
                .with_corruption(plane)
                .run(initiator, &q, mode);
            let r = Executor::new(&legacy)
                .with_corruption(plane)
                .run(initiator, &q, mode);
            assert_eq!(l.answers, r.answers, "[{mode:?}] corrupted answers");
            assert_eq!(l.metrics, r.metrics, "[{mode:?}] corrupted ledger");
            assert_eq!(l.coverage, r.coverage, "[{mode:?}] corrupted coverage");
            assert_eq!(
                lsm.quarantine().quarantined(),
                legacy.quarantine().quarantined(),
                "[{mode:?}] both twins must quarantine the same peers"
            );
        }
    }
}

/// The observability contract: a store churned through the LSM path
/// reports memtable hits and masked tombstones in the query ledger, and
/// the interleaved schedule's compactions surface as `compactions_run` /
/// `write_amplification` — all *excluded* from ledger equality (checked
/// above), all non-zero here.
#[test]
fn ingest_counters_surface_in_the_ledger() {
    let dims = 2;
    let (mut lsm, _legacy, mut rng) = twin_nets(dims, 4, 73);
    let (mut next_id, mut live) = (0u64, Vec::new());
    // Small peer count so per-store row counts cross the freeze threshold;
    // a light delete fraction so the size-triggered compactor does not fold
    // the masks away before the query observes them.
    let batch = fresh_batch(dims, 2000, &mut next_id, &mut live, &mut rng);
    lsm.insert_batch(batch);
    let doomed = doomed_ids(&mut live, 0.1, &mut rng);
    assert!(lsm.delete_tuples(&doomed) > 0);
    // Ad-hoc score: every visited peer runs the blocked kernel scan over
    // its runs-plus-memtable snapshot (the cached-skyline path rebuilds
    // scalar unless a mirror is already warm, so it cannot pin counters).
    let q = TopKQuery::new(AdHoc(LinearScore::uniform(dims)), 16);
    let initiator = lsm.random_peer(&mut rng);
    let r = Executor::new(&lsm).run(initiator, &q, Mode::Broadcast);
    assert!(
        r.metrics.memtable_hits > 0,
        "unfrozen tail rows must be counted as memtable hits"
    );
    assert!(
        r.metrics.tombstones_masked > 0,
        "deleted rows in frozen runs must be counted as masked tombstones"
    );
    // Compaction folds the masks away; the *mutation* is free but the next
    // query over the store sees clean runs.
    assert!(
        lsm.compact_stores() > 0,
        "tombstoned runs must be rewritten"
    );
    let r2 = Executor::new(&lsm).run(initiator, &q, Mode::Broadcast);
    assert_eq!(
        r2.metrics.tombstones_masked, 0,
        "after compaction no masked row survives"
    );
    assert_eq!(r.answers, r2.answers, "compaction must not change answers");
}
