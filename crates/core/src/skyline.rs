//! Skyline queries over RIPPLE (Section 5, Algorithms 10–15).
//!
//! The abstract query is empty; the abstract state is a *partial skyline* —
//! a set of tuples none of which dominates another. A link region is pruned
//! as soon as some state tuple dominates the entire region (its best
//! corner), and `slow`/`ripple` prioritise regions closer to the origin,
//! where skyline tuples live.

use crate::exec::Executor;
use crate::framework::{Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::{dominance, kernels, KernelDispatch, Norm, Rect, Tuple};
use ripple_net::{scan, LocalView, PeerId, PeerStore, QueryMetrics};
use ripple_verify::{Certificate, PruneWitness};

/// A skyline query (lower values better on every dimension), optionally
/// restricted to a *constraint* box — the query DSL was designed around
/// (Section 2.2: processing anchors at the region containing the
/// constraint's lower-left corner).
#[derive(Clone, Debug, Default)]
pub struct SkylineQuery {
    /// When set, only tuples inside this box participate.
    pub constraint: Option<Rect>,
}

impl SkylineQuery {
    /// The unconstrained skyline query.
    pub fn new() -> Self {
        Self { constraint: None }
    }

    /// A skyline query over the tuples inside `constraint`.
    pub fn constrained(constraint: Rect) -> Self {
        Self {
            constraint: Some(constraint),
        }
    }

    fn local_tuples<'t>(&self, tuples: &'t [Tuple]) -> Vec<&'t Tuple> {
        tuples
            .iter()
            .filter(|t| {
                self.constraint
                    .as_ref()
                    .is_none_or(|c| c.contains(&t.point))
            })
            .collect()
    }

    /// The constrained local state over the store's columnar mirror.
    ///
    /// A three-pass sort-filter-skyline over the columnar blocks: collect
    /// the constraint-qualifying rows (by index — no clones), sort them by
    /// the canonical `(coordinate sum, id)` key, run the insert-only SFS
    /// loop of [`dominance::skyline`] over references, and only then thin
    /// by the global state, cloning nothing but the survivors.
    ///
    /// This equals the scalar `skyline(Q)` thinned by the global state,
    /// member for member and in the same canonical order. Blocks are
    /// skipped wholesale when they are disjoint from the constraint (no row
    /// qualifies) or when a global tuple dominates the lower corner (it
    /// dominates every row in the block): a corner-dominated block cannot
    /// change the thinned result, because any `skyline(Q)` member it holds
    /// is thinned at the end anyway, and any tuple such a member shielded
    /// from the skyline is — by transitivity through that member — also
    /// globally dominated, so its spurious survival is thinned too. Exact
    /// duplicates are dominated together, so min-id representatives agree,
    /// and both sides emit in ascending `(sum, id)` order.
    fn blocked_constrained_state(
        &self,
        store: &PeerStore,
        dispatch: KernelDispatch,
        c: &Rect,
        global: &[Tuple],
    ) -> Vec<Tuple> {
        let blocks = store.blocks_at(dispatch);
        let window: Vec<&[f64]> = global.iter().map(|g| g.point.coords()).collect();
        let (clo, chi) = (c.lo().coords(), c.hi().coords());
        let mut cols: Vec<&[f64]> = Vec::new();
        let mut idx: Vec<u32> = Vec::new();
        let mut cand: Vec<(f64, &Tuple)> = Vec::new();
        for b in 0..blocks.num_blocks() {
            let blo = blocks.block_min(b);
            let bhi = blocks.block_max(b);
            let disjoint = (0..blocks.dims()).any(|d| blo[d] > chi[d] || bhi[d] < clo[d]);
            if disjoint || kernels::dominated_by_any(dispatch, window.iter().copied(), blo) {
                scan::add_pruned(1);
                continue;
            }
            blocks.block_cols(b, &mut cols);
            scan::add_scanned(blocks.block_live(b) as u64);
            scan::add_masked((blocks.block_rows(b) - blocks.block_live(b)) as u64);
            if blocks.is_memtable(b) {
                scan::add_memtable(blocks.block_live(b) as u64);
            }
            kernels::filter_in_box(dispatch, clo, chi, &cols, &mut idx);
            let rows = blocks.block_tuples(b);
            let dead = blocks.block_dead(b);
            for &off in &idx {
                if dead.is_some_and(|d| d[off as usize]) {
                    continue;
                }
                // Left-fold coordinate sum in dimension order — bit-identical
                // to the `coords().iter().sum()` key of `dominance::skyline`.
                let mut s = 0.0;
                for col in &cols {
                    s += col[off as usize];
                }
                cand.push((s, &rows[off as usize]));
            }
        }
        cand.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.id.cmp(&b.1.id)));
        let mut sky: Vec<&Tuple> = Vec::new();
        'outer: for &(_, t) in &cand {
            for s in &sky {
                if dominance::dominates(&s.point, &t.point) {
                    continue 'outer;
                }
                if s.point == t.point {
                    continue 'outer;
                }
            }
            sky.push(t);
        }
        sky.into_iter()
            .filter(|t| {
                !kernels::dominated_by_any(dispatch, window.iter().copied(), t.point.coords())
            })
            .cloned()
            .collect()
    }
}

impl RankQuery<Rect> for SkylineQuery {
    /// A partial skyline.
    type Global = Vec<Tuple>;
    /// The local tuples that survive the partial skyline, plus any remote
    /// states folded in by `slow`/`ripple`.
    type Local = Vec<Tuple>;

    fn initial_global(&self) -> Vec<Tuple> {
        Vec::new()
    }

    /// Algorithm 10: local skyline (of the constraint-qualifying tuples),
    /// thinned by the received global state.
    ///
    /// On an indexed view the unconstrained local skyline comes from the
    /// store's incrementally-maintained cache (identical set and order to a
    /// recompute); constrained queries over a blocked view run the columnar
    /// fold of [`Self::blocked_constrained_state`]; otherwise they filter
    /// and scan.
    fn compute_local_state(&self, view: &LocalView<'_>, global: &Vec<Tuple>) -> Vec<Tuple> {
        if let (Some((store, dispatch)), Some(c)) = (view.blocked_store(), &self.constraint) {
            // Already thinned by the global state (see the method docs).
            return self.blocked_constrained_state(store, dispatch, c, global);
        }
        let local_sky = match (view.store(), &self.constraint) {
            (Some(store), None) => store.skyline_at(view.dispatch()),
            _ => {
                scan::add_scanned(view.tuples().len() as u64);
                let qualifying: Vec<Tuple> = self
                    .local_tuples(view.tuples())
                    .into_iter()
                    .cloned()
                    .collect();
                dominance::skyline(&qualifying)
            }
        };
        local_sky
            .into_iter()
            .filter(|t| {
                !global
                    .iter()
                    .any(|g| dominance::dominates(&g.point, &t.point))
            })
            .collect()
    }

    /// Algorithm 11: skyline of the union (incremental merge — both inputs
    /// are already skylines). The borrowed insert builds the merged state
    /// directly instead of cloning the whole global skyline first.
    fn compute_global_state(&self, global: &Vec<Tuple>, local: &Vec<Tuple>) -> Vec<Tuple> {
        dominance::skyline_insert_ref(global, local)
    }

    /// Algorithm 13: skyline of the union of the states (folded
    /// incrementally — every input is already a skyline).
    fn update_local_state(&self, states: Vec<Vec<Tuple>>) -> Vec<Tuple> {
        let mut it = states.into_iter();
        let first = it.next().unwrap_or_default();
        it.fold(first, |acc, s| dominance::skyline_insert(acc, &s))
    }

    /// Algorithm 12: the local tuples among the state. Indexed views answer
    /// the membership test from the store's cached id set.
    fn compute_local_answer(&self, view: &LocalView<'_>, local: &Vec<Tuple>) -> Vec<Tuple> {
        if let Some(store) = view.store() {
            return local
                .iter()
                .filter(|s| store.contains_id(s.id))
                .cloned()
                .collect();
        }
        local
            .iter()
            .filter(|s| view.tuples().iter().any(|t| t.id == s.id))
            .cloned()
            .collect()
    }

    /// Algorithm 14: prune regions dominated in their entirety, plus — for
    /// constrained queries — regions disjoint from the constraint box.
    fn is_link_relevant(&self, region: &Rect, global: &Vec<Tuple>) -> bool {
        if let Some(c) = &self.constraint {
            if !c.intersects(region) {
                return false;
            }
        }
        !global
            .iter()
            .any(|s| dominance::dominates_rect(&s.point, region))
    }

    /// Algorithm 15: regions closer to the origin first (`d⁻`).
    fn priority(&self, region: &Rect) -> f64 {
        let origin = ripple_geom::Point::origin(region.dims());
        -Norm::L2.min_dist(region, &origin)
    }

    /// Skyline states ship their member tuples.
    fn state_payload(&self, local: &Vec<Tuple>) -> usize {
        local.len()
    }

    /// Why Algorithm 14 pruned the region: constraint disjointness, or the
    /// first partial-skyline tuple dominating the whole region. The checker
    /// re-tests the domination geometrically and requires the witness point
    /// to be supported by the final skyline (equal to a member or dominated
    /// by one — dominance chains always end in the skyline).
    fn prune_witness(&self, region: &Rect, global: &Vec<Tuple>) -> PruneWitness {
        if let Some(c) = &self.constraint {
            if !c.intersects(region) {
                return PruneWitness::Disjoint;
            }
        }
        global
            .iter()
            .find(|s| dominance::dominates_rect(&s.point, region))
            .map(|s| PruneWitness::Dominator {
                point: s.point.clone(),
            })
            .unwrap_or(PruneWitness::Opaque)
    }
}

/// Runs a skyline query and merges the received answers into the global
/// skyline at the initiator.
pub fn run_skyline<O>(net: &O, initiator: PeerId, mode: Mode) -> (Vec<Tuple>, QueryMetrics)
where
    O: RippleOverlay<Region = Rect>,
{
    run_skyline_query(net, initiator, SkylineQuery::new(), mode)
}

/// Runs a (possibly constrained) skyline query.
pub fn run_skyline_query<O>(
    net: &O,
    initiator: PeerId,
    query: SkylineQuery,
    mode: Mode,
) -> (Vec<Tuple>, QueryMetrics)
where
    O: RippleOverlay<Region = Rect>,
{
    let (sky, metrics, _) = run_skyline_query_with(&Executor::new(net), initiator, query, mode);
    (sky, metrics)
}

/// Runs a (possibly constrained) skyline query through a pre-configured
/// executor — typically a fault-aware one ([`Executor::with_faults`]) —
/// additionally returning the coverage report. With a default executor this
/// is exactly [`run_skyline_query`].
pub fn run_skyline_query_with<O>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    query: SkylineQuery,
    mode: Mode,
) -> (Vec<Tuple>, QueryMetrics, crate::framework::Coverage)
where
    O: RippleOverlay<Region = Rect>,
{
    let (sky, metrics, coverage, _) = run_skyline_certified(exec, initiator, query, mode);
    (sky, metrics, coverage)
}

/// [`run_skyline_query_with`], additionally returning the answer
/// certificate (when the executor emits them), so the caller can hand
/// skyline + certificate to `ripple-verify`'s `verify_skyline` as an
/// independent second oracle.
pub fn run_skyline_certified<O>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    query: SkylineQuery,
    mode: Mode,
) -> (
    Vec<Tuple>,
    QueryMetrics,
    crate::framework::Coverage,
    Option<Certificate>,
)
where
    O: RippleOverlay<Region = Rect>,
{
    let QueryOutcome {
        answers,
        metrics,
        coverage,
        certificate,
        ..
    } = exec.run(initiator, &query, mode);
    let mut sky = dominance::skyline(&answers);
    sky.sort_by_key(|t| t.id);
    (sky, metrics, coverage, certificate)
}

/// [`run_skyline_certified`] on the parallel intra-query executor: the same
/// initiator-side dominance thinning around [`Executor::run_parallel`], so
/// the outcome is bit-identical to the sequential runner's for any thread
/// count (the serving layer's N drivers × M workers composition relies on
/// this).
pub fn run_skyline_certified_par<O>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    query: SkylineQuery,
    mode: Mode,
    threads: usize,
) -> (
    Vec<Tuple>,
    QueryMetrics,
    crate::framework::Coverage,
    Option<Certificate>,
)
where
    O: RippleOverlay<Region = Rect> + Sync,
{
    let QueryOutcome {
        answers,
        metrics,
        coverage,
        certificate,
        ..
    } = exec.run_parallel(initiator, &query, mode, threads);
    let mut sky = dominance::skyline(&answers);
    sky.sort_by_key(|t| t.id);
    (sky, metrics, coverage, certificate)
}

/// Reference answer: centralized skyline, sorted by id (test oracle).
pub fn centralized_skyline(tuples: &[Tuple]) -> Vec<Tuple> {
    let mut sky = dominance::skyline(tuples);
    sky.sort_by_key(|t| t.id);
    sky
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, c: &[f64]) -> Tuple {
        Tuple::new(id, c.to_vec())
    }

    #[test]
    fn local_state_is_thinned_by_global() {
        let q = SkylineQuery::new();
        let tuples = vec![t(1, &[0.5, 0.5]), t(2, &[0.9, 0.9])];
        let global = vec![t(10, &[0.4, 0.4])]; // dominates both
        let s = q.compute_local_state(&LocalView::Plain(&tuples), &global);
        assert!(s.is_empty(), "dominated local tuples must not survive");
        let s2 = q.compute_local_state(&LocalView::Plain(&tuples), &Vec::new());
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].id, 1);
    }

    #[test]
    fn global_state_merges() {
        let q = SkylineQuery::new();
        let g = vec![t(1, &[0.1, 0.9])];
        let l = vec![t(2, &[0.9, 0.1]), t(3, &[0.95, 0.2])];
        let merged = q.compute_global_state(&g, &l);
        let mut ids: Vec<u64> = merged.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn link_pruning_by_domination() {
        let q = SkylineQuery::new();
        let global = vec![t(1, &[0.2, 0.2])];
        let dominated = Rect::new(vec![0.5, 0.5], vec![0.9, 0.9]);
        let alive = Rect::new(vec![0.0, 0.5], vec![0.5, 1.0]);
        assert!(!q.is_link_relevant(&dominated, &global));
        assert!(q.is_link_relevant(&alive, &global));
        assert!(
            q.is_link_relevant(&dominated, &Vec::new()),
            "empty state prunes nothing"
        );
    }

    #[test]
    fn priority_prefers_origin() {
        let q = SkylineQuery::new();
        let near = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let far = Rect::new(vec![0.5, 0.5], vec![1.0, 1.0]);
        assert!(q.priority(&near) > q.priority(&far));
    }

    #[test]
    fn local_answer_keeps_only_local_tuples() {
        let q = SkylineQuery::new();
        let tuples = vec![t(1, &[0.5, 0.5])];
        let state = vec![t(1, &[0.5, 0.5]), t(9, &[0.1, 0.9])];
        let a = q.compute_local_answer(&LocalView::Plain(&tuples), &state);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].id, 1);
    }

    #[test]
    fn state_payload_counts_tuples() {
        let q = SkylineQuery::new();
        assert_eq!(
            q.state_payload(&vec![t(1, &[0.1, 0.1]), t(2, &[0.2, 0.05])]),
            2
        );
    }
}
