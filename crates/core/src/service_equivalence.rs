//! The serving plane's property tests: interleaved concurrent queries ×
//! churn bumps × crash/repair, with `ripple-verify` as the second oracle.
//!
//! Two schedules over a replicated MIDAS overlay:
//!
//! 1. **Pinned rounds** — batches of multi-tenant queries (every query
//!    type, every mode, real driver threads + intra-query workers) are
//!    drained to completion between mutations. Every response must be
//!    pinned to exactly the generation that was current at submission,
//!    every certificate must verify against that generation, and every
//!    outcome must be bit-identical (answers, ledger, coverage,
//!    certificate) to a standalone [`Executor`] run at the same
//!    generation. Mutations cycle join / leave / crash+repair / insert,
//!    so the dataset-vs-overlay generation coupling is exercised on every
//!    edge the overlay has.
//!
//! 2. **Racing churn** — queries are submitted concurrently with epoch
//!    bumps and never quiesced: drivers race `advance_epoch`. No
//!    assumption is made about *which* generation a query lands on — only
//!    the serving contract: it is one of the generations that actually
//!    existed (never a torn in-between state), the attached certificate
//!    verifies against the generation the response claims, and cache hits
//!    replay certificates that still verify.
//!
//! The Chord-side twin lives in `ripple-chord`'s `tests/serving.rs`.

use crate::exec::Executor;
use crate::framework::Mode;
use crate::service::{QueryService, ServiceConfig, ServiceQuery, ServiceScore};
use crate::skyline::{run_skyline_certified, SkylineQuery};
use crate::topk::run_topk_certified;
use ripple_geom::{LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::PeerId;
use ripple_verify::{verify_coverage, verify_skyline, verify_topk, Certificate};
use std::collections::HashSet;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn shapes(round: u64) -> Vec<ServiceQuery> {
    vec![
        ServiceQuery::TopK {
            score: ServiceScore::Linear(vec![1.0, 0.5 + round as f64 / 8.0]),
            k: 10,
        },
        ServiceQuery::TopK {
            score: ServiceScore::Peak(vec![0.3, 0.6], Norm::L2),
            k: 5,
        },
        ServiceQuery::Skyline { constraint: None },
        ServiceQuery::Skyline {
            constraint: Some(Rect::new(vec![0.2, 0.2], vec![0.9, 0.9])),
        },
    ]
}

/// Checks the response-level contract: the certificate verifies — via the
/// dependency-free checker — against the query shape, the final answers
/// and the generation the response claims.
fn verify_response(
    query: &ServiceQuery,
    answers: &[Tuple],
    cert: &Certificate,
    coverage: &crate::framework::Coverage,
    generation: u64,
    label: &str,
) {
    match query {
        ServiceQuery::TopK { score, k } => match score {
            ServiceScore::Linear(w) => {
                verify_topk(cert, answers, &LinearScore::new(w.clone()), *k, generation)
                    .unwrap_or_else(|e| panic!("{label}: linear top-k rejected: {e}"));
            }
            ServiceScore::Peak(p, norm) => {
                verify_topk(
                    cert,
                    answers,
                    &PeakScore::new(p.clone(), *norm),
                    *k,
                    generation,
                )
                .unwrap_or_else(|e| panic!("{label}: peak top-k rejected: {e}"));
            }
        },
        ServiceQuery::Skyline { constraint } => {
            verify_skyline(cert, answers, constraint.as_ref(), generation)
                .unwrap_or_else(|e| panic!("{label}: skyline rejected: {e}"));
        }
    }
    verify_coverage(cert, coverage.answered_fraction, &coverage.unreachable)
        .unwrap_or_else(|e| panic!("{label}: coverage rejected: {e}"));
}

/// Re-runs `query` standalone — a lone [`Executor`] over the same overlay
/// snapshot — and returns the certified outcome for bit-comparison.
#[allow(clippy::type_complexity)]
fn standalone(
    net: &MidasNetwork,
    initiator: PeerId,
    query: &ServiceQuery,
    mode: Mode,
) -> (
    Vec<Tuple>,
    ripple_net::QueryMetrics,
    crate::framework::Coverage,
    Option<Certificate>,
) {
    let exec = Executor::new(net);
    match query {
        ServiceQuery::TopK { score, k } => match score {
            ServiceScore::Linear(w) => {
                run_topk_certified(&exec, initiator, LinearScore::new(w.clone()), *k, mode)
            }
            ServiceScore::Peak(p, norm) => {
                run_topk_certified(&exec, initiator, PeakScore::new(p.clone(), *norm), *k, mode)
            }
        },
        ServiceQuery::Skyline { constraint } => {
            let q = match constraint {
                Some(c) => SkylineQuery::constrained(c.clone()),
                None => SkylineQuery::new(),
            };
            run_skyline_certified(&exec, initiator, q, mode)
        }
    }
}

/// Schedule 1: quiesced rounds between mutations. Every query of round
/// `r` must be served at exactly generation `g_r`, verify against it, and
/// match a standalone executor bit for bit.
#[test]
fn pinned_rounds_verify_and_match_standalone_across_churn_and_repair() {
    let mut rng = SmallRng::seed_from_u64(81);
    let mut net = MidasNetwork::build(2, 40, false, &mut rng);
    for i in 0..600u64 {
        net.insert_tuple(Tuple::new(i, vec![rng.gen(), rng.gen()]));
    }
    net.enable_replication(1);

    let service = QueryService::new(
        net,
        ServiceConfig {
            drivers: 2,
            intra_query_threads: 2,
            cache: false,
            ..ServiceConfig::default()
        },
    );

    for round in 0..8u64 {
        let pinned = service.generation();
        let mut batch = Vec::new();
        for (i, query) in shapes(round).into_iter().enumerate() {
            let mode = MODES[(round as usize + i) % MODES.len()];
            let initiator = service.with_network(|net| net.random_peer(&mut rng));
            let tenant = i as u32 % 3;
            let ticket = service
                .submit(tenant, initiator, query.clone(), mode)
                .expect("admission");
            batch.push((initiator, query, mode, ticket));
        }
        for (i, (initiator, query, mode, ticket)) in batch.into_iter().enumerate() {
            let resp = ticket.wait().expect("admitted queries complete");
            let label = format!("round {round} query {i} [{mode:?}]");
            assert_eq!(
                resp.generation, pinned,
                "{label}: a quiesced round must pin the submission generation"
            );
            assert!(!resp.cache_hit, "{label}: cache is off");
            let cert = resp.certificate.as_deref().expect("certificates on");
            verify_response(
                &query,
                &resp.answers,
                cert,
                &resp.coverage,
                resp.generation,
                &label,
            );
            // Bit-identity against a lone executor at the same snapshot:
            // answers, full cost ledger (the eq contract excludes the
            // serving provenance stamps), coverage and certificate.
            service.with_network(|net| {
                let (answers, metrics, coverage, cert2) = standalone(net, initiator, &query, mode);
                assert_eq!(resp.answers, answers, "{label}: answers");
                assert_eq!(resp.metrics, metrics, "{label}: ledger");
                assert_eq!(resp.coverage, coverage, "{label}: coverage");
                assert_eq!(
                    resp.certificate.as_deref(),
                    cert2.as_ref(),
                    "{label}: certificate"
                );
            });
        }

        // Quiesced mutation: every overlay edge in rotation. Crash repairs
        // in the same epoch step so queries never see a damaged net
        // without a fault plane.
        let before = service.generation();
        service.advance_epoch(|net| match round % 4 {
            0 => {
                net.join_random(&mut rng);
            }
            1 => {
                let live = net.live_peers().to_vec();
                net.leave(live[rng.gen_range(0..live.len())]);
            }
            2 => {
                let live = net.live_peers().to_vec();
                net.crash(live[rng.gen_range(0..live.len())]);
                net.repair_all();
                net.refresh_replicas();
                net.check_invariants();
            }
            _ => {
                net.insert_tuple(Tuple::new(10_000 + round, vec![rng.gen(), rng.gen()]));
            }
        });
        assert!(
            service.generation() > before,
            "round {round}: every mutation kind must bump the generation"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, 32);
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.rejected, 0);
}

/// Schedule 2: drivers race epoch bumps — no quiescing. Each response
/// must land on a generation that actually existed (pinned, never torn),
/// and its certificate must verify against the generation it claims.
#[test]
fn racing_churn_every_certificate_verifies_against_its_claimed_generation() {
    let mut rng = SmallRng::seed_from_u64(82);
    let mut net = MidasNetwork::build(2, 32, false, &mut rng);
    for i in 0..400u64 {
        net.insert_tuple(Tuple::new(i, vec![rng.gen(), rng.gen()]));
    }

    let service = QueryService::new(
        net,
        ServiceConfig {
            drivers: 3,
            cache: true,
            ..ServiceConfig::default()
        },
    );

    let mut valid_generations: HashSet<u64> = HashSet::new();
    valid_generations.insert(service.generation());
    let mut in_flight = Vec::new();
    for wave in 0..6u64 {
        for (i, query) in shapes(wave).into_iter().enumerate() {
            let mode = MODES[(wave as usize + i) % MODES.len()];
            let initiator = service.with_network(|net| net.random_peer(&mut rng));
            let ticket = service
                .submit(i as u32 % 5, initiator, query.clone(), mode)
                .expect("admission");
            in_flight.push((query, mode, ticket));
        }
        // Bump while the previous wave may still be in flight. Only
        // additive mutations here (join, insert): a racing schedule must
        // not invalidate a pending query's initiator.
        service.advance_epoch(|net| {
            if wave % 2 == 0 {
                net.join_random(&mut rng);
            } else {
                net.insert_tuple(Tuple::new(20_000 + wave, vec![rng.gen(), rng.gen()]));
            }
        });
        valid_generations.insert(service.generation());
    }

    let total = in_flight.len() as u64;
    let mut hits = 0u64;
    for (i, (query, mode, ticket)) in in_flight.into_iter().enumerate() {
        let resp = ticket.wait().expect("admitted queries complete");
        let label = format!("racing query {i} [{mode:?}]");
        assert!(
            valid_generations.contains(&resp.generation),
            "{label}: generation {} was never a published snapshot",
            resp.generation
        );
        let cert = resp.certificate.as_deref().expect("certificates on");
        verify_response(
            &query,
            &resp.answers,
            cert,
            &resp.coverage,
            resp.generation,
            &label,
        );
        if resp.cache_hit {
            hits += 1;
            assert_eq!(
                resp.metrics.total_messages(),
                0,
                "{label}: a cache hit costs no network"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(
        stats.cache_hits, hits,
        "ledger hits match the global counter"
    );
}
