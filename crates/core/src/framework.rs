//! The abstract interfaces of the RIPPLE framework (Section 3.1).
//!
//! RIPPLE's three propagation templates (`fast`, `slow`, `ripple`) are
//! *query-agnostic*: Algorithms 1–3 of the paper are written against six
//! abstract functions whose behaviour depends on the query type. The
//! [`RankQuery`] trait captures those six functions; the [`RippleOverlay`]
//! trait captures the little RIPPLE assumes about the substrate — each peer
//! exposes links annotated with **regions** that, together with the peer's
//! zone, partition the domain.

use ripple_geom::{neumaier, Rect, Tuple};
use ripple_net::{LocalView, PeerId, Quarantine, QueryMetrics, ReplicaSet};
use ripple_verify::{Certificate, PruneWitness};

/// What RIPPLE requires from a DHT substrate.
///
/// Implementations exist for MIDAS (regions are sibling-subtree boxes) and
/// Chord (regions are ring arcs). The framework never inspects a region
/// directly — it only intersects regions with restriction areas and hands
/// them to the query's bound functions.
pub trait RippleOverlay {
    /// The region/restriction-area representation of this substrate.
    type Region: Clone;

    /// The region covering the entire domain (the initial restriction area).
    fn full_region(&self) -> Self::Region;

    /// Intersection of a link region with a restriction area; `None` when
    /// empty. The returned area becomes the forwarded restriction, which is
    /// what guarantees every peer is reached at most once.
    fn region_intersect(
        &self,
        region: &Self::Region,
        restriction: &Self::Region,
    ) -> Option<Self::Region>;

    /// The links of `peer` with their regions, resolved to live targets.
    /// The regions of all links plus the peer's zone partition the domain.
    fn peer_links(&self, peer: PeerId) -> Vec<(PeerId, Self::Region)>;

    /// Number of peers currently in the overlay. The executor uses it to
    /// pre-size the per-query visited set (one entry per peer in the worst
    /// case — broadcast visits everyone) and the parallel engine to shard
    /// it; an estimate is fine, correctness never depends on the value.
    fn peer_count(&self) -> usize;

    /// The tuples stored at `peer`.
    fn peer_tuples(&self, peer: PeerId) -> &[Tuple];

    /// The local view query processing sees at `peer`.
    ///
    /// Substrates whose peers keep their tuples in a [`PeerStore`] should
    /// override this to return [`LocalView::Indexed`], which lets query
    /// implementations use the store's local index layer (score-sorted
    /// projections, incremental skyline) instead of scanning. The default
    /// plain view is always correct — the index layer is a pure wall-clock
    /// optimisation and never changes results or hop/message metrics.
    ///
    /// [`PeerStore`]: ripple_net::PeerStore
    fn peer_view(&self, peer: PeerId) -> LocalView<'_> {
        LocalView::Plain(self.peer_tuples(peer))
    }

    /// Routes a DHT lookup for `key` from `from`, returning the responsible
    /// peer and the hop count, when the substrate supports point lookups.
    ///
    /// Query drivers use this to move processing to the most promising peer
    /// (e.g. the owner of a unimodal score's peak) before rippling outward;
    /// the hops are charged to the query like any other messages.
    fn route_lookup(&self, _from: PeerId, _key: &ripple_geom::Point) -> Option<(PeerId, u32)> {
        None
    }

    /// The volume a region occupies in the domain, in the same units as
    /// `region_volume(&full_region())`. The fault-aware executor divides the
    /// two to report what fraction of the domain an abandoned restriction
    /// area represents; it is never used on the fault-free path.
    fn region_volume(&self, region: &Self::Region) -> f64;

    /// The region as a set of disjoint axis-aligned boxes, for the
    /// substrate-neutral certificate tiles handed to `ripple-verify`
    /// (MIDAS: the region *is* a box; Chord: the arc's key-space segments).
    /// Total box volume must equal `region_volume(region)`.
    fn region_rects(&self, region: &Self::Region) -> Vec<Rect>;

    /// A counter identifying the overlay snapshot (membership, stored
    /// tuples, replica ledger) the query ran against, bumped by every
    /// mutation. Certificates are stamped with it so a verifier rejects a
    /// certificate replayed against a different snapshot. Substrates
    /// without mutation tracking report a constant `0`.
    fn snapshot_generation(&self) -> u64 {
        0
    }

    /// Whether `peer` is currently able to process queries. Substrates
    /// without a failure model are always fully live (the default); crash-
    /// aware substrates report `false` for peers whose zones are orphaned,
    /// which is how the executor *detects* a failed forward — links
    /// deliberately keep resolving to their last known (possibly dead)
    /// target, exactly like a real routing table with stale entries.
    fn is_peer_live(&self, _peer: PeerId) -> bool {
        true
    }

    /// An alternate live peer able to adopt (part of) the restriction area
    /// `region` after its original target proved unreachable, excluding the
    /// already-`tried` targets. Returns the peer together with the
    /// sub-region it can *canonically* cover — i.e. propagation entered at
    /// that peer visits exactly the peers of the sub-region, each once, and
    /// never leaves it. Substrates whose regions are entry-order-free return
    /// `region` unchanged (MIDAS: any zone-in-box peer covers the box);
    /// order-sensitive substrates may trim (Chord: a mid-arc peer cannot
    /// reach the arc's prefix without leaving it, so the prefix — dead
    /// zones, or it would have been chosen — is cut off). The executor
    /// accounts whatever is trimmed as unreachable. The choice must be
    /// deterministic. `None` (the default, and the answer once candidates
    /// are exhausted) abandons the whole area.
    fn failover_target(
        &self,
        _region: &Self::Region,
        _tried: &[PeerId],
    ) -> Option<(PeerId, Self::Region)> {
        None
    }

    /// The peers that should hold the `k` replicas of `peer`'s tuples —
    /// the substrate's own link structure reused as the replica topology
    /// (Chord: the first `k` live ring successors; MIDAS: sibling/buddy-box
    /// peers, deepest link first). Must be deterministic; must not include
    /// `peer` itself. The default (no replication support) is empty.
    fn replica_targets(&self, _peer: PeerId, _k: usize) -> Vec<PeerId> {
        Vec::new()
    }

    /// The overlay's replica ledger, when replication is enabled
    /// ([`ReplicaSet`] with `k ≥ 1` captured copies). The executor reads it
    /// — never writes — when a failover target adopts a dead peer's
    /// sub-region: the region is answered from the replica instead of being
    /// abandoned. `None` (the default) means every recovery is skipped and
    /// the executor behaves bit-identically to the replication-free one.
    fn replicas(&self) -> Option<&ReplicaSet> {
        None
    }

    /// The overlay's quarantine registry for peers caught lying by the
    /// online response audit, when the substrate tracks one. The executor
    /// snapshots it before each query (quarantined peers are treated like
    /// dead peers: skipped straight to failover, excluded from failover
    /// candidacy) and flushes the query's merged audit verdicts through it
    /// afterwards. `None` (the default) disables quarantine entirely —
    /// audits still discard tainted contributions, but nothing is
    /// remembered across queries.
    fn quarantine(&self) -> Option<&Quarantine> {
        None
    }

    /// The dead peers whose (orphaned, unrepaired) zones intersect `region`,
    /// each with the volume of the intersection, in a deterministic overlay
    /// order. The executor calls this at abandonment time to decide which
    /// owners' replicas can stand in for the lost volume; keying recovery by
    /// the abandoned region (itself keyed by the failed edge) is what keeps
    /// `replica_hits` schedule-free under the parallel engine. The default
    /// (no failure model) is empty.
    fn dead_zones_in(&self, _region: &Self::Region) -> Vec<(PeerId, f64)> {
        Vec::new()
    }

    /// The zones of the listed *live* peers that intersect `region`, each
    /// with the volume of the intersection, in a deterministic overlay
    /// order — the quarantine twin of [`dead_zones_in`]: a quarantined peer
    /// is alive but untrusted, so its zone never shows up as an orphan, yet
    /// the executor must still re-answer it from a replica (or report it
    /// unreachable) when delivery routes around the peer. The peer list is
    /// always the query's immutable quarantine snapshot, never the live
    /// registry, so the result cannot change mid-walk. The default (no
    /// zone geometry) is empty.
    ///
    /// [`dead_zones_in`]: RippleOverlay::dead_zones_in
    fn peer_zones_in(&self, _peers: &[PeerId], _region: &Self::Region) -> Vec<(PeerId, f64)> {
        Vec::new()
    }
}

/// How much of the domain a query execution actually answered.
///
/// On the fault-free path this is always [`Coverage::full`]. Under injected
/// faults, every restriction area the executor had to abandon — all
/// retransmissions timed out and no failover candidate was left — is
/// recorded here instead of being silently dropped: a degraded answer is
/// acceptable, an unreported one is not.
#[derive(Clone, Debug, PartialEq)]
pub struct Coverage {
    /// Fraction of the domain volume whose responsible peers contributed
    /// their local answers (`1.0` = complete).
    pub answered_fraction: f64,
    /// Domain-volume fractions of the abandoned restriction areas, in
    /// abandonment order. Empty iff the execution was complete.
    pub unreachable: Vec<f64>,
}

impl Coverage {
    /// Complete coverage: the whole domain answered, nothing abandoned.
    pub fn full() -> Self {
        Self {
            answered_fraction: 1.0,
            unreachable: Vec::new(),
        }
    }

    /// True when no restriction area was abandoned.
    pub fn is_complete(&self) -> bool {
        self.unreachable.is_empty()
    }

    /// Coverage from the per-abandonment domain fractions, with the
    /// answered fraction derived by compensated (Neumaier) summation —
    /// the single place the executor turns unreachable volume into a
    /// fraction, shared in spirit with `ripple-verify`'s tiling checker so
    /// both sides agree to the last bit on many-term sums.
    pub fn from_unreachable(unreachable: Vec<f64>) -> Self {
        let lost = neumaier(unreachable.iter().copied());
        Self {
            answered_fraction: (1.0 - lost).clamp(0.0, 1.0),
            unreachable,
        }
    }
}

/// The six abstract functions a rank query plugs into RIPPLE
/// (Section 3.1), named after the paper's pseudo-code.
pub trait RankQuery<R> {
    /// The global state `S^G`: the view of query progress forwarded along
    /// with the query.
    type Global: Clone;
    /// The local state `S^L`: information collected at one peer (and states
    /// it explicitly requested).
    type Local;

    /// The neutral global state the initiator starts from.
    fn initial_global(&self) -> Self::Global;

    /// `computeLocalState`: derive a local state from the peer's tuples and
    /// the received global state. The view exposes the peer's tuples — and,
    /// on indexed substrates, the per-peer index layer as a fast path.
    fn compute_local_state(&self, view: &LocalView<'_>, global: &Self::Global) -> Self::Local;

    /// `computeGlobalState`: combine the *received* global state with the
    /// current local state.
    fn compute_global_state(&self, global: &Self::Global, local: &Self::Local) -> Self::Global;

    /// `updateLocalState`: merge several local states into one.
    fn update_local_state(&self, states: Vec<Self::Local>) -> Self::Local;

    /// `computeLocalAnswer`: the peer's qualifying tuples under its final
    /// local state; these are sent to the initiator.
    fn compute_local_answer(&self, view: &LocalView<'_>, local: &Self::Local) -> Vec<Tuple>;

    /// `isLinkRelevant` (second check): may the given (already
    /// restriction-intersected) region contribute to the answer, given the
    /// global state? The first check — overlap with the restriction area —
    /// is performed by the framework via `region_intersect`.
    fn is_link_relevant(&self, region: &R, global: &Self::Global) -> bool;

    /// `comp`: the priority of a region; `slow`/`ripple` visit links in
    /// decreasing priority.
    fn priority(&self, region: &R) -> f64;

    /// Number of tuples carried by a local-state response message
    /// (communication-volume accounting; 0 for scalar states).
    fn state_payload(&self, _local: &Self::Local) -> usize {
        0
    }

    /// The evidence that pruning `region` under `global` was sound, recorded
    /// in the answer certificate whenever `is_link_relevant` returns false.
    /// Checkable query types return a concrete witness (a score bound, a
    /// dominating tuple, a φ lower bound, constraint disjointness); the
    /// default [`PruneWitness::Opaque`] marks the tile as tiling-only — the
    /// volume still participates in the partition check, but no bound is
    /// re-derivable.
    fn prune_witness(&self, _region: &R, _global: &Self::Global) -> PruneWitness {
        PruneWitness::Opaque
    }
}

/// Result of one distributed query execution.
pub struct QueryOutcome<L> {
    /// The local answers of every visited peer, as received by the
    /// initiator. Query-specific post-processing (take-top-k, final skyline,
    /// arg-min φ) turns these into the final answer.
    pub answers: Vec<Tuple>,
    /// The initiator's final local state.
    pub state: L,
    /// The cost ledger of the execution.
    pub metrics: QueryMetrics,
    /// How much of the domain the execution covered. [`Coverage::full`]
    /// unless faults forced the executor to abandon restriction areas.
    pub coverage: Coverage,
    /// The snapshot-scoped answer certificate: a tiling of the query domain
    /// into scanned / pruned / replica-served / unreachable tiles with
    /// per-tile witnesses, checkable by `ripple-verify` without trusting
    /// the executor. `None` when emission was disabled
    /// (`Executor::without_certificates`).
    pub certificate: Option<Certificate>,
}

/// Ablation wrapper: the wrapped query with link prioritisation disabled
/// (`comp` returns a constant, so `slow`/`ripple` visit links in arbitrary
/// order). Isolates how much of RIPPLE's practical performance comes from
/// the `sortLinks` guidance versus the state-based pruning alone.
pub struct Unprioritized<Q>(pub Q);

impl<R, Q: RankQuery<R>> RankQuery<R> for Unprioritized<Q> {
    type Global = Q::Global;
    type Local = Q::Local;

    fn initial_global(&self) -> Self::Global {
        self.0.initial_global()
    }

    fn compute_local_state(&self, view: &LocalView<'_>, global: &Self::Global) -> Self::Local {
        self.0.compute_local_state(view, global)
    }

    fn compute_global_state(&self, global: &Self::Global, local: &Self::Local) -> Self::Global {
        self.0.compute_global_state(global, local)
    }

    fn update_local_state(&self, states: Vec<Self::Local>) -> Self::Local {
        self.0.update_local_state(states)
    }

    fn compute_local_answer(&self, view: &LocalView<'_>, local: &Self::Local) -> Vec<Tuple> {
        self.0.compute_local_answer(view, local)
    }

    fn is_link_relevant(&self, region: &R, global: &Self::Global) -> bool {
        self.0.is_link_relevant(region, global)
    }

    fn priority(&self, _region: &R) -> f64 {
        0.0
    }

    fn state_payload(&self, local: &Self::Local) -> usize {
        self.0.state_payload(local)
    }

    fn prune_witness(&self, region: &R, global: &Self::Global) -> PruneWitness {
        self.0.prune_witness(region, global)
    }
}

/// The execution mode of Algorithm 3, determined by the ripple parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// `r = 0`: Algorithm 1 — all relevant links contacted at once.
    Fast,
    /// `r ≥ Δ`: Algorithm 2 — links visited sequentially, state folded in
    /// after every visit.
    Slow,
    /// General Algorithm 3 with the given ripple parameter.
    Ripple(u32),
    /// Naive processing (Section 1): flood every peer regardless of state,
    /// collect every local answer. The lower bound on latency and the upper
    /// bound on communication.
    Broadcast,
}

impl Mode {
    /// The effective ripple parameter (`u32::MAX` stands in for "≥ Δ").
    pub fn r(&self) -> u32 {
        match self {
            Mode::Fast | Mode::Broadcast => 0,
            Mode::Slow => u32::MAX,
            Mode::Ripple(r) => *r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Coverage;

    #[test]
    fn coverage_fraction_is_exact_over_ten_thousand_tiny_regions() {
        // 10k losses of 2⁻⁵⁴ each on top of one 0.5 loss: a naive left-fold
        // absorbs every tiny term into the big one (0.5 + 2⁻⁵⁴ rounds to
        // even, back to 0.5) and reports half the domain answered; the
        // compensated sum keeps all 10k bits.
        let tiny = 2f64.powi(-54);
        let mut unreachable = vec![0.5];
        unreachable.extend(std::iter::repeat_n(tiny, 10_000));
        let naive: f64 = unreachable.iter().sum();
        assert_eq!(naive, 0.5, "the naive sum drops every tiny region");
        let cov = Coverage::from_unreachable(unreachable);
        let exact = 0.5 - 10_000.0 * tiny;
        assert_eq!(
            cov.answered_fraction, exact,
            "compensated summation must recover all 10k terms"
        );
        assert!(!cov.is_complete());
        assert_eq!(cov.unreachable.len(), 10_001);
    }

    #[test]
    fn coverage_from_unreachable_clamps_and_preserves_order() {
        let cov = Coverage::from_unreachable(vec![0.7, 0.6]);
        assert_eq!(cov.answered_fraction, 0.0, "over-reported loss clamps");
        assert_eq!(cov.unreachable, vec![0.7, 0.6], "abandonment order kept");
        assert_eq!(Coverage::from_unreachable(Vec::new()), Coverage::full());
    }
}
