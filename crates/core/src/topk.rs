//! Top-k over RIPPLE (Section 4, Algorithms 4–9).
//!
//! The query is `(f, k)` for a unimodal scoring function `f` (higher is
//! better). The abstract state is the pair `(m, τ)`: "`m` tuples with score
//! at or above `τ` have already been retrieved". Pruning uses the region
//! upper bound `f⁺`: a link is irrelevant once `k` tuples are known and its
//! region cannot beat the current threshold.

use crate::exec::Executor;
use crate::framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::{kernels, KernelDispatch, Rect, ScoreFn, Tuple};
use ripple_net::{scan, LocalView, PeerId, PeerStore, QueryMetrics};
use ripple_verify::{Certificate, PruneWitness};

/// The `(m, τ)` state of top-k processing. Invariant: at least `m` tuples
/// with score `≥ τ` exist among the tuples examined so far.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKState {
    /// Number of qualifying tuples known.
    pub m: usize,
    /// Score threshold those tuples meet.
    pub tau: f64,
}

impl TopKState {
    /// The neutral state: zero tuples vacuously at threshold +∞. The
    /// threshold must start *high* because states merge by `min(τ_G, τ_L)`
    /// (Algorithm 5) — a low initial value would poison every later merge
    /// and disable pruning. While `m < k`, `isLinkRelevant` keeps all links
    /// alive regardless of the threshold.
    pub fn empty() -> Self {
        Self {
            m: 0,
            tau: f64::INFINITY,
        }
    }
}

/// A top-k query over rectangle regions.
pub struct TopKQuery<F> {
    /// The scoring function (provides `f` and `f⁺`).
    pub score: F,
    /// Number of results requested.
    pub k: usize,
}

impl<F: ScoreFn> TopKQuery<F> {
    /// Creates a top-k query.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(score: F, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { score, k }
    }

    /// Scores of the peer's tuples, best first.
    fn ranked<'t>(&self, tuples: &'t [Tuple]) -> Vec<(&'t Tuple, f64)> {
        let mut scored: Vec<(&Tuple, f64)> = tuples
            .iter()
            .map(|t| (t, self.score.score(&t.point)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
    }

    /// Algorithm 4 on an already-ranked score stream: count the qualifying
    /// prefix, top up while the global count falls short of `k`.
    ///
    /// Only the best `k` scores are ever inspected (`above ≤ k` before and
    /// after the top-up), so a lazy iterator from a cached projection makes
    /// this a truncated walk instead of a full sort.
    fn state_from_ranked(
        &self,
        scores_desc: impl Iterator<Item = f64>,
        total: usize,
        global: &TopKState,
    ) -> TopKState {
        let prefix: Vec<f64> = scores_desc.take(self.k).collect();
        let mut above: usize = prefix.iter().take_while(|s| **s >= global.tau).count();
        if global.m + above < self.k {
            let missing = self.k - global.m - above;
            above = (above + missing).min(total);
        }
        if above == 0 {
            // No local contribution: an infinitely high threshold over zero
            // tuples keeps `min(τ_G, τ_L)` and the local answer neutral.
            return TopKState {
                m: 0,
                tau: f64::INFINITY,
            };
        }
        TopKState {
            m: above,
            tau: prefix[above - 1],
        }
    }

    /// Algorithm 4 over the store's columnar mirror: score whole blocks
    /// through the [`ScoreFn::score_block`] kernel, keep the best `k` scores
    /// in a bounded heap, and skip any block whose region bound `f⁺` (over
    /// the block's bounding box) falls strictly below the current `k`-th
    /// best score. The heap minimum only ever rises, so a skipped block's
    /// scores all sit strictly below the *final* `k`-th value and cannot
    /// change the top-`k` score multiset — the resulting `(m, τ)` state is
    /// bit-identical to the scalar sort's.
    fn blocked_state(
        &self,
        store: &PeerStore,
        dispatch: KernelDispatch,
        global: &TopKState,
    ) -> TopKState {
        let blocks = store.blocks_at(dispatch);
        let mut heap = kernels::TopScores::new(self.k);
        let mut cols: Vec<&[f64]> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for b in 0..blocks.num_blocks() {
            if let Some(min) = heap.min() {
                let ub = self
                    .score
                    .upper_bound_corners(blocks.block_min(b), blocks.block_max(b));
                if ub < min {
                    scan::add_pruned(1);
                    continue;
                }
            }
            blocks.block_cols(b, &mut cols);
            self.score.score_block(&cols, &mut scores, dispatch);
            scan::add_scanned(blocks.block_live(b) as u64);
            scan::add_masked((blocks.block_rows(b) - blocks.block_live(b)) as u64);
            if blocks.is_memtable(b) {
                scan::add_memtable(blocks.block_live(b) as u64);
            }
            // The kernel scores every physical row (whole-column SIMD);
            // tombstoned rows are dropped at the offer, exactly like the
            // scalar path never sees them.
            match blocks.block_dead(b) {
                None => heap.offer_all(&scores),
                Some(dead) => {
                    for (off, &s) in scores.iter().enumerate() {
                        if !dead[off] {
                            heap.offer(s);
                        }
                    }
                }
            }
        }
        self.state_from_ranked(heap.into_sorted_desc().into_iter(), store.len(), global)
    }

    /// Algorithm 6 over the columnar mirror: a per-block threshold filter
    /// via [`kernels::filter_at_least`], skipping blocks whose upper bound
    /// falls strictly below `τ` — every row there scores `≤ f⁺ < τ` and
    /// would fail the scalar filter too. Rows are emitted in ascending
    /// store order, so the answer matches the scalar scan element for
    /// element.
    fn blocked_answer(
        &self,
        store: &PeerStore,
        dispatch: KernelDispatch,
        local: &TopKState,
    ) -> Vec<Tuple> {
        let blocks = store.blocks_at(dispatch);
        let mut cols: Vec<&[f64]> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        let mut idx: Vec<u32> = Vec::new();
        let mut answer = Vec::new();
        for b in 0..blocks.num_blocks() {
            let ub = self
                .score
                .upper_bound_corners(blocks.block_min(b), blocks.block_max(b));
            if ub < local.tau {
                scan::add_pruned(1);
                continue;
            }
            blocks.block_cols(b, &mut cols);
            self.score.score_block(&cols, &mut scores, dispatch);
            scan::add_scanned(blocks.block_live(b) as u64);
            scan::add_masked((blocks.block_rows(b) - blocks.block_live(b)) as u64);
            if blocks.is_memtable(b) {
                scan::add_memtable(blocks.block_live(b) as u64);
            }
            idx.clear();
            kernels::filter_at_least(dispatch, &scores, local.tau, &mut idx);
            let rows = blocks.block_tuples(b);
            let dead = blocks.block_dead(b);
            answer.extend(
                idx.iter()
                    .filter(|&&i| !dead.is_some_and(|d| d[i as usize]))
                    .map(|&i| rows[i as usize].clone()),
            );
        }
        answer
    }
}

impl<F: ScoreFn> RankQuery<Rect> for TopKQuery<F> {
    type Global = TopKState;
    type Local = TopKState;

    fn initial_global(&self) -> TopKState {
        TopKState::empty()
    }

    /// Algorithm 4: take up to `k` local tuples at or above the global
    /// threshold; if the global count still falls short of `k`, top up with
    /// the best remaining local tuples.
    ///
    /// On an indexed view with a cacheable score this is a truncated walk
    /// over the peer's memoised score projection; with a non-cacheable
    /// score it runs the blocked kernel scan over the store's columnar
    /// mirror; otherwise a scalar scan + sort.
    fn compute_local_state(&self, view: &LocalView<'_>, global: &TopKState) -> TopKState {
        if let Some(store) = view.store() {
            if let Some(state) = store.with_ranked_at(&self.score, view.dispatch(), |it| {
                self.state_from_ranked(it.map(|(_, s)| s), store.len(), global)
            }) {
                return state;
            }
        }
        if let Some((store, dispatch)) = view.blocked_store() {
            return self.blocked_state(store, dispatch, global);
        }
        let ranked = self.ranked(view.tuples());
        scan::add_scanned(ranked.len() as u64);
        self.state_from_ranked(ranked.iter().map(|(_, s)| *s), ranked.len(), global)
    }

    /// Algorithm 5, strengthened with the Algorithm 7 merge.
    ///
    /// The paper prints `(m_G + m_L, min(τ_G, τ_L))`. The plain `min` keeps
    /// the invariant but makes the threshold *monotonically non-improving*
    /// along a forwarding path: a peer that locally finds `k` excellent
    /// tuples cannot raise `τ` above an ancestor's poor threshold, so
    /// `isLinkRelevant` (Alg. 8) never gains pruning power and `fast`
    /// degenerates to a broadcast. Merging the two states with the
    /// `updateLocalState` rule instead (sort by threshold, accumulate counts
    /// until `k` — Alg. 7) is sound for the same reason Alg. 7 is: the
    /// global and local states describe disjoint tuple sets, and "`m_1`
    /// tuples ≥ τ_1 plus `m_2` tuples ≥ τ_2 ≥ τ_1" supports the threshold
    /// `τ_1` with `m_1 + m_2` tuples. This is strictly tighter than the
    /// printed `min` and is what gives the paper's Figure 4–6 behaviour.
    fn compute_global_state(&self, global: &TopKState, local: &TopKState) -> TopKState {
        RankQuery::<Rect>::update_local_state(self, vec![*global, *local])
    }

    /// Algorithm 7: find the highest threshold guaranteeing `k` tuples.
    fn update_local_state(&self, mut states: Vec<TopKState>) -> TopKState {
        states.sort_by(|a, b| b.tau.total_cmp(&a.tau));
        let mut m = 0;
        let mut tau = f64::INFINITY;
        for s in &states {
            if s.m == 0 {
                continue;
            }
            m += s.m;
            tau = s.tau;
            if m >= self.k {
                break;
            }
        }
        if m == 0 {
            return TopKState {
                m: 0,
                tau: f64::INFINITY,
            };
        }
        TopKState { m, tau }
    }

    /// Algorithm 6: every local tuple at or above the local threshold.
    ///
    /// Indexed path: walk the cached projection best-first and stop at the
    /// first score below `τ` — same tuple set as the scan, different order
    /// (the initiator re-sorts, and metrics count only lengths).
    fn compute_local_answer(&self, view: &LocalView<'_>, local: &TopKState) -> Vec<Tuple> {
        if local.m == 0 {
            return Vec::new();
        }
        if let Some(store) = view.store() {
            if let Some(answer) = store.with_ranked_at(&self.score, view.dispatch(), |it| {
                it.take_while(|(_, s)| *s >= local.tau)
                    .map(|(t, _)| t.clone())
                    .collect::<Vec<Tuple>>()
            }) {
                return answer;
            }
        }
        if let Some((store, dispatch)) = view.blocked_store() {
            return self.blocked_answer(store, dispatch, local);
        }
        scan::add_scanned(view.tuples().len() as u64);
        view.tuples()
            .iter()
            .filter(|t| self.score.score(&t.point) >= local.tau)
            .cloned()
            .collect()
    }

    /// Algorithm 8: relevant while short of `k` or the region can beat `τ`.
    fn is_link_relevant(&self, region: &Rect, global: &TopKState) -> bool {
        global.m < self.k || self.score.upper_bound(region) >= global.tau
    }

    /// Algorithm 9: regions with higher `f⁺` first.
    fn priority(&self, region: &Rect) -> f64 {
        self.score.upper_bound(region)
    }

    /// The pruned region's `f⁺`: the certificate checker recomputes it from
    /// the region boxes and requires it below the final `τ` (Alg. 8 run in
    /// reverse).
    fn prune_witness(&self, region: &Rect, _global: &TopKState) -> PruneWitness {
        PruneWitness::ScoreBound {
            bound: self.score.upper_bound(region),
        }
    }
}

/// Top-k over *multi-segment* regions (e.g. ring arcs that wrap the origin,
/// represented as up to two disjoint intervals). A segmented region is
/// relevant if any of its segments is, and its priority is the best segment
/// bound — this is what lets the same [`TopKQuery`] run unchanged over
/// Chord, demonstrating the framework's substrate-genericity (Section 3.1).
impl<F: ScoreFn> RankQuery<Vec<Rect>> for TopKQuery<F> {
    type Global = TopKState;
    type Local = TopKState;

    fn initial_global(&self) -> TopKState {
        RankQuery::<Rect>::initial_global(self)
    }

    fn compute_local_state(&self, view: &LocalView<'_>, global: &TopKState) -> TopKState {
        RankQuery::<Rect>::compute_local_state(self, view, global)
    }

    fn compute_global_state(&self, global: &TopKState, local: &TopKState) -> TopKState {
        RankQuery::<Rect>::compute_global_state(self, global, local)
    }

    fn update_local_state(&self, states: Vec<TopKState>) -> TopKState {
        RankQuery::<Rect>::update_local_state(self, states)
    }

    fn compute_local_answer(&self, view: &LocalView<'_>, local: &TopKState) -> Vec<Tuple> {
        RankQuery::<Rect>::compute_local_answer(self, view, local)
    }

    fn is_link_relevant(&self, region: &Vec<Rect>, global: &TopKState) -> bool {
        region
            .iter()
            .any(|seg| RankQuery::<Rect>::is_link_relevant(self, seg, global))
    }

    fn priority(&self, region: &Vec<Rect>) -> f64 {
        region
            .iter()
            .map(|seg| self.score.upper_bound(seg))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The best `f⁺` over the segments — the same maximum the checker
    /// recomputes from the certificate's segment boxes.
    fn prune_witness(&self, region: &Vec<Rect>, _global: &TopKState) -> PruneWitness {
        PruneWitness::ScoreBound {
            bound: region
                .iter()
                .map(|seg| self.score.upper_bound(seg))
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Runs a top-k query and extracts the final answer at the initiator: the
/// `k` best received tuples, best first.
///
/// When the score is unimodal with a known peak and the substrate supports
/// point lookups, the query is first *routed to the peer owning the peak*
/// (an ordinary DHT lookup, charged to the metrics), and processing ripples
/// outward from there. Starting at the most promising peer is what lets the
/// very first local state carry a tight threshold — without it, the
/// initiator's arbitrary local tuples anchor the threshold and `fast`
/// degenerates toward a broadcast.
pub fn run_topk<O, F>(
    net: &O,
    initiator: PeerId,
    score: F,
    k: usize,
    mode: Mode,
) -> (Vec<Tuple>, QueryMetrics)
where
    O: RippleOverlay,
    F: ScoreFn,
    TopKQuery<F>: RankQuery<O::Region>,
{
    let (answers, metrics, _) = run_topk_with(&Executor::new(net), initiator, score, k, mode);
    (answers, metrics)
}

/// Runs a top-k query through a pre-configured executor — typically a
/// fault-aware one ([`Executor::with_faults`]) — additionally returning the
/// coverage report, so degraded answers are never mistaken for complete
/// ones. With a default executor this is exactly [`run_topk`].
pub fn run_topk_with<O, F>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    score: F,
    k: usize,
    mode: Mode,
) -> (Vec<Tuple>, QueryMetrics, Coverage)
where
    O: RippleOverlay,
    F: ScoreFn,
    TopKQuery<F>: RankQuery<O::Region>,
{
    let (answers, metrics, coverage, _) = run_topk_certified(exec, initiator, score, k, mode);
    (answers, metrics, coverage)
}

/// [`run_topk_with`], additionally returning the answer certificate (when
/// the executor emits them — see [`Executor::without_certificates`]), so the
/// caller can hand answer + certificate to `ripple-verify`'s `verify_topk`
/// as an independent second oracle.
pub fn run_topk_certified<O, F>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    score: F,
    k: usize,
    mode: Mode,
) -> (Vec<Tuple>, QueryMetrics, Coverage, Option<Certificate>)
where
    O: RippleOverlay,
    F: ScoreFn,
    TopKQuery<F>: RankQuery<O::Region>,
{
    let query = TopKQuery::new(score, k);
    let (start, route_hops) = route_to_peak(exec.network(), initiator, &query.score, mode);
    let outcome = exec.run(start, &query, mode);
    finish_topk(&query, outcome, route_hops)
}

/// [`run_topk_certified`] on the parallel intra-query executor: identical
/// routing and initiator post-processing around [`Executor::run_parallel`],
/// so the outcome — answers, ledger, coverage, certificate — is
/// bit-identical to the sequential runner's for any thread count (the
/// serving layer's N drivers × M workers composition relies on this).
pub fn run_topk_certified_par<O, F>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    score: F,
    k: usize,
    mode: Mode,
    threads: usize,
) -> (Vec<Tuple>, QueryMetrics, Coverage, Option<Certificate>)
where
    O: RippleOverlay + Sync,
    O::Region: Send,
    F: ScoreFn,
    TopKQuery<F>: RankQuery<O::Region> + Sync,
    <TopKQuery<F> as RankQuery<O::Region>>::Global: Send + Sync,
    <TopKQuery<F> as RankQuery<O::Region>>::Local: Send,
{
    let query = TopKQuery::new(score, k);
    let (start, route_hops) = route_to_peak(exec.network(), initiator, &query.score, mode);
    let outcome = exec.run_parallel(start, &query, mode, threads);
    finish_topk(&query, outcome, route_hops)
}

/// Resolves the processing start peer: for a unimodal score on a routable
/// substrate the query first travels to the peak owner (an ordinary DHT
/// lookup); broadcasts and peakless scores start at the initiator.
fn route_to_peak<O: RippleOverlay, F: ScoreFn>(
    net: &O,
    initiator: PeerId,
    score: &F,
    mode: Mode,
) -> (PeerId, u32) {
    match score
        .peak_point()
        .and_then(|p| net.route_lookup(initiator, &p))
    {
        Some((owner, hops)) if mode != Mode::Broadcast => (owner, hops),
        _ => (initiator, 0),
    }
}

/// Initiator-side post-processing shared by the sequential and parallel
/// runners: charge the routing transit, rank and dedup the answer stream,
/// truncate to `k`.
fn finish_topk<F: ScoreFn, L>(
    query: &TopKQuery<F>,
    outcome: QueryOutcome<L>,
    route_hops: u32,
) -> (Vec<Tuple>, QueryMetrics, Coverage, Option<Certificate>) {
    let QueryOutcome {
        mut answers,
        mut metrics,
        coverage,
        certificate,
        ..
    } = outcome;
    // Routing transit forwards the lookup but does not process the query:
    // hops count as messages and latency, not as peer visits.
    metrics.latency += route_hops as u64;
    metrics.query_messages += route_hops as u64;
    answers.sort_by(|a, b| {
        query
            .score
            .score(&b.point)
            .total_cmp(&query.score.score(&a.point))
            .then_with(|| a.id.cmp(&b.id))
    });
    answers.dedup_by_key(|t| t.id);
    answers.truncate(query.k);
    (answers, metrics, coverage, certificate)
}

/// Reference answer: centralized top-k over a full dataset (test oracle and
/// initiator-side post-processing building block).
pub fn centralized_topk<F: ScoreFn>(tuples: &[Tuple], score: &F, k: usize) -> Vec<Tuple> {
    let mut all: Vec<Tuple> = tuples.to_vec();
    all.sort_by(|a, b| {
        score
            .score(&b.point)
            .total_cmp(&score.score(&a.point))
            .then_with(|| a.id.cmp(&b.id))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_geom::LinearScore;

    fn t(id: u64, c: &[f64]) -> Tuple {
        Tuple::new(id, c.to_vec())
    }

    fn q(k: usize) -> TopKQuery<LinearScore> {
        TopKQuery::new(LinearScore::uniform(2), k)
    }

    #[test]
    fn local_state_takes_top_k() {
        let query = q(2);
        let tuples = vec![t(1, &[0.9, 0.9]), t(2, &[0.1, 0.1]), t(3, &[0.5, 0.5])];
        let s = RankQuery::<Rect>::compute_local_state(
            &query,
            &LocalView::Plain(&tuples),
            &TopKState::empty(),
        );
        assert_eq!(s.m, 2);
        assert!(
            (s.tau - 1.0).abs() < 1e-12,
            "threshold is the 2nd best score"
        );
    }

    #[test]
    fn local_state_respects_global_threshold() {
        let query = q(2);
        let tuples = vec![t(1, &[0.9, 0.9]), t(2, &[0.1, 0.1])];
        // two tuples already known globally at τ = 1.5
        let g = TopKState { m: 2, tau: 1.5 };
        let s = RankQuery::<Rect>::compute_local_state(&query, &LocalView::Plain(&tuples), &g);
        assert_eq!(s.m, 1, "only the 1.8-scoring tuple beats τ");
        assert!((s.tau - 1.8).abs() < 1e-12);
    }

    #[test]
    fn local_state_tops_up_when_global_short() {
        let query = q(3);
        let tuples = vec![t(1, &[0.4, 0.4]), t(2, &[0.2, 0.2])];
        let g = TopKState {
            m: 1,
            tau: 1.9, // one excellent tuple known, but we need 3
        };
        let s = RankQuery::<Rect>::compute_local_state(&query, &LocalView::Plain(&tuples), &g);
        assert_eq!(s.m, 2, "both local tuples are needed to reach k");
        assert!((s.tau - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_peer_is_neutral() {
        let query = q(2);
        let s = RankQuery::<Rect>::compute_local_state(
            &query,
            &LocalView::Plain(&[]),
            &TopKState::empty(),
        );
        assert_eq!(s.m, 0);
        let g = RankQuery::<Rect>::compute_global_state(&query, &TopKState { m: 2, tau: 0.7 }, &s);
        assert_eq!(g.m, 2);
        assert_eq!(g.tau, 0.7);
        assert!(
            RankQuery::<Rect>::compute_local_answer(&query, &LocalView::Plain(&[]), &s).is_empty()
        );
    }

    #[test]
    fn merge_finds_highest_threshold_with_k() {
        let query = q(7);
        let merged = RankQuery::<Rect>::update_local_state(
            &query,
            vec![
                TopKState { m: 5, tau: 0.9 },
                TopKState { m: 3, tau: 0.85 },
                TopKState { m: 5, tau: 0.8 },
            ],
        );
        assert_eq!(merged.m, 8);
        assert!((merged.tau - 0.85).abs() < 1e-12);
    }

    #[test]
    fn merge_with_insufficient_total() {
        let query = q(10);
        let merged = RankQuery::<Rect>::update_local_state(
            &query,
            vec![TopKState { m: 2, tau: 0.9 }, TopKState { m: 3, tau: 0.5 }],
        );
        assert_eq!(merged.m, 5);
        assert!((merged.tau - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relevance_pruning() {
        let query = q(1);
        let region = Rect::new(vec![0.0, 0.0], vec![0.3, 0.3]); // f⁺ = 0.6
        assert!(
            RankQuery::<Rect>::is_link_relevant(&query, &region, &TopKState { m: 0, tau: 1.5 }),
            "still short of k"
        );
        assert!(
            !RankQuery::<Rect>::is_link_relevant(&query, &region, &TopKState { m: 1, tau: 1.5 }),
            "k reached and the region cannot beat τ"
        );
        assert!(RankQuery::<Rect>::is_link_relevant(
            &query,
            &region,
            &TopKState { m: 1, tau: 0.5 }
        ));
    }

    #[test]
    fn priority_orders_by_upper_bound() {
        let query = q(1);
        let good = Rect::new(vec![0.5, 0.5], vec![1.0, 1.0]);
        let bad = Rect::new(vec![0.0, 0.0], vec![0.4, 0.4]);
        assert!(
            RankQuery::<Rect>::priority(&query, &good) > RankQuery::<Rect>::priority(&query, &bad)
        );
    }

    #[test]
    fn centralized_oracle() {
        let score = LinearScore::uniform(2);
        let data = vec![t(1, &[0.9, 0.9]), t(2, &[0.1, 0.1]), t(3, &[0.5, 0.5])];
        let top = centralized_topk(&data, &score, 2);
        assert_eq!(top.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 3]);
    }
}
