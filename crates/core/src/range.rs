//! Range queries as a RIPPLE instantiation.
//!
//! The paper's introduction contrasts rank queries with range queries,
//! whose search area is *explicitly defined in the query* ("all objects
//! within a particular range"). In RIPPLE terms a range query is the
//! degenerate instantiation with **no state at all**: a link is relevant
//! exactly when its region overlaps the requested box, every overlapped
//! peer answers its local matches, and no information needs to flow between
//! branches — `fast` is always the right mode and `slow` buys nothing.
//! Implementing it through the same six abstract functions both documents
//! that contrast and gives the library a useful primitive.

use crate::exec::Executor;
use crate::framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::{Rect, Tuple};
use ripple_net::{LocalView, PeerId, QueryMetrics};
use ripple_verify::{Certificate, PruneWitness};

/// A range query: retrieve every tuple inside `range`.
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// The requested box.
    pub range: Rect,
}

impl RangeQuery {
    /// Creates a range query.
    pub fn new(range: Rect) -> Self {
        Self { range }
    }
}

impl RankQuery<Rect> for RangeQuery {
    /// Range queries carry no evolving state.
    type Global = ();
    type Local = ();

    fn initial_global(&self) {}

    fn compute_local_state(&self, _view: &LocalView<'_>, _global: &()) {}

    fn compute_global_state(&self, _global: &(), _local: &()) {}

    fn update_local_state(&self, _states: Vec<()>) {}

    /// Every local tuple inside the requested box.
    fn compute_local_answer(&self, view: &LocalView<'_>, _local: &()) -> Vec<Tuple> {
        view.tuples()
            .iter()
            .filter(|t| self.range.contains(&t.point))
            .cloned()
            .collect()
    }

    /// The search area is explicit: only overlap matters.
    fn is_link_relevant(&self, region: &Rect, _global: &()) -> bool {
        region.intersects(&self.range)
    }

    /// All relevant links are equal — there is nothing to prioritise.
    fn priority(&self, _region: &Rect) -> f64 {
        0.0
    }

    /// Pruned regions are exactly the ones disjoint from the requested box;
    /// the checker re-tests the disjointness geometrically.
    fn prune_witness(&self, _region: &Rect, _global: &()) -> PruneWitness {
        PruneWitness::Disjoint
    }
}

/// Runs a range query (always `fast`: with no state to refine, waiting
/// cannot reduce communication). Returns the matches sorted by id.
pub fn run_range<O>(net: &O, initiator: PeerId, range: Rect) -> (Vec<Tuple>, QueryMetrics)
where
    O: RippleOverlay<Region = Rect>,
{
    let (answers, metrics, _, _) = run_range_certified(&Executor::new(net), initiator, range);
    (answers, metrics)
}

/// [`run_range`] through a pre-configured executor, additionally returning
/// the coverage report and the answer certificate for `ripple-verify`'s
/// `verify_range`.
pub fn run_range_certified<O>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    range: Rect,
) -> (Vec<Tuple>, QueryMetrics, Coverage, Option<Certificate>)
where
    O: RippleOverlay<Region = Rect>,
{
    let query = RangeQuery::new(range);
    let QueryOutcome {
        mut answers,
        metrics,
        coverage,
        certificate,
        ..
    } = exec.run(initiator, &query, Mode::Fast);
    answers.sort_by_key(|t| t.id);
    answers.dedup_by_key(|t| t.id);
    (answers, metrics, coverage, certificate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_midas::MidasNetwork;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};

    #[test]
    fn range_returns_exactly_the_contained_tuples() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = MidasNetwork::build(2, 64, false, &mut rng);
        let data: Vec<Tuple> = (0..400u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]))
            .collect();
        net.insert_all(data.clone());
        let range = Rect::new(vec![0.2, 0.3], vec![0.6, 0.7]);
        let initiator = net.random_peer(&mut rng);
        let (got, metrics) = run_range(&net, initiator, range.clone());
        let mut want: Vec<u64> = data
            .iter()
            .filter(|t| range.contains(&t.point))
            .map(|t| t.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got.iter().map(|t| t.id).collect::<Vec<_>>(), want);
        assert!(metrics.latency <= net.delta() as u64);
    }

    #[test]
    fn small_ranges_touch_few_peers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut net = MidasNetwork::build(2, 256, false, &mut rng);
        for i in 0..800u64 {
            net.insert_tuple(Tuple::new(i, vec![rng.gen(), rng.gen()]));
        }
        let tiny = Rect::new(vec![0.40, 0.40], vec![0.45, 0.45]);
        let initiator = net.random_peer(&mut rng);
        let (_, m) = run_range(&net, initiator, tiny);
        assert!(
            (m.peers_visited as usize) < net.peer_count() / 4,
            "a tiny range must not sweep the network ({} of {})",
            m.peers_visited,
            net.peer_count()
        );
    }

    #[test]
    fn whole_domain_range_is_a_broadcast() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = MidasNetwork::build(2, 32, false, &mut rng);
        let initiator = net.random_peer(&mut rng);
        let (_, m) = run_range(&net, initiator, Rect::unit(2));
        assert_eq!(m.peers_visited as usize, net.peer_count());
    }

    #[test]
    fn empty_region_returns_nothing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut net = MidasNetwork::build(2, 16, false, &mut rng);
        net.insert_tuple(Tuple::new(1, vec![0.9, 0.9]));
        let initiator = net.random_peer(&mut rng);
        let (got, _) = run_range(&net, initiator, Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]));
        assert!(got.is_empty());
    }
}
