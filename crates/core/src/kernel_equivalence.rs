//! Equivalence suite for the columnar block layer and its scan kernels.
//!
//! The block mirror is a *data layout*, not a semantics change: an executor
//! running the blocked kernel paths ([`Executor::new`], blocks on by
//! default) and one with the mirror disabled
//! ([`Executor::without_blocks`], indexed views degrade to
//! `LocalView::IndexedScalar`) must produce
//!
//! 1. **identical answer streams, element for element** — the blocked top-k
//!    τ-filter emits rows in ascending store order exactly like the scalar
//!    filter, and the blocked constrained-skyline fold reproduces the
//!    scalar skyline-then-thin set in canonical order;
//! 2. **bit-identical cost ledgers** — the kernels perform the same
//!    floating-point operations in the same order as their scalar
//!    references, and block pruning only skips blocks that provably cannot
//!    contribute (`QueryMetrics` equality excludes the data-plane scan
//!    counters, which are *expected* to differ: that is the optimisation);
//! 3. **identical coverage**, under fault planes and replica failover.
//!
//! The checks run the `AdHoc` score wrapper (no cache key, so top-k takes
//! the blocked kernel scan instead of the memoised projection) alongside
//! cacheable scores (whose projections are *rebuilt* through the kernels),
//! across every mode, fault plane, and the parallel engine — and repeat
//! under churn so generation bumps invalidate and rebuild the mirror.
//!
//! The Chord-side twin lives in `ripple-chord`'s `tests/kernels.rs`.

use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::SkylineQuery;
use crate::topk::TopKQuery;
use ripple_geom::{AdHoc, LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 5] = [
    Mode::Fast,
    Mode::Broadcast,
    Mode::Ripple(1),
    Mode::Ripple(2),
    Mode::Slow,
];
const THREADS: [usize; 2] = [2, 4];

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.insert_tuple(t);
    }
    (net, rng)
}

/// The fault settings the blocked paths must be invisible under: none, and
/// drops with retries (whose failover recovery paths call the query
/// functions over replica views).
fn planes() -> [FaultPlane; 2] {
    [FaultPlane::none(), FaultPlane::drops(0.15, 17)]
}

/// Runs `query` through the blocked and the block-free executor under every
/// plane × mode (sequential and parallel) and asserts observational
/// equality.
fn assert_blocked_invisible<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
where
    Q: RankQuery<Rect> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    for plane in planes() {
        for mode in MODES {
            let initiator = net.random_peer(rng);
            let blocked = Executor::with_faults(net, plane, 7);
            let scalar = Executor::with_faults(net, plane, 7).without_blocks();
            let b = blocked.run(initiator, query, mode);
            let s = scalar.run(initiator, query, mode);
            assert_eq!(
                b.metrics, s.metrics,
                "{label} [{mode:?}, drop_p={}]: blocked and scalar ledgers must be \
                 bit-identical (incl. the visit sequence)",
                plane.drop_probability
            );
            assert_eq!(
                b.answers, s.answers,
                "{label} [{mode:?}]: answer streams must be identical, element for element"
            );
            assert_eq!(b.coverage, s.coverage, "{label} [{mode:?}]: coverage");
            assert_eq!(
                b.certificate, s.certificate,
                "{label} [{mode:?}]: the data layout must not leak into the certificate"
            );
            for threads in THREADS {
                let bp = blocked.run_parallel(initiator, query, mode, threads);
                assert_eq!(
                    b.metrics, bp.metrics,
                    "{label} [{mode:?}, {threads} threads]: parallel blocked ledger"
                );
                assert_eq!(
                    b.answers, bp.answers,
                    "{label} [{mode:?}, {threads} threads]: parallel blocked answers"
                );
                assert_eq!(b.coverage, bp.coverage, "{label} [{mode:?}]: coverage");
                assert_eq!(
                    b.certificate, bp.certificate,
                    "{label} [{mode:?}, {threads} threads]: parallel blocked certificate"
                );
            }
        }
    }
}

/// The query battery: ad-hoc (kernel-scanned) and cacheable (projection)
/// score families for top-k, with small and large `k` so both the
/// heap-pruning and the `m < k` top-up paths run, plus unconstrained and
/// constrained skyline (the latter is the blocked fold path).
fn check_all_queries(net: &MidasNetwork, dims: usize, rng: &mut SmallRng) {
    for k in [1usize, 8, 64] {
        let q = TopKQuery::new(AdHoc(LinearScore::uniform(dims)), k);
        assert_blocked_invisible(net, &q, rng, &format!("topk-adhoc-linear k={k}"));
    }
    let peak: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
    let q = TopKQuery::new(AdHoc(PeakScore::new(peak, Norm::L2)), 8);
    assert_blocked_invisible(net, &q, rng, "topk-adhoc-peak");
    let q = TopKQuery::new(LinearScore::uniform(dims), 8);
    assert_blocked_invisible(net, &q, rng, "topk-cached-linear");
    assert_blocked_invisible(net, &SkylineQuery::new(), rng, "skyline");
    let c = Rect::new(vec![0.15; dims], vec![0.85; dims]);
    assert_blocked_invisible(
        net,
        &SkylineQuery::constrained(c),
        rng,
        "skyline-constrained",
    );
}

#[test]
fn blocked_equals_scalar_on_static_networks() {
    for (dims, peers, tuples, seed) in [(2, 40, 2200, 51u64), (4, 24, 1600, 52)] {
        let (net, mut rng) = loaded_net(dims, peers, tuples, seed);
        check_all_queries(&net, dims, &mut rng);
    }
}

#[test]
fn blocked_equals_scalar_under_churn() {
    let dims = 3;
    let (mut net, mut rng) = loaded_net(dims, 20, 1200, 53);
    let mut next_id = 1200u64;
    for round in 0..3 {
        // Inserts bump store generations: stale mirrors must be rebuilt,
        // never consulted.
        for _ in 0..50 {
            let t = Tuple::new(
                next_id,
                (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>(),
            );
            next_id += 1;
            net.insert_tuple(t);
        }
        // Splits drain tuples across stores; departures re-insert them.
        let key = ripple_geom::Point::new((0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.join(&key);
        if round % 2 == 1 {
            let victim = net.random_peer(&mut rng);
            net.leave(victim);
        }
        net.check_invariants();
        let q = TopKQuery::new(AdHoc(LinearScore::uniform(dims)), 8);
        assert_blocked_invisible(&net, &q, &mut rng, "churn topk-adhoc");
        let c = Rect::new(vec![0.1; dims], vec![0.9; dims]);
        assert_blocked_invisible(
            &net,
            &SkylineQuery::constrained(c),
            &mut rng,
            "churn skyline-constrained",
        );
    }
}

/// Runs `query` under a forced-scalar and a forced-SIMD executor across
/// every plane × mode, sequential and parallel, and asserts the two
/// dispatch arms are observationally identical: same answers element for
/// element, bit-identical ledgers (the SIMD kernels are required to
/// reproduce the scalar reference's floating-point results exactly), same
/// coverage. On hosts without a vector unit `ForcedSimd` degrades to
/// scalar, so the test stays meaningful (trivially) everywhere; CI also
/// drives both arms through the `RIPPLE_KERNEL_DISPATCH` override.
fn assert_dispatch_invisible<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
where
    Q: RankQuery<Rect> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    use ripple_geom::KernelDispatch;
    for plane in planes() {
        for mode in MODES {
            let initiator = net.random_peer(rng);
            let scalar_exec =
                Executor::with_faults(net, plane, 7).with_dispatch(KernelDispatch::ForcedScalar);
            let simd_exec =
                Executor::with_faults(net, plane, 7).with_dispatch(KernelDispatch::ForcedSimd);
            let s = scalar_exec.run(initiator, query, mode);
            let v = simd_exec.run(initiator, query, mode);
            assert_eq!(
                s.metrics, v.metrics,
                "{label} [{mode:?}, drop_p={}]: forced-scalar and forced-simd ledgers \
                 must be bit-identical",
                plane.drop_probability
            );
            assert_eq!(
                s.answers, v.answers,
                "{label} [{mode:?}]: dispatch arms must emit identical answer streams"
            );
            assert_eq!(s.coverage, v.coverage, "{label} [{mode:?}]: coverage");
            assert_eq!(
                s.certificate, v.certificate,
                "{label} [{mode:?}]: dispatch arms must emit bit-identical certificates \
                 (the bound witnesses are control-plane folds, never SIMD-kernel output)"
            );
            for threads in THREADS {
                let vp = simd_exec.run_parallel(initiator, query, mode, threads);
                assert_eq!(
                    s.metrics, vp.metrics,
                    "{label} [{mode:?}, {threads} threads]: parallel simd ledger"
                );
                assert_eq!(
                    s.answers, vp.answers,
                    "{label} [{mode:?}, {threads} threads]: parallel simd answers"
                );
                assert_eq!(
                    s.certificate, vp.certificate,
                    "{label} [{mode:?}, {threads} threads]: parallel simd certificate"
                );
            }
        }
    }
}

#[test]
fn forced_simd_equals_forced_scalar_across_modes_and_planes() {
    // 4-d exercises full vector lanes plus a tail on AVX2; 3-d is all-tail.
    for (dims, peers, tuples, seed) in [(3, 28, 1800, 61u64), (4, 24, 1600, 62)] {
        let (net, mut rng) = loaded_net(dims, peers, tuples, seed);
        for k in [1usize, 8, 64] {
            let q = TopKQuery::new(AdHoc(LinearScore::uniform(dims)), k);
            assert_dispatch_invisible(&net, &q, &mut rng, &format!("topk-adhoc-linear k={k}"));
        }
        let peak: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
        let q = TopKQuery::new(AdHoc(PeakScore::new(peak, Norm::L2)), 8);
        assert_dispatch_invisible(&net, &q, &mut rng, "topk-adhoc-peak");
        assert_dispatch_invisible(&net, &SkylineQuery::new(), &mut rng, "skyline");
        let c = Rect::new(vec![0.15; dims], vec![0.85; dims]);
        assert_dispatch_invisible(
            &net,
            &SkylineQuery::constrained(c),
            &mut rng,
            "skyline-constrained",
        );
    }
}

#[test]
fn planner_runs_are_dispatch_invariant() {
    use crate::planner::{run_planned, PlanInputs, Planner, QueryHint};
    use ripple_geom::KernelDispatch;
    let (net, mut rng) = loaded_net(4, 24, 1600, 63);
    let exec_s = Executor::new(&net).with_dispatch(KernelDispatch::ForcedScalar);
    let exec_v = Executor::new(&net).with_dispatch(KernelDispatch::ForcedSimd);
    let query = TopKQuery::new(AdHoc(LinearScore::uniform(4)), 8);
    let inputs = PlanInputs {
        peers: net.peer_count(),
        delta: net.delta(),
        hint: QueryHint::TopK { k: 8 },
    };
    // Separate planners, same deterministic probe order: both arms must
    // walk the same plan sequence (wall-clock feedback may differ, but the
    // message/latency EWMAs that dominate the choice are bit-identical).
    let mut planner_s = Planner::new(1);
    let mut planner_v = Planner::new(1);
    let initiator = net.random_peer(&mut rng);
    for round in 0..6 {
        let s = run_planned(&mut planner_s, &exec_s, initiator, &query, &inputs);
        let v = run_planned(&mut planner_v, &exec_v, initiator, &query, &inputs);
        let (ps, pv) = (
            s.metrics.plan.clone().expect("plan stamped"),
            v.metrics.plan.clone().expect("plan stamped"),
        );
        // Probe rounds are fully deterministic; afterwards the choice could
        // in principle diverge on wall-clock noise, so only pin the probes.
        if ps.source == ripple_net::PlanSource::Probe {
            assert_eq!(ps, pv, "round {round}: probe sequences must match");
            assert_eq!(s.answers, v.answers, "round {round}");
            assert_eq!(s.metrics, v.metrics, "round {round}: ledgers");
        }
        // Each arm's planned run must be bit-identical to a static run of
        // whatever mode its planner picked, on the *opposite* dispatch arm
        // (this is dispatch- and planner-invisibility at once).
        let s_static = exec_v.run(initiator, &query, ps.mode.into());
        assert_eq!(s.answers, s_static.answers, "round {round}: planned≡static");
        assert_eq!(
            s.metrics, s_static.metrics,
            "round {round}: planned≡static ledgers"
        );
        let v_static = exec_s.run(initiator, &query, pv.mode.into());
        assert_eq!(v.answers, v_static.answers, "round {round}: planned≡static");
        assert_eq!(
            v.metrics, v_static.metrics,
            "round {round}: planned≡static ledgers"
        );
    }
}

#[test]
fn scan_counters_report_blocked_work() {
    // Two identical networks (same build seed): one queried through the
    // blocked executor, one through the block-free one, so the baseline's
    // stores never hold a mirror warm enough to reuse.
    let (net_b, mut rng) = loaded_net(2, 32, 4000, 57);
    let (net_s, _) = loaded_net(2, 32, 4000, 57);
    let q = TopKQuery::new(AdHoc(LinearScore::new(vec![0.9, 0.1])), 4);
    let initiator = net_b.random_peer(&mut rng);
    let b = Executor::new(&net_b).run(initiator, &q, Mode::Fast);
    let s = Executor::new(&net_s)
        .without_blocks()
        .run(initiator, &q, Mode::Fast);
    assert!(
        b.metrics.tuples_scanned > 0,
        "blocked run must report data-plane work"
    );
    assert!(
        s.metrics.blocks_pruned == 0,
        "the scalar path never prunes blocks"
    );
    assert!(
        b.metrics.blocks_pruned > 0,
        "a selective top-k over thousands of tuples must prune whole blocks"
    );
    assert!(
        b.metrics.tuples_scanned < s.metrics.tuples_scanned,
        "pruned blocks are rows the blocked scan never touched \
         (blocked {} vs scalar {})",
        b.metrics.tuples_scanned,
        s.metrics.tuples_scanned
    );
    // The optimisation changes the work accounting and nothing else.
    assert_eq!(b.metrics, s.metrics, "ledgers (excl. scan counters)");
    assert_eq!(b.answers, s.answers);
}

#[test]
fn tracing_off_reports_zero_scan_work() {
    let (net, mut rng) = loaded_net(2, 16, 800, 58);
    let q = TopKQuery::new(AdHoc(LinearScore::uniform(2)), 4);
    let initiator = net.random_peer(&mut rng);
    let on = Executor::new(&net).run(initiator, &q, Mode::Fast);
    let off = Executor::new(&net)
        .without_trace()
        .run(initiator, &q, Mode::Fast);
    assert!(on.metrics.tuples_scanned > 0);
    assert_eq!(off.metrics.tuples_scanned, 0, "no brackets, no accounting");
    assert_eq!(off.metrics.blocks_pruned, 0);
    assert_eq!(on.answers, off.answers);
}
