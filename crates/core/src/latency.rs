//! Worst-case latency recurrences for RIPPLE over MIDAS (Section 3.2).
//!
//! With MIDAS, regions and restriction areas are subtrees, so the
//! restriction parameter can be replaced by the depth `δ` of the subtree
//! being processed (Δ = overlay depth):
//!
//! * Lemma 1: `L_fast(δ) = Δ − δ`
//! * Lemma 2: `L_slow(δ) = 2^(Δ−δ) − 1`
//! * Lemma 3: `L_r(δ, r) = 1 + L_r(δ+1, r) + L_r(δ+1, r−1)` with
//!   `L_r(δ, 0) = Δ − δ` and `L_r(Δ, r) = 0`.
//!
//! These functions evaluate the recurrences exactly; the empirical
//! worst-case tests drive adversarial queries against them, and the
//! `figures lemmas` experiment prints the analytic table the paper derives
//! closed forms from (`L_r(δ,1) = ½(Δ−δ)² + ½(Δ−δ)`, …).

/// Lemma 1: worst-case latency of Algorithm 1 (`fast`) on a depth-`delta`
/// restriction in an overlay of depth `Delta`.
pub fn fast_worst_case(delta_total: u32, delta: u32) -> u64 {
    assert!(delta <= delta_total);
    (delta_total - delta) as u64
}

/// Lemma 2: worst-case latency of Algorithm 2 (`slow`).
pub fn slow_worst_case(delta_total: u32, delta: u32) -> u64 {
    assert!(delta <= delta_total);
    (1u64 << (delta_total - delta)) - 1
}

/// Lemma 3: worst-case latency of Algorithm 3 (`ripple(r)`), evaluated by
/// dynamic programming over the recurrence.
pub fn ripple_worst_case(delta_total: u32, delta: u32, r: u32) -> u64 {
    assert!(delta <= delta_total);
    let d = delta_total as usize;
    // table[depth][budget]
    let budgets = (r as usize).min(d) + 1;
    let mut table = vec![vec![0u64; budgets]; d + 1];
    for depth in (0..=d).rev() {
        for budget in 0..budgets {
            table[depth][budget] = if depth == d {
                0
            } else if budget == 0 {
                (d - depth) as u64
            } else {
                1 + table[depth + 1][budget] + table[depth + 1][budget - 1]
            };
        }
    }
    table[delta as usize][(r as usize).min(d)]
}

/// The paper's closed form for `r = 1`: `½(Δ−δ)² + ½(Δ−δ)`.
pub fn ripple_r1_closed_form(delta_total: u32, delta: u32) -> u64 {
    let x = (delta_total - delta) as u64;
    (x * x + x) / 2
}

/// Closed form for `r = 2` derived from the Lemma 3 recurrence:
/// `L_r(δ,2) = ((Δ−δ)³ + 5(Δ−δ)) / 6`.
///
/// Note: the paper prints `⅙x³ − ½x² + 4/3·x − 1`, which does **not**
/// satisfy the paper's own recurrence (e.g. it yields 0 at `x = 1` where the
/// recurrence yields `1 + L(Δ,2) + L(Δ,1) = 1`). Summing the recurrence
/// (`L(δ,2) = Σ_{ℓ=δ+1}^{Δ} (1 + ½(Δ−ℓ)² + ½(Δ−ℓ))`) gives the form used
/// here, which the unit tests verify against the dynamic program. Both
/// agree with the paper's conjecture `L_r(δ,r) = O((Δ−δ)^{r+1})`.
pub fn ripple_r2_closed_form(delta_total: u32, delta: u32) -> u64 {
    let x = (delta_total - delta) as u64;
    (x * x * x + 5 * x) / 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_boundaries() {
        assert_eq!(fast_worst_case(10, 10), 0);
        assert_eq!(fast_worst_case(10, 0), 10);
        assert_eq!(fast_worst_case(17, 3), 14);
    }

    #[test]
    fn lemma2_boundaries() {
        assert_eq!(slow_worst_case(10, 10), 0);
        assert_eq!(slow_worst_case(4, 0), 15);
        assert_eq!(slow_worst_case(17, 0), (1 << 17) - 1);
    }

    #[test]
    fn lemma3_degenerates_to_fast_at_r0() {
        for delta in 0..=8 {
            assert_eq!(ripple_worst_case(8, delta, 0), fast_worst_case(8, delta));
        }
    }

    #[test]
    fn lemma3_degenerates_to_slow_at_large_r() {
        for delta in 0..=10 {
            assert_eq!(
                ripple_worst_case(10, delta, 10),
                slow_worst_case(10, delta),
                "r = Δ must reduce to Algorithm 2"
            );
            assert_eq!(ripple_worst_case(10, delta, 99), slow_worst_case(10, delta));
        }
    }

    #[test]
    fn lemma3_matches_r1_closed_form() {
        for total in 0..=20 {
            for delta in 0..=total {
                assert_eq!(
                    ripple_worst_case(total, delta, 1),
                    ripple_r1_closed_form(total, delta),
                    "Δ={total} δ={delta}"
                );
            }
        }
    }

    #[test]
    fn lemma3_matches_r2_closed_form() {
        for total in 1..=20 {
            for delta in 0..total {
                assert_eq!(
                    ripple_worst_case(total, delta, 2),
                    ripple_r2_closed_form(total, delta),
                    "Δ={total} δ={delta}"
                );
            }
        }
    }

    #[test]
    fn latency_is_monotone_in_r() {
        for r in 0..10u32 {
            assert!(
                ripple_worst_case(12, 0, r) <= ripple_worst_case(12, 0, r + 1),
                "larger r may only increase worst-case latency"
            );
        }
    }

    #[test]
    fn recurrence_is_internally_consistent() {
        // spot-check the recurrence directly
        for total in 2..=12 {
            for delta in 0..total - 1 {
                for r in 1..=4 {
                    assert_eq!(
                        ripple_worst_case(total, delta, r),
                        1 + ripple_worst_case(total, delta + 1, r)
                            + ripple_worst_case(total, delta + 1, r - 1)
                    );
                }
            }
        }
    }
}
