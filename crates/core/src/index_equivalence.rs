//! Equivalence property tests for the per-peer index layer.
//!
//! The local index is a *cache*: it must be invisible to the protocol. We
//! check that for every query type and every propagation mode, an indexed
//! run ([`Executor::new`]) and a naive scan run ([`Executor::naive`]) over
//! the same network produce
//!
//! 1. the same answer *set* (order may differ for top-k, whose indexed
//!    answer walk emits in score order rather than store order), and
//! 2. **bit-identical** cost ledgers — latency, message counts, tuples
//!    shipped, and the exact per-peer visit *sequence* (`QueryMetrics`
//!    derives `PartialEq` over all of these, including `visited`).
//!
//! The checks are repeated under churn: tuple inserts (incremental skyline
//! folds), data-steered joins (zone splits `drain_where` tuples out of
//! stores), and peer departures (stores are drained and re-inserted), so
//! every cache-invalidation path in `PeerStore` is exercised end to end.

use crate::diversify::SingleTupleQuery;
use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::SkylineQuery;
use crate::topk::TopKQuery;
use ripple_geom::{DiversityQuery, LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];

fn random_tuple(id: u64, dims: usize, rng: &mut SmallRng) -> Tuple {
    Tuple::new(id, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>())
}

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = random_tuple(i, dims, &mut rng);
        net.insert_tuple(t);
    }
    (net, rng)
}

/// Runs `query` both ways in every mode and asserts observational equality.
fn assert_equivalent<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
where
    Q: RankQuery<Rect>,
{
    for mode in MODES {
        let initiator = net.random_peer(rng);
        let indexed = Executor::new(net).run(initiator, query, mode);
        let naive = Executor::naive(net).run(initiator, query, mode);
        assert_eq!(
            indexed.metrics, naive.metrics,
            "{label} [{mode:?}]: indexed and naive ledgers must be bit-identical \
             (including the visit sequence)"
        );
        let mut a = indexed.answers;
        let mut b = naive.answers;
        a.sort_by_key(|t| t.id);
        b.sort_by_key(|t| t.id);
        assert_eq!(a, b, "{label} [{mode:?}]: answer sets must agree");
    }
}

/// The battery of queries the equivalence property is checked against:
/// both score families for top-k (small and large k, so both the pruning
/// and the `m < k` top-up paths run), unconstrained and constrained
/// skyline, and the diversification single-tuple search.
fn check_all_queries(net: &MidasNetwork, dims: usize, rng: &mut SmallRng) {
    for k in [1usize, 5, 64] {
        let q = TopKQuery::new(LinearScore::uniform(dims), k);
        assert_equivalent(net, &q, rng, &format!("topk-linear k={k}"));
        let peak: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
        let q = TopKQuery::new(PeakScore::new(peak, Norm::L2), k);
        assert_equivalent(net, &q, rng, &format!("topk-peak k={k}"));
    }
    assert_equivalent(net, &SkylineQuery::new(), rng, "skyline");
    let lo: Vec<f64> = vec![0.2; dims];
    let hi: Vec<f64> = vec![0.9; dims];
    assert_equivalent(
        net,
        &SkylineQuery::constrained(Rect::new(lo, hi)),
        rng,
        "skyline-constrained",
    );
    let div = DiversityQuery::new(vec![0.5; dims], 0.7, Norm::L2);
    let set: Vec<Tuple> = (0..3)
        .map(|i| random_tuple(u64::MAX - i, dims, rng))
        .collect();
    let q = SingleTupleQuery::new(&div, &set);
    assert_equivalent(net, &q, rng, "diversify-single-tuple");
}

#[test]
fn indexed_equals_naive_on_static_network() {
    for (dims, peers, tuples, seed) in [(2, 48, 600, 11u64), (3, 32, 400, 12)] {
        let (net, mut rng) = loaded_net(dims, peers, tuples, seed);
        check_all_queries(&net, dims, &mut rng);
    }
}

#[test]
fn indexed_equals_naive_under_churn() {
    let dims = 2;
    let (mut net, mut rng) = loaded_net(dims, 24, 300, 21);
    let mut next_id = 300u64;
    for round in 0..4 {
        // inserts: exercises the incremental skyline fold and projection
        // invalidation on loaded stores
        for _ in 0..40 {
            let t = random_tuple(next_id, dims, &mut rng);
            next_id += 1;
            net.insert_tuple(t);
        }
        // data-steered joins: splits drain tuples out of existing stores
        for _ in 0..3 {
            let key = ripple_geom::Point::new(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
            net.join(&key);
        }
        // departures: the leaver's store is drained and re-inserted
        if round % 2 == 1 {
            let victim = net.random_peer(&mut rng);
            net.leave(victim);
        }
        net.check_invariants();
        check_all_queries(&net, dims, &mut rng);
    }
}

#[test]
fn warm_caches_do_not_change_results() {
    // Run the same query twice on the indexed path (cold, then warm cache)
    // and against the naive path: all three ledgers must agree.
    let (net, mut rng) = loaded_net(2, 40, 500, 31);
    let q = TopKQuery::new(LinearScore::new(vec![0.8, 0.2]), 10);
    let initiator = net.random_peer(&mut rng);
    let cold = Executor::new(&net).run(initiator, &q, Mode::Fast);
    let warm = Executor::new(&net).run(initiator, &q, Mode::Fast);
    let naive = Executor::naive(&net).run(initiator, &q, Mode::Fast);
    assert_eq!(cold.metrics, warm.metrics);
    assert_eq!(cold.metrics, naive.metrics);
    assert_eq!(cold.answers, warm.answers);
}
