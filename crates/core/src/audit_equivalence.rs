//! The commission-fault plane's two contracts, tested together:
//!
//! 1. **Auditing is bit-invisible when nothing is corrupted.** The default
//!    auditing executor, an executor with auditing ablated
//!    ([`Executor::without_audit`]) and one with an explicitly inert plane
//!    ([`CorruptionPlane::none`]) must produce *bit-identical* outcomes —
//!    answers, full cost ledger, coverage, certificate — for every mode ×
//!    fault plane × thread count, on healthy and on crash-damaged
//!    replicated overlays. The audit is an observation of the response
//!    stream, never an input to the walk.
//!
//! 2. **Corruption handling is deterministic.** With an *active* corruption
//!    plane the sequential and parallel engines must still agree bit for
//!    bit: corruption verdicts are keyed by `(sender, initiator, attempt)`,
//!    audit verdicts ride the branch ledgers and merge in link order, and
//!    the quarantine registry is only flushed after the walk — so thread
//!    scheduling can never change which lies are told or caught.
//!
//! The file closes with the worst-case liveness property (100% corruption,
//! zero replicas: every mode still terminates with an honest, degraded
//! coverage report) and the two-peer pathological-ring regression for the
//! failover bookkeeping fix in [`Executor::deliver`].
//!
//! The poisoning direction — corrupted answers demonstrably admitted
//! unaudited and audited out — lives in `verify_mutation`.

use crate::exec::Executor;
use crate::framework::{Mode, RippleOverlay};
use crate::skyline::SkylineQuery;
use crate::topk::TopKQuery;
use ripple_geom::{LinearScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::{CorruptionPlane, FaultPlane, PeerId};
use ripple_verify::{verify_coverage, verify_tiling};

const MODES: [Mode; 5] = [
    Mode::Fast,
    Mode::Broadcast,
    Mode::Ripple(1),
    Mode::Ripple(2),
    Mode::Slow,
];
const THREADS: [usize; 2] = [2, 4];

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.insert_tuple(t);
    }
    (net, rng)
}

/// A crash-damaged, replicated overlay (same shape as the certificate
/// equivalence suite's churn section), built deterministically from `seed`.
fn damaged_net(seed: u64) -> (MidasNetwork, SmallRng) {
    let (mut net, mut rng) = loaded_net(2, 48, 600, seed);
    net.enable_replication(1);
    for _ in 0..6 {
        if net.peer_count() > 1 {
            let victim = net.random_peer(&mut rng);
            net.crash(victim);
            net.refresh_replicas();
        }
    }
    net.check_invariants();
    (net, rng)
}

/// Contract 1: with corruption off, the three executor configurations are
/// indistinguishable at the bit level, sequentially and in parallel.
#[test]
fn auditing_is_bit_invisible_with_corruption_off() {
    fn sweep(net: &MidasNetwork, rng: &mut SmallRng, planes: &[FaultPlane], label: &str) {
        let q = TopKQuery::new(LinearScore::uniform(2), 10);
        for &plane in planes {
            for mode in MODES {
                let initiator = net.random_peer(rng);
                let base = Executor::with_faults(net, plane, 7).run(initiator, &q, mode);
                let unaudited = Executor::with_faults(net, plane, 7)
                    .without_audit()
                    .run(initiator, &q, mode);
                let inert = Executor::with_faults(net, plane, 7)
                    .with_corruption(CorruptionPlane::none())
                    .run(initiator, &q, mode);
                for (arm, got) in [("without_audit", &unaudited), ("inert plane", &inert)] {
                    assert_eq!(
                        base.answers, got.answers,
                        "{label} [{mode:?}] {arm} answers"
                    );
                    assert_eq!(base.metrics, got.metrics, "{label} [{mode:?}] {arm} ledger");
                    assert_eq!(
                        base.coverage, got.coverage,
                        "{label} [{mode:?}] {arm} coverage"
                    );
                    assert_eq!(
                        base.certificate, got.certificate,
                        "{label} [{mode:?}] {arm} certificate"
                    );
                }
                assert_eq!(
                    base.metrics.audits_run, 0,
                    "{label} [{mode:?}]: a clean run must not spend a single audit"
                );
                for threads in THREADS {
                    let par = Executor::with_faults(net, plane, 7)
                        .run_parallel(initiator, &q, mode, threads);
                    assert_eq!(base.answers, par.answers, "{label} [{mode:?}] par answers");
                    assert_eq!(base.metrics, par.metrics, "{label} [{mode:?}] par ledger");
                    assert_eq!(base.certificate, par.certificate, "{label} [{mode:?}] par");
                }
                assert_eq!(
                    net.quarantine().len(),
                    0,
                    "{label} [{mode:?}]: nobody to quarantine on a clean overlay"
                );
            }
        }
    }

    let (net, mut rng) = loaded_net(2, 48, 600, 91);
    sweep(
        &net,
        &mut rng,
        &[FaultPlane::none(), FaultPlane::drops(0.15, 17)],
        "healthy",
    );
    // A crashed overlay needs a crash-aware plane: the fault-free fast path
    // would deliver into departed peers.
    let crash_aware = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    };
    let (net, mut rng) = damaged_net(92);
    sweep(&net, &mut rng, &[crash_aware], "crash-damaged");
}

/// Contract 2: an *active* corruption plane is handled identically by the
/// sequential and parallel engines. Runs on twin overlays built from the
/// same seed, because each audited run flushes its verdicts into its own
/// overlay's quarantine registry — sharing one overlay would let the first
/// run's quarantine leak into the second's snapshot.
#[test]
fn corruption_handling_is_identical_sequential_and_parallel() {
    for seed in [93u64, 94] {
        let (net_seq, mut rng) = loaded_net(2, 48, 600, seed);
        let q = TopKQuery::new(LinearScore::uniform(2), 10);
        let plane = CorruptionPlane::flat(0.35, 19);
        for mode in MODES {
            for threads in THREADS {
                let (net_par, _) = loaded_net(2, 48, 600, seed);
                let initiator = net_seq.random_peer(&mut rng);
                let (fresh_seq, _) = loaded_net(2, 48, 600, seed);
                let seq = Executor::with_faults(&fresh_seq, FaultPlane::none(), 7)
                    .with_corruption(plane)
                    .run(initiator, &q, mode);
                let par = Executor::with_faults(&net_par, FaultPlane::none(), 7)
                    .with_corruption(plane)
                    .run_parallel(initiator, &q, mode, threads);
                assert_eq!(seq.answers, par.answers, "[{mode:?}, {threads}t] answers");
                assert_eq!(seq.metrics, par.metrics, "[{mode:?}, {threads}t] ledger");
                assert_eq!(
                    seq.coverage, par.coverage,
                    "[{mode:?}, {threads}t] coverage"
                );
                assert_eq!(
                    seq.certificate, par.certificate,
                    "[{mode:?}, {threads}t] certificate"
                );
                assert_eq!(
                    fresh_seq.quarantine().quarantined(),
                    net_par.quarantine().quarantined(),
                    "[{mode:?}, {threads}t] both engines quarantine the same peers"
                );
            }
        }
    }
}

/// The worst-case liveness property: 100% corruption and not a single
/// replica to recover from. Every mode must still terminate, report
/// degraded coverage honestly, and emit a certificate whose tiling closes
/// and whose coverage claim the independent checker accepts. (`verify_topk`
/// would rightly refuse — the answer is missing tuples — so the property
/// pins the *honesty* layers only.)
#[test]
fn full_corruption_with_no_replicas_terminates_with_honest_coverage() {
    let (net, mut rng) = loaded_net(2, 48, 600, 95);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    let plane = CorruptionPlane::flat(1.0, 29);
    for mode in MODES {
        for threads in [0usize, 2] {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::new(&net).with_corruption(plane);
            let out = if threads == 0 {
                exec.run(initiator, &q, mode)
            } else {
                exec.run_parallel(initiator, &q, mode, threads)
            };
            assert!(
                out.coverage.answered_fraction < 1.0,
                "[{mode:?}, {threads}t]: every remote answer is tainted and \
                 unrecoverable — coverage must degrade"
            );
            assert!(
                !out.coverage.unreachable.is_empty(),
                "[{mode:?}, {threads}t]: the lost volume must be itemized"
            );
            let cert = out.certificate.expect("certs on");
            verify_tiling(&cert, cert.default_tolerance())
                .unwrap_or_else(|e| panic!("[{mode:?}, {threads}t] tiling rejected: {e}"));
            verify_coverage(
                &cert,
                out.coverage.answered_fraction,
                &out.coverage.unreachable,
            )
            .unwrap_or_else(|e| panic!("[{mode:?}, {threads}t] coverage rejected: {e}"));
        }
    }
    // Across the sweep the registry accumulated the liars.
    assert!(net.quarantine().quarantined() > 0);

    // The same sweep on a skyline query: the property is query-agnostic.
    let initiator = net.random_peer(&mut rng);
    let out =
        Executor::new(&net)
            .with_corruption(plane)
            .run(initiator, &SkylineQuery::new(), Mode::Fast);
    assert!(out.coverage.answered_fraction < 1.0);
    let cert = out.certificate.expect("certs on");
    verify_coverage(
        &cert,
        out.coverage.answered_fraction,
        &out.coverage.unreachable,
    )
    .expect("degraded skyline coverage is honest");
}

/// A two-peer pathological overlay whose `failover_target` ignores the
/// `tried` exclusion list — the class of substrate bug the deliver fix
/// defends against. Peer 1 is dead; the overlay keeps nominating it as its
/// own failover forever.
struct PathologicalRing {
    tuples: [Vec<Tuple>; 2],
}

impl RippleOverlay for PathologicalRing {
    type Region = Rect;

    fn full_region(&self) -> Rect {
        Rect::unit(1)
    }

    fn region_intersect(&self, region: &Rect, restriction: &Rect) -> Option<Rect> {
        region.intersection(restriction)
    }

    fn peer_links(&self, peer: PeerId) -> Vec<(PeerId, Rect)> {
        // Peer 0 owns [0, 0.5) and links to peer 1's half, and vice versa.
        if peer.index() == 0 {
            vec![(PeerId::new(1), Rect::new(vec![0.5], vec![1.0]))]
        } else {
            vec![(PeerId::new(0), Rect::new(vec![0.0], vec![0.5]))]
        }
    }

    fn peer_count(&self) -> usize {
        2
    }

    fn peer_tuples(&self, peer: PeerId) -> &[Tuple] {
        &self.tuples[peer.index()]
    }

    fn region_volume(&self, region: &Rect) -> f64 {
        region.volume()
    }

    fn region_rects(&self, region: &Rect) -> Vec<Rect> {
        vec![region.clone()]
    }

    fn is_peer_live(&self, peer: PeerId) -> bool {
        peer.index() == 0
    }

    /// The bug under test: the `tried` list is ignored, so the dead peer 1
    /// is re-nominated on every failover round. Without the executor-side
    /// re-selection guard this livelocks `deliver` forever.
    fn failover_target(&self, region: &Rect, _tried: &[PeerId]) -> Option<(PeerId, Rect)> {
        Some((PeerId::new(1), region.clone()))
    }
}

#[test]
fn deliver_terminates_on_a_ring_whose_failover_ignores_tried() {
    let net = PathologicalRing {
        tuples: [
            vec![Tuple::new(0, vec![0.25])],
            vec![Tuple::new(1, vec![0.75])],
        ],
    };
    let plane = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 1,
        max_retries: 1,
        seed: 5,
        ..FaultPlane::none()
    };
    let q = TopKQuery::new(LinearScore::uniform(1), 2);
    // Without the `tried` re-selection filter in `Executor::deliver` this
    // call never returns: transmit to the dead peer 1 fails, the overlay
    // nominates peer 1 again, forever.
    let out = Executor::with_faults(&net, plane, 3).run(PeerId::new(0), &q, Mode::Broadcast);
    assert_eq!(
        out.answers.iter().map(|t| t.id).collect::<Vec<_>>(),
        vec![0],
        "only the live half answers"
    );
    assert!(
        (out.coverage.answered_fraction - 0.5).abs() < 1e-9,
        "the dead half is honestly reported unreachable"
    );
    let cert = out.certificate.expect("certs on");
    verify_tiling(&cert, cert.default_tolerance()).expect("the degraded tiling still closes");
    verify_coverage(
        &cert,
        out.coverage.answered_fraction,
        &out.coverage.unreachable,
    )
    .expect("the degraded coverage is honest");
}
