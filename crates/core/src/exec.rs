//! The three RIPPLE propagation templates (Algorithms 1–3).
//!
//! The executor walks the overlay *recursively in simulation*: a recursive
//! call stands for a query message, and the return stands for the response.
//! Latency is accounted exactly as the proofs of Lemmas 1–3 count hops:
//!
//! * `fast` (Alg. 1) forwards to all relevant links at once, so a peer's
//!   completion time is `1 + max(children)`;
//! * `slow` (Alg. 2) visits one link at a time and waits for its state
//!   response before the next, so completion is `Σ (1 + child)`;
//! * `ripple` (Alg. 3) runs `slow` while the hop budget `r` lasts and
//!   `fast` below it.
//!
//! Response messages (local states, local answers) are tallied in the
//! message counters but add no hops, mirroring the Lemma accounting.
//! Restriction areas are threaded through every forwarding step, so each
//! peer processes a query at most once; a second visit is counted as an
//! always-on anomaly ([`QueryMetrics::duplicate_visits`]) instead of being
//! audited only in debug builds.
//!
//! # Fault-aware delivery
//!
//! The executor is optionally driven by a [`FaultPlane`]: each query-forward
//! transmission then passes through [`Executor::deliver`], which simulates
//! message drops, per-hop timeouts with exponentially backed-off
//! retransmissions, slow-peer delivery penalties, and — when a target stays
//! unreachable — failover to an alternate live peer inside the same
//! restriction area. When no candidate is left the area is *abandoned* and
//! its domain volume is reported in [`QueryOutcome::coverage`]: execution
//! degrades gracefully, never panics, and never pretends a partial answer is
//! complete. With [`FaultPlane::none`] the delivery path short-circuits to
//! exactly one `forward()` and one hop, making the fault-aware executor
//! observationally identical to the historical fault-unaware one (enforced
//! bit-for-bit by the equivalence tests).

use crate::framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::Tuple;
use ripple_net::{FaultPlane, FaultSession, LocalView, PeerId, QueryMetrics};
use std::collections::HashSet;

/// Executes RIPPLE queries over an overlay.
pub struct Executor<'a, O> {
    net: &'a O,
    /// When set, peers are handed plain tuple slices even on indexed
    /// substrates — the pre-index scan paths. Used by equivalence tests and
    /// the local-index benchmark; results and metrics must not differ.
    naive: bool,
    /// The fault-injection policy ([`FaultPlane::none`] by default).
    plane: FaultPlane,
    /// The per-query decision stream opened on the plane by each `run`.
    stream: u64,
    /// Whether ledgers retain the visit trace (on by default; sweeps that
    /// only aggregate turn it off to keep ledgers O(1) in network size).
    trace: bool,
}

struct RunState<'q, Q, L> {
    query: &'q Q,
    answers: Vec<Tuple>,
    metrics: QueryMetrics,
    visited: HashSet<PeerId>,
    faults: FaultSession,
    /// Absolute volumes of abandoned restriction areas.
    unreachable: Vec<f64>,
    _marker: std::marker::PhantomData<L>,
}

impl<'a, O: RippleOverlay> Executor<'a, O> {
    /// Creates an executor over `net`.
    pub fn new(net: &'a O) -> Self {
        Self {
            net,
            naive: false,
            plane: FaultPlane::none(),
            stream: 0,
            trace: true,
        }
    }

    /// Creates an executor that ignores per-peer indexes and scans, exactly
    /// like the pre-index code paths.
    pub fn naive(net: &'a O) -> Self {
        Self {
            naive: true,
            ..Self::new(net)
        }
    }

    /// Creates a fault-aware executor. Each `run` opens the plane's decision
    /// stream `stream`, so a given (plane, stream, query) triple replays
    /// bit-identically; sweeps vary `stream` per query.
    pub fn with_faults(net: &'a O, plane: FaultPlane, stream: u64) -> Self {
        Self {
            plane,
            stream,
            ..Self::new(net)
        }
    }

    /// Disables visit-trace retention in the produced ledgers (counts are
    /// unaffected). For aggregate-only sweeps over large overlays.
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// The overlay this executor runs over.
    pub fn network(&self) -> &'a O {
        self.net
    }

    /// The view of `peer`'s tuples handed to the query functions.
    fn view_of(&self, peer: PeerId) -> LocalView<'_> {
        if self.naive {
            LocalView::Plain(self.net.peer_tuples(peer))
        } else {
            self.net.peer_view(peer)
        }
    }

    /// Processes `query` from `initiator` in the given mode, returning the
    /// collected answers, the initiator's final state and the cost ledger.
    pub fn run<Q>(&self, initiator: PeerId, query: &Q, mode: Mode) -> QueryOutcome<Q::Local>
    where
        Q: RankQuery<O::Region>,
    {
        assert!(
            self.net.is_peer_live(initiator),
            "query initiated at a crashed peer {initiator}"
        );
        let mut run = RunState {
            query,
            answers: Vec::new(),
            metrics: QueryMetrics::with_trace(self.trace),
            visited: HashSet::new(),
            faults: self.plane.session(self.stream),
            unreachable: Vec::new(),
            _marker: std::marker::PhantomData,
        };
        let full = self.net.full_region();
        let global = query.initial_global();
        let (state, latency) = match mode {
            Mode::Fast => self.fast(initiator, &global, full, false, &mut run),
            Mode::Slow => self.slow(initiator, &global, full, &mut run),
            Mode::Ripple(0) => self.fast(initiator, &global, full, false, &mut run),
            Mode::Ripple(r) => self.ripple(initiator, &global, full, r, &mut run),
            Mode::Broadcast => self.broadcast(initiator, &global, full, &mut run),
        };
        run.metrics.latency = latency;
        let coverage = if run.unreachable.is_empty() {
            Coverage::full()
        } else {
            let full_vol = self.net.region_volume(&self.net.full_region());
            let unreachable: Vec<f64> = run.unreachable.iter().map(|v| v / full_vol).collect();
            let lost: f64 = unreachable.iter().sum();
            Coverage {
                answered_fraction: (1.0 - lost).clamp(0.0, 1.0),
                unreachable,
            }
        };
        QueryOutcome {
            answers: run.answers,
            state,
            metrics: run.metrics,
            coverage,
        }
    }

    /// Marks a peer visited. The restriction areas guarantee each peer
    /// processes a query at most once; a second visit is a correctness
    /// anomaly, counted in [`QueryMetrics::duplicate_visits`] and surfaced
    /// all the way into the figure CSVs rather than tolerated silently (or
    /// audited only in debug builds, as before).
    fn visit<Q: RankQuery<O::Region>>(&self, peer: PeerId, run: &mut RunState<'_, Q, Q::Local>) {
        if !run.visited.insert(peer) {
            run.metrics.duplicate_visits += 1;
        }
        run.metrics.visit(peer);
    }

    /// Simulates the retransmission loop against one fixed `target`:
    /// `1 + max_retries` send attempts, each lost to the network with the
    /// plane's drop probability (or unacknowledged outright when the target
    /// is dead), each loss costing the sender a timeout wait that backs off
    /// exponentially. Returns `(elapsed, delivered)` — the simulated hops
    /// that passed at the sender and whether the message was eventually
    /// processed (in which case `elapsed` includes the final transit hop and
    /// the target's slow-peer penalty).
    fn transmit<Q: RankQuery<O::Region>>(
        &self,
        target: PeerId,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (u64, bool) {
        let alive = self.net.is_peer_live(target);
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        loop {
            run.metrics.forward();
            // `&&` short-circuits: sends to a dead peer are lost without
            // consuming a drop decision, so the drop stream depends only on
            // the number of transmissions to live peers.
            if alive && !run.faults.drops_message() {
                return (elapsed + 1 + run.faults.slow_penalty(target), true);
            }
            if alive {
                run.metrics.messages_dropped += 1;
            }
            run.metrics.timeouts += 1;
            elapsed += run.faults.timeout() << attempt.min(16);
            if attempt >= run.faults.max_retries() {
                return (elapsed, false);
            }
            attempt += 1;
            run.metrics.retries += 1;
        }
    }

    /// Delivers a query-forward into `restriction`, starting at the link
    /// target `first` and failing over across the overlay's alternate live
    /// candidates when retransmissions are exhausted. Returns the simulated
    /// hops spent at the sender and the peer that ended up processing the
    /// message together with the (possibly failover-trimmed) restriction it
    /// covers — or `None` when every candidate failed. Both the trimmed-off
    /// parts and fully abandoned areas are recorded as unreachable
    /// (graceful degradation, honestly accounted).
    ///
    /// With an inactive fault session this is exactly one `forward()` and
    /// one hop — bit-identical to the historical fault-unaware executor.
    fn deliver<Q: RankQuery<O::Region>>(
        &self,
        first: PeerId,
        restriction: O::Region,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (u64, Option<(PeerId, O::Region)>) {
        if !run.faults.active() {
            run.metrics.forward();
            return (1, Some((first, restriction)));
        }
        let mut elapsed = 0u64;
        let mut tried: Vec<PeerId> = Vec::new();
        let mut target = first;
        let mut restriction = restriction;
        loop {
            let (spent, delivered) = self.transmit(target, run);
            elapsed += spent;
            if delivered {
                return (elapsed, Some((target, restriction)));
            }
            tried.push(target);
            match self.net.failover_target(&restriction, &tried) {
                Some((next, sub)) => {
                    let lost = self.net.region_volume(&restriction) - self.net.region_volume(&sub);
                    if lost > 1e-12 {
                        run.unreachable.push(lost);
                    }
                    restriction = sub;
                    target = next;
                }
                None => {
                    run.unreachable.push(self.net.region_volume(&restriction));
                    return (elapsed, None);
                }
            }
        }
    }

    /// Deposits a peer's local answer with the initiator.
    fn send_answer<Q: RankQuery<O::Region>>(
        &self,
        answer: Vec<Tuple>,
        run: &mut RunState<'_, Q, Q::Local>,
    ) {
        run.metrics.respond(answer.len());
        run.answers.extend(answer);
    }

    /// Algorithm 1 — and the `r = 0` loop of Algorithm 3 when
    /// `report_states` is set. Returns the peer's final local state and the
    /// completion latency of its restriction area.
    ///
    /// Under Algorithm 3 every fast-phase peer sends its local state
    /// directly to the last slow-phase ancestor `u` (Alg. 3 line 19, with
    /// `u` forwarded unchanged at line 15); the recursive return value
    /// models the union of those states, and `report_states` charges one
    /// state-response message per peer. Under pure Algorithm 1 no state
    /// responses exist and none are charged.
    fn fast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        report_states: bool,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let local = run.query.compute_local_state(&view, global);
        let global_w = run.query.compute_global_state(global, &local);

        let mut latency = 0u64;
        let mut remote_states = Vec::new();
        for (target, region) in self.net.peer_links(w) {
            let Some(restricted) = self.net.region_intersect(&region, &restriction) else {
                continue;
            };
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            let (delay, adopted) = self.deliver(target, restricted, run);
            let Some((dest, restricted)) = adopted else {
                // subtree unreachable: the time wasted waiting still counts
                latency = latency.max(delay);
                continue;
            };
            let (remote, child_latency) =
                self.fast(dest, &global_w, restricted, report_states, run);
            latency = latency.max(delay + child_latency);
            remote_states.push(remote);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        if report_states {
            run.metrics.respond(run.query.state_payload(&local));
        }
        let merged = if remote_states.is_empty() {
            local
        } else {
            remote_states.push(local);
            run.query.update_local_state(remote_states)
        };
        (merged, latency)
    }

    /// Algorithm 2. Returns the final local state and completion latency.
    fn slow<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let mut local = run.query.compute_local_state(&view, global);
        let mut global_w = run.query.compute_global_state(global, &local);

        // sortLinks: decreasing priority of the restricted regions.
        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            let (delay, adopted) = self.deliver(target, restricted, run);
            let Some((dest, restricted)) = adopted else {
                // unreachable: sequential mode pays the wait in full
                latency += delay;
                continue;
            };
            let (remote, child_latency) = self.slow(dest, &global_w, restricted, run);
            latency += delay + child_latency;
            // the state response from the child
            run.metrics.respond(run.query.state_payload(&remote));
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }

    /// Algorithm 3 with ripple parameter `r`.
    fn ripple<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        r: u32,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        if r == 0 {
            // Below the hop budget every peer runs the fast loop; local
            // states stream back to the last slow-phase ancestor, which the
            // recursive return value models.
            return self.fast(w, global, restriction, true, run);
        }
        self.visit(w, run);
        let view = self.view_of(w);
        let mut local = run.query.compute_local_state(&view, global);
        let mut global_w = run.query.compute_global_state(global, &local);

        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            let (delay, adopted) = self.deliver(target, restricted, run);
            let Some((dest, restricted)) = adopted else {
                latency += delay;
                continue;
            };
            let (remote, child_latency) = if r == 1 {
                // Fast-phase peers charge their own state responses (they
                // report directly to this peer).
                self.fast(dest, &global_w, restricted, true, run)
            } else {
                let out = self.ripple(dest, &global_w, restricted, r - 1, run);
                run.metrics.respond(run.query.state_payload(&out.0));
                out
            };
            latency += delay + child_latency;
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }

    /// Naive broadcast (Section 1): reach *every* peer in the restriction
    /// area in parallel, ignoring states; every peer answers from purely
    /// local knowledge.
    fn broadcast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let local = run.query.compute_local_state(&view, global);

        let mut latency = 0u64;
        for (target, region) in self.net.peer_links(w) {
            let Some(restricted) = self.net.region_intersect(&region, &restriction) else {
                continue;
            };
            let (delay, adopted) = self.deliver(target, restricted, run);
            let Some((dest, restricted)) = adopted else {
                latency = latency.max(delay);
                continue;
            };
            // the global state is never refined — pure flooding
            let (_, child_latency) = self.broadcast(dest, global, restricted, run);
            latency = latency.max(delay + child_latency);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }
}
