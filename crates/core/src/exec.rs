//! The three RIPPLE propagation templates (Algorithms 1–3).
//!
//! The executor walks the overlay *recursively in simulation*: a recursive
//! call stands for a query message, and the return stands for the response.
//! Latency is accounted exactly as the proofs of Lemmas 1–3 count hops:
//!
//! * `fast` (Alg. 1) forwards to all relevant links at once, so a peer's
//!   completion time is `1 + max(children)`;
//! * `slow` (Alg. 2) visits one link at a time and waits for its state
//!   response before the next, so completion is `Σ (1 + child)`;
//! * `ripple` (Alg. 3) runs `slow` while the hop budget `r` lasts and
//!   `fast` below it.
//!
//! Response messages (local states, local answers) are tallied in the
//! message counters but add no hops, mirroring the Lemma accounting.
//! Restriction areas are threaded through every forwarding step, so each
//! peer processes a query at most once; a second visit is counted as an
//! always-on anomaly ([`QueryMetrics::duplicate_visits`]) instead of being
//! audited only in debug builds.
//!
//! # Fault-aware delivery
//!
//! The executor is optionally driven by a [`FaultPlane`]: each query-forward
//! transmission then passes through [`Executor::deliver`], which simulates
//! message drops, per-hop timeouts with exponentially backed-off
//! retransmissions, slow-peer delivery penalties, and — when a target stays
//! unreachable — failover to an alternate live peer inside the same
//! restriction area. When no candidate is left the area is *abandoned* and
//! its domain volume is reported in [`QueryOutcome::coverage`]: execution
//! degrades gracefully, never panics, and never pretends a partial answer is
//! complete. With [`FaultPlane::none`] the delivery path short-circuits to
//! exactly one `forward()` and one hop, making the fault-aware executor
//! observationally identical to the historical fault-unaware one (enforced
//! bit-for-bit by the equivalence tests).
//!
//! # Intra-query parallel execution
//!
//! `fast` and `broadcast` are *defined* as contacting all relevant links in
//! parallel — the simulated latency is already `1 + max(children)` — yet a
//! recursive walk explores the fan-out tree on one core.
//! [`Executor::run_parallel`] executes the independent restriction-area
//! subtrees of the fast templates concurrently on a scoped work-stealing
//! pool ([`ripple_net::pool`]) while keeping the run **bit-identical** to
//! [`Executor::run`]:
//!
//! * fault decisions are *addressable*: [`FaultSession`] keys every drop
//!   verdict by `(query stream, sender, target, attempt)`, so a parallel
//!   walk draws exactly the decisions a sequential walk would — no global
//!   draw order exists for scheduling to perturb;
//! * every branch accumulates into its own [`BranchLedger`] and parents reduce
//!   children in **link order**, which restores the sequential executor's
//!   visit trace (pre-order), answer stream (post-order), abandonment order
//!   and counters exactly;
//! * duplicate-visit detection runs against a [`ShardedVisited`] set whose
//!   total anomaly count (`visits − distinct peers`) is schedule-free.
//!
//! `slow` is semantically sequential (each link waits for the previous
//! state response) and always runs on the caller; `ripple(r)` runs its slow
//! phase sequentially and parallelises the fast phase below the hop budget.

use crate::framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::{neumaier, KernelDispatch, Tuple};
use ripple_net::hash::{fx_set_with_capacity, FxHashSet};
use ripple_net::pool::{self, Pool};
use ripple_net::{
    scan, BranchLedger, CorruptionMode, CorruptionPlane, CorruptionSession, FaultPlane,
    FaultSession, LocalView, PeerId, QuarantineSnapshot, QueryMetrics, ShardedVisited,
};
use ripple_verify::{
    audit_response, audit_witness, CertRegion, Certificate, PruneWitness, ResponseEnvelope,
};
use std::sync::Arc;

/// The local answer a failover adopter computes *on behalf of* a dead peer
/// from a replica of its tuples: the same two query functions a live peer
/// would run, over a plain view of the copy, under the global state the
/// failed forward carried. Answering with a (possibly weaker) upstream
/// global state can only widen the answer — never drop a qualifying tuple —
/// so recovery is recall-safe for every query type.
fn replica_answer<R, Q: RankQuery<R>>(
    query: &Q,
    tuples: &[Tuple],
    global: &Q::Global,
) -> Vec<Tuple> {
    let view = LocalView::Plain(tuples);
    let local = query.compute_local_state(&view, global);
    query.compute_local_answer(&view, &local)
}

/// Runs `f` with the thread-local scan accounting of [`ripple_net::scan`]
/// bracketed around it, draining the tuples-scanned / blocks-pruned counts
/// into `metrics`. When `trace` is off the bracket is skipped entirely and
/// the `scan::add_*` calls inside the query functions stay no-ops — the
/// data-plane counters are strictly zero-cost for aggregate-only sweeps.
fn with_scan<T>(trace: bool, metrics: &mut QueryMetrics, f: impl FnOnce() -> T) -> T {
    if !trace {
        return f();
    }
    scan::begin();
    let out = f();
    let c = scan::end();
    metrics.tuples_scanned += c.tuples_scanned;
    metrics.blocks_pruned += c.blocks_pruned;
    metrics.memtable_hits += c.memtable_hits;
    metrics.tombstones_masked += c.tombstones_masked;
    metrics.compactions_run += c.compactions_run;
    metrics.write_amplification += c.rows_rewritten;
    out
}

/// Everything one query execution needs to decide per-edge fault and
/// corruption outcomes and per-peer quarantine standing. Immutable for the
/// whole walk — both fault streams are keyed (not drawn in order) and the
/// quarantine snapshot is frozen before the first hop — so sequential and
/// parallel engines observe identical decisions.
struct QuerySession {
    /// Omission faults: drops, slow peers, timeouts.
    faults: FaultSession,
    /// Commission faults: the per-edge corrupted-response stream.
    corrupt: CorruptionSession,
    /// The peer the query started at; its own deposits are never audited
    /// (a peer cannot usefully lie to itself).
    initiator: PeerId,
    /// The quarantine registry frozen at query start.
    qsnap: QuarantineSnapshot,
}

/// Executes RIPPLE queries over an overlay.
pub struct Executor<'a, O> {
    net: &'a O,
    /// When set, peers are handed plain tuple slices even on indexed
    /// substrates — the pre-index scan paths. Used by equivalence tests and
    /// the local-index benchmark; results and metrics must not differ.
    naive: bool,
    /// The fault-injection policy ([`FaultPlane::none`] by default).
    plane: FaultPlane,
    /// The per-query decision stream opened on the plane by each `run`.
    stream: u64,
    /// Whether ledgers retain the visit trace (on by default; sweeps that
    /// only aggregate turn it off to keep ledgers O(1) in network size).
    trace: bool,
    /// Whether failover may answer an abandoned region from a replica when
    /// the overlay maintains a [`ripple_net::ReplicaSet`] (on by default;
    /// with no replica set configured this flag is inert, so the executor
    /// stays bit-identical to the replica-unaware one).
    use_replicas: bool,
    /// Whether indexed views expose the store's columnar block mirror to the
    /// query functions (on by default). Off, indexed views degrade to
    /// [`LocalView::IndexedScalar`] — caches still work, but the blocked
    /// kernel scan paths are bypassed; results and metrics must not differ
    /// (the kernel equivalence suite enforces it).
    use_blocks: bool,
    /// The kernel dispatch arm (scalar / SIMD / auto) every blocked view
    /// handed out by this executor runs its scans on. `Auto` by default;
    /// the equivalence suites pin both forced arms against each other.
    dispatch: KernelDispatch,
    /// Whether executions emit an answer [`Certificate`] (on by default).
    /// Emission is plan-invisible: answers, metrics and coverage are
    /// bit-identical with certificates on or off — the ablation suite
    /// enforces it against [`Executor::without_certificates`].
    certificates: bool,
    /// The commission-fault policy ([`CorruptionPlane::none`] by default):
    /// remote answer deposits and prune witnesses pass through a seeded,
    /// per-edge-keyed corruption stream before the initiator sees them.
    corruption: CorruptionPlane,
    /// Whether every remote contribution is audited against the responder's
    /// authoritative store before merging (on by default). Off is the
    /// ablation arm that demonstrates poisoning: corrupted responses land
    /// in the final answer unchallenged.
    audit: bool,
}

/// The mutable state threaded through one *sequential* execution.
struct RunState<'q, Q> {
    query: &'q Q,
    /// Cost counters, visit trace, answer stream and abandoned volumes —
    /// the same ledger shape the parallel engine reduces per branch.
    ledger: BranchLedger,
    visited: FxHashSet<PeerId>,
    sess: QuerySession,
}

/// Everything a *parallel* execution shares across worker threads. Built
/// before the pool scope opens so tasks can borrow it for the scope's
/// lifetime; holds no per-branch mutable state (branches own their
/// [`BranchLedger`]s, and [`FaultSession`] decisions are keyed, not drawn).
struct ParCtx<'a, O, Q> {
    exec: &'a Executor<'a, O>,
    query: &'a Q,
    visited: ShardedVisited,
    sess: QuerySession,
    trace: bool,
    certs: bool,
}

impl<O: RippleOverlay, Q> ParCtx<'_, O, Q> {
    /// Marks a peer visited (the parallel twin of [`Executor::visit`]): the
    /// sharded set makes the *total* duplicate count schedule-independent.
    fn visit(&self, peer: PeerId, ledger: &mut BranchLedger) {
        if !self.visited.insert(peer) {
            ledger.metrics.duplicate_visits += 1;
        }
        ledger.metrics.visit(peer);
    }
}

impl<'a, O: RippleOverlay> Executor<'a, O> {
    /// Creates an executor over `net`.
    pub fn new(net: &'a O) -> Self {
        Self {
            net,
            naive: false,
            plane: FaultPlane::none(),
            stream: 0,
            trace: true,
            use_replicas: true,
            use_blocks: true,
            dispatch: KernelDispatch::Auto,
            certificates: true,
            corruption: CorruptionPlane::none(),
            audit: true,
        }
    }

    /// Creates an executor that ignores per-peer indexes and scans, exactly
    /// like the pre-index code paths.
    pub fn naive(net: &'a O) -> Self {
        Self {
            naive: true,
            ..Self::new(net)
        }
    }

    /// Creates a fault-aware executor. Each `run` opens the plane's decision
    /// stream `stream`, so a given (plane, stream, query) triple replays
    /// bit-identically; sweeps vary `stream` per query.
    pub fn with_faults(net: &'a O, plane: FaultPlane, stream: u64) -> Self {
        Self {
            plane,
            stream,
            ..Self::new(net)
        }
    }

    /// Disables visit-trace retention in the produced ledgers (counts are
    /// unaffected). For aggregate-only sweeps over large overlays.
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Disables replica recovery even when the overlay maintains a replica
    /// set: abandoned regions are reported unreachable exactly as the
    /// replica-unaware executor reports them. Used by equivalence tests and
    /// ablation sweeps.
    pub fn without_replicas(mut self) -> Self {
        self.use_replicas = false;
        self
    }

    /// Disables the columnar block mirror: indexed views are handed to the
    /// query functions as [`LocalView::IndexedScalar`], keeping every cache
    /// but forcing the scalar scan paths. Used by the kernel equivalence
    /// suite and as the baseline arm of the kernel benchmark; results and
    /// metrics must be bit-identical to the blocked executor.
    pub fn without_blocks(mut self) -> Self {
        self.use_blocks = false;
        self
    }

    /// Disables answer-certificate emission: [`QueryOutcome::certificate`]
    /// is `None` and no tile or witness is ever constructed. The ablation
    /// arm of the certificate suite — answers, metrics and coverage must be
    /// bit-identical to the certifying executor — and the baseline arm of
    /// the certificate-overhead benchmark.
    pub fn without_certificates(mut self) -> Self {
        self.certificates = false;
        self
    }

    /// Drives remote responses through a commission-fault plane: each
    /// non-initiator answer deposit and prune witness is corrupted with the
    /// plane's probability, keyed by `(responder, initiator)` on the
    /// executor's stream — replayable and schedule-free exactly like the
    /// omission-fault streams. With [`CorruptionPlane::none`] (the default)
    /// the corruption path short-circuits entirely.
    pub fn with_corruption(mut self, plane: CorruptionPlane) -> Self {
        self.corruption = plane;
        self
    }

    /// Disables the online response audit: remote contributions are merged
    /// as received, so an active corruption plane poisons the final answer.
    /// The ablation arm of the poisoning benchmark and mutation harness.
    pub fn without_audit(mut self) -> Self {
        self.audit = false;
        self
    }

    /// Pins the kernel dispatch arm of every blocked scan this executor's
    /// views perform (`Auto` by default). Results, answers and ledgers are
    /// bit-identical on every arm — the kernel contract — which the
    /// equivalence suites verify by running forced-scalar against
    /// forced-SIMD executors.
    pub fn with_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The overlay this executor runs over.
    pub fn network(&self) -> &'a O {
        self.net
    }

    /// Opens one query's immutable fault/corruption/quarantine session on
    /// this executor's stream.
    fn session(&self, initiator: PeerId) -> QuerySession {
        QuerySession {
            faults: self.plane.session(self.stream),
            corrupt: self.corruption.session(self.stream),
            initiator,
            qsnap: self
                .net
                .quarantine()
                .map(|q| q.snapshot())
                .unwrap_or_default(),
        }
    }

    /// Flushes a finished query's merged audit verdicts into the overlay's
    /// quarantine registry (tainted-wins per peer, order-free), crediting
    /// newly quarantined peers to the ledger. A no-op for clean runs and
    /// for overlays without a registry.
    fn flush_audits(&self, ledger: &mut BranchLedger) {
        if ledger.audits.is_empty() {
            return;
        }
        if let Some(q) = self.net.quarantine() {
            ledger.metrics.quarantined_peers += q.apply(&ledger.audits);
        }
    }

    /// The view of `peer`'s tuples handed to the query functions. Indexed
    /// views are re-stamped with this executor's kernel dispatch arm (or
    /// downgraded to scalar when blocks are disabled).
    fn view_of(&self, peer: PeerId) -> LocalView<'_> {
        if self.naive {
            return LocalView::Plain(self.net.peer_tuples(peer));
        }
        match self.net.peer_view(peer) {
            LocalView::Indexed(store, _) if !self.use_blocks => LocalView::IndexedScalar(store),
            LocalView::Indexed(store, _) => LocalView::Indexed(store, self.dispatch),
            view => view,
        }
    }

    /// Turns the absolute abandoned volumes of a finished execution into
    /// the outcome's [`Coverage`].
    fn coverage_of(&self, unreachable: &[f64]) -> Coverage {
        if unreachable.is_empty() {
            return Coverage::full();
        }
        let full_vol = self.net.region_volume(&self.net.full_region());
        Coverage::from_unreachable(unreachable.iter().map(|v| v / full_vol).collect())
    }

    /// Records the *zone* tile of a visited peer: the part of its
    /// restriction area covered by no intersected link. Links plus zone
    /// partition the whole domain, so within the restriction the zone's
    /// volume is exactly the restriction volume minus the link volumes
    /// (compensated sum — tile counts run into the thousands under
    /// broadcast). No-op when certificate emission is off.
    ///
    /// Returns the tile's index in the branch's certificate stream so a
    /// later failed deposit audit can rewrite the tile in place (the
    /// audited-out zone becomes replica-served or unreachable).
    fn certify_scan(
        &self,
        w: PeerId,
        restriction: &O::Region,
        links: &[(PeerId, O::Region)],
        ledger: &mut BranchLedger,
    ) -> Option<usize> {
        ledger.cert.as_ref()?;
        let covered = neumaier(links.iter().map(|(_, r)| self.net.region_volume(r)));
        let volume = self.net.region_volume(restriction) - covered;
        ledger.certify(|| CertRegion::Scanned {
            peer: w.index() as u64,
            volume,
        });
        ledger.cert.as_ref().map(|c| c.len() - 1)
    }

    /// Records a pruned-link tile with the query's evidence that skipping
    /// the region was sound. No-op when certificate emission is off.
    ///
    /// The commission-fault plane taps this path: a lying peer reports a
    /// corrupted numeric bound for the witness. When auditing is on the
    /// claimed bound is checked against the honestly recomputed one — a
    /// mismatch taints the peer and the *honest* witness is emitted (the
    /// pruned region itself needs no re-query: pruning soundness depends
    /// only on the recomputed bound). When auditing is off the corrupted
    /// witness lands in the certificate, where the offline verifier fails
    /// it with `WitnessMismatch`.
    fn certify_pruned<Q: RankQuery<O::Region>>(
        &self,
        query: &Q,
        w: PeerId,
        region: &O::Region,
        global: &Q::Global,
        sess: &QuerySession,
        ledger: &mut BranchLedger,
    ) {
        if ledger.cert.is_none() {
            return;
        }
        let honest = query.prune_witness(region, global);
        let witness = if w != sess.initiator && sess.corrupt.lies_about_witness(w, sess.initiator) {
            corrupt_witness(&honest)
        } else {
            honest.clone()
        };
        let emitted = if self.audit && sess.corrupt.active() {
            ledger.metrics.audits_run += 1;
            if audit_witness(&witness, &honest).is_err() {
                ledger.metrics.audits_failed += 1;
                ledger.audits.push((w, true));
                honest
            } else {
                witness
            }
        } else {
            witness
        };
        let entry = CertRegion::Pruned {
            rects: self.net.region_rects(region),
            volume: self.net.region_volume(region),
            witness: emitted,
        };
        ledger.certify(|| entry);
    }

    /// Seals a finished execution's tile stream into the outcome's
    /// [`Certificate`], stamped with the overlay's snapshot generation.
    fn seal_certificate(&self, regions: Option<Vec<CertRegion>>) -> Option<Certificate> {
        regions.map(|regions| Certificate {
            generation: self.net.snapshot_generation(),
            domain_volume: self.net.region_volume(&self.net.full_region()),
            regions,
        })
    }

    /// Processes `query` from `initiator` in the given mode, returning the
    /// collected answers, the initiator's final state and the cost ledger.
    pub fn run<Q>(&self, initiator: PeerId, query: &Q, mode: Mode) -> QueryOutcome<Q::Local>
    where
        Q: RankQuery<O::Region>,
    {
        assert!(
            self.net.is_peer_live(initiator),
            "query initiated at a crashed peer {initiator}"
        );
        let mut run = RunState {
            query,
            ledger: BranchLedger::with_certificates(self.trace, self.certificates),
            // Worst case every peer is visited (broadcast); pre-sizing from
            // the overlay keeps the hot set from rehashing mid-query.
            visited: fx_set_with_capacity(self.net.peer_count()),
            sess: self.session(initiator),
        };
        let full = self.net.full_region();
        let global = query.initial_global();
        let (state, latency) = match mode {
            Mode::Fast => self.fast(initiator, &global, full, false, &mut run),
            Mode::Slow => self.slow(initiator, &global, full, &mut run),
            Mode::Ripple(0) => self.fast(initiator, &global, full, false, &mut run),
            Mode::Ripple(r) => self.ripple(initiator, &global, full, r, &mut run),
            Mode::Broadcast => self.broadcast(initiator, &global, full, &mut run),
        };
        self.flush_audits(&mut run.ledger);
        let mut metrics = run.ledger.metrics;
        metrics.latency = latency;
        let coverage = self.coverage_of(&run.ledger.unreachable);
        let certificate = self.seal_certificate(run.ledger.cert);
        QueryOutcome {
            answers: run.ledger.answers,
            state,
            metrics,
            coverage,
            certificate,
        }
    }

    /// Processes `query` like [`run`](Executor::run), but executes the
    /// independent restriction-area subtrees of the *fast* templates
    /// (`Fast`, `Broadcast`, and the fast phase of `Ripple(r)`) concurrently
    /// on a scoped work-stealing pool of `threads` participants.
    ///
    /// The outcome is **bit-identical** to the sequential one — same
    /// answers, same [`QueryMetrics`] including the visit trace, same
    /// [`Coverage`] — for every mode, fault plane and thread count; the
    /// equivalence suite enforces this. With `threads <= 1`, or for
    /// `Mode::Slow` (semantically sequential: every link waits for the
    /// previous state response), this *is* the sequential engine.
    ///
    /// [`QueryMetrics`]: ripple_net::QueryMetrics
    pub fn run_parallel<Q>(
        &self,
        initiator: PeerId,
        query: &Q,
        mode: Mode,
        threads: usize,
    ) -> QueryOutcome<Q::Local>
    where
        O: Sync,
        O::Region: Send,
        Q: RankQuery<O::Region> + Sync,
        Q::Global: Send + Sync,
        Q::Local: Send,
    {
        if threads <= 1 || matches!(mode, Mode::Slow) {
            return self.run(initiator, query, mode);
        }
        assert!(
            self.net.is_peer_live(initiator),
            "query initiated at a crashed peer {initiator}"
        );
        let ctx = ParCtx {
            exec: self,
            query,
            visited: ShardedVisited::new(self.net.peer_count(), threads * 4),
            sess: self.session(initiator),
            trace: self.trace,
            certs: self.certificates,
        };
        let (state, latency, mut ledger) = pool::scope(threads - 1, |pool| {
            let mut ledger = BranchLedger::with_certificates(self.trace, self.certificates);
            let full = self.net.full_region();
            let global = ctx.query.initial_global();
            let (state, latency) = match mode {
                Mode::Fast | Mode::Ripple(0) => {
                    fast_par(&ctx, initiator, &global, full, false, pool, &mut ledger)
                }
                Mode::Ripple(r) => ripple_par(&ctx, initiator, &global, full, r, pool, &mut ledger),
                Mode::Broadcast => {
                    broadcast_par(&ctx, initiator, &Arc::new(global), full, pool, &mut ledger)
                }
                Mode::Slow => unreachable!("slow mode delegates to the sequential engine"),
            };
            (state, latency, ledger)
        });
        self.flush_audits(&mut ledger);
        let mut metrics = ledger.metrics;
        metrics.latency = latency;
        let coverage = self.coverage_of(&ledger.unreachable);
        let certificate = self.seal_certificate(ledger.cert);
        QueryOutcome {
            answers: ledger.answers,
            state,
            metrics,
            coverage,
            certificate,
        }
    }

    /// Marks a peer visited. The restriction areas guarantee each peer
    /// processes a query at most once; a second visit is a correctness
    /// anomaly, counted in [`QueryMetrics::duplicate_visits`] and surfaced
    /// all the way into the figure CSVs rather than tolerated silently (or
    /// audited only in debug builds, as before).
    ///
    /// [`QueryMetrics::duplicate_visits`]: ripple_net::QueryMetrics::duplicate_visits
    fn visit<Q>(&self, peer: PeerId, run: &mut RunState<'_, Q>) {
        if !run.visited.insert(peer) {
            run.ledger.metrics.duplicate_visits += 1;
        }
        run.ledger.metrics.visit(peer);
    }

    /// Simulates the retransmission loop of the edge `sender → target`:
    /// `1 + max_retries` send attempts, each lost to the network with the
    /// plane's drop probability (or unacknowledged outright when the target
    /// is dead), each loss costing the sender a timeout wait that backs off
    /// exponentially. Returns `(elapsed, delivered)` — the simulated hops
    /// that passed at the sender and whether the message was eventually
    /// processed (in which case `elapsed` includes the final transit hop and
    /// the target's slow-peer penalty).
    ///
    /// Each attempt's drop verdict comes from the fault session's stream
    /// keyed by `(sender, target, attempt)` — no draw-order state exists, so
    /// sequential and parallel walks of the same tree see the same losses.
    fn transmit(
        &self,
        sender: PeerId,
        target: PeerId,
        faults: &FaultSession,
        ledger: &mut BranchLedger,
    ) -> (u64, bool) {
        let alive = self.net.is_peer_live(target);
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        loop {
            ledger.metrics.forward();
            // `&&` short-circuits: sends to a dead peer are lost without
            // consulting the drop stream (the keyed verdict for that edge is
            // simply never asked for).
            if alive && !faults.drops_message(sender, target, attempt) {
                return (elapsed + 1 + faults.slow_penalty(target), true);
            }
            if alive {
                ledger.metrics.messages_dropped += 1;
            }
            ledger.metrics.timeouts += 1;
            elapsed += faults.timeout() << attempt.min(16);
            if attempt >= faults.max_retries() {
                return (elapsed, false);
            }
            attempt += 1;
            ledger.metrics.retries += 1;
        }
    }

    /// Answers the dead zones of an abandoned (part of a) restriction area
    /// from the overlay's replica set, if one is maintained. For each dead
    /// zone inside `region` whose owner has a fresh-enough copy on a live
    /// holder, the adopter fetches the copy (one forward message, the
    /// payload charged to `replica_bytes`) and runs the query's local
    /// functions over it via `answer`, appending the result to the branch
    /// ledger exactly where a live peer's answer would land. `kept` is the
    /// part of the region failover *did* cover — dead zones falling inside
    /// it will be answered by the adopted subtree itself and are skipped
    /// here, so no tuple is recovered twice. Returns the total dead-zone
    /// volume recovered; the caller subtracts it from the would-be
    /// unreachable volume.
    ///
    /// Replica fetches add messages and bytes but no simulated hops: the
    /// adopter overlaps the fetch with the waits already charged by the
    /// failed retransmissions.
    fn recover_region<F: Fn(&[Tuple]) -> Vec<Tuple>>(
        &self,
        region: &O::Region,
        kept: Option<&O::Region>,
        excluded: &[PeerId],
        ledger: &mut BranchLedger,
        answer: &F,
    ) -> f64 {
        if !self.use_replicas {
            return 0.0;
        }
        let Some(set) = self.net.replicas() else {
            return 0.0;
        };
        if set.k() == 0 || set.is_empty() {
            return 0.0;
        }
        // Owners whose dead (or quarantined) zone survives in the kept
        // part: the adopted subtree recovers those itself (its own deliver
        // failures will land here again with the smaller region).
        let downstream: Vec<PeerId> = match kept {
            Some(kept) => self
                .net
                .dead_zones_in(kept)
                .into_iter()
                .chain(self.net.peer_zones_in(excluded, kept))
                .map(|(owner, _)| owner)
                .collect(),
            None => Vec::new(),
        };
        // Dead zones first, quarantined zones after — a fixed order on data
        // that cannot change mid-query (orphans under the epoch handshake,
        // `excluded` from the immutable session snapshot), so sequential
        // and parallel recoveries agree tile for tile.
        let candidates = self
            .net
            .dead_zones_in(region)
            .into_iter()
            .chain(self.net.peer_zones_in(excluded, region));
        let mut recovered = 0.0;
        for (owner, vol) in candidates {
            if downstream.contains(&owner) {
                continue;
            }
            let Some(rep) = set.get(owner) else {
                continue;
            };
            if !rep.holders().iter().any(|&h| self.net.is_peer_live(h)) {
                continue;
            }
            ledger.metrics.forward();
            ledger.metrics.replica_hits += 1;
            if set.is_stale(rep) {
                ledger.metrics.stale_reads += 1;
            }
            ledger.metrics.replica_bytes += rep.payload_bytes();
            let ans = with_scan(self.trace, &mut ledger.metrics, || answer(rep.tuples()));
            ledger.answer(ans);
            ledger.certify(|| CertRegion::Replica {
                owner: owner.index() as u64,
                volume: vol,
            });
            recovered += vol;
        }
        recovered
    }

    /// The coordinates of a fabricated tuple: the max corner of the first
    /// rectangle of the restriction area the lying peer was handed. The
    /// corner maximizes monotone scores, so an unaudited executor ranks the
    /// forgery at the top — the worst-case poisoning.
    fn fabricated_point(&self, restriction: &O::Region) -> Option<Vec<f64>> {
        self.net
            .region_rects(restriction)
            .first()
            .map(|r| r.hi().coords().to_vec())
    }

    /// Deposits a peer's local answer into the branch ledger, passing it
    /// through the commission-fault plane and the online audit on the way.
    ///
    /// The initiator's own deposit is merged directly, and with no active
    /// corruption plane and no probation peer to probe the whole path
    /// collapses to the historical `ledger.answer(...)` — the clean-path
    /// invisibility gate. Otherwise the deposit is wrapped in a response
    /// envelope, possibly corrupted by the session's keyed stream, and —
    /// when auditing is on — checked against the responder's authoritative
    /// store: a failed audit discards the payload, taints the peer, and
    /// re-answers its zone from a replica (or honestly reports it
    /// unreachable). `recompute` runs the query's local functions the way
    /// an honest responder would, under the global state the peer was
    /// handed.
    #[allow(clippy::too_many_arguments)]
    fn deposit_answer<F: Fn(&[Tuple]) -> Vec<Tuple>>(
        &self,
        w: PeerId,
        restriction: &O::Region,
        scan_tile: Option<usize>,
        sess: &QuerySession,
        ledger: &mut BranchLedger,
        answer: Vec<Tuple>,
        recompute: &F,
    ) {
        if w == sess.initiator || (!sess.corrupt.active() && !sess.qsnap.has_probation()) {
            ledger.answer(answer);
            return;
        }
        let expected = self.net.snapshot_generation();
        let mut payload = answer;
        let mut declared = payload.len();
        let mut generation = expected;
        if let Some(mode) = sess.corrupt.corrupts(w, sess.initiator, 0) {
            corrupt_payload(
                mode,
                &mut payload,
                &mut declared,
                &mut generation,
                w,
                || self.fabricated_point(restriction),
            );
        }
        if !self.audit {
            // Ablation arm: the (possibly poisoned) payload is merged
            // unchallenged.
            ledger.answer(payload);
            return;
        }
        ledger.metrics.audits_run += 1;
        let env = ResponseEnvelope {
            payload: &payload,
            declared_len: declared,
            generation,
        };
        if audit_response(&env, self.net.peer_tuples(w), expected).is_ok() {
            if sess.qsnap.is_probation(w) {
                ledger.audits.push((w, false));
            }
            ledger.answer(payload);
        } else {
            ledger.metrics.audits_failed += 1;
            ledger.metrics.tainted_tuples_discarded += payload.len() as u64;
            ledger.audits.push((w, true));
            self.audit_recover(w, restriction, scan_tile, ledger, recompute);
        }
    }

    /// Re-answers the zone of an audited-out peer: its tainted contribution
    /// covered the part of `restriction` no intersected link claims — the
    /// same arithmetic as the peer's `Scanned` tile. A live replica of the
    /// peer's tuples answers the zone (charged like any failover replica
    /// read); with none, the zone is honestly unreachable. Either way the
    /// scanned tile is rewritten in place; the unreachable case also
    /// inserts the volume into the ledger's coverage stream at the tile's
    /// ordinal, keeping the 1:1 in-order pairing between `Unreachable`
    /// tiles and coverage entries that both engines and the coverage
    /// verifier rely on.
    fn audit_recover<F: Fn(&[Tuple]) -> Vec<Tuple>>(
        &self,
        w: PeerId,
        restriction: &O::Region,
        scan_tile: Option<usize>,
        ledger: &mut BranchLedger,
        recompute: &F,
    ) {
        let covered = neumaier(
            self.net
                .peer_links(w)
                .into_iter()
                .filter_map(|(_, region)| self.net.region_intersect(&region, restriction))
                .map(|rr| self.net.region_volume(&rr)),
        );
        let volume = self.net.region_volume(restriction) - covered;
        if self.use_replicas {
            if let Some(set) = self.net.replicas().filter(|s| s.k() > 0) {
                if let Some(rep) = set.get(w) {
                    if rep.holders().iter().any(|&h| self.net.is_peer_live(h)) {
                        ledger.metrics.forward();
                        ledger.metrics.replica_hits += 1;
                        if set.is_stale(rep) {
                            ledger.metrics.stale_reads += 1;
                        }
                        ledger.metrics.replica_bytes += rep.payload_bytes();
                        let ans =
                            with_scan(self.trace, &mut ledger.metrics, || recompute(rep.tuples()));
                        ledger.answer(ans);
                        if let (Some(idx), Some(cert)) = (scan_tile, ledger.cert.as_mut()) {
                            cert[idx] = CertRegion::Replica {
                                owner: w.index() as u64,
                                volume,
                            };
                        }
                        return;
                    }
                }
            }
        }
        match (scan_tile, ledger.cert.as_mut()) {
            (Some(idx), Some(cert)) => {
                let ordinal = cert[..idx]
                    .iter()
                    .filter(|r| matches!(r, CertRegion::Unreachable { .. }))
                    .count();
                cert[idx] = CertRegion::Unreachable { volume };
                ledger.unreachable.insert(ordinal, volume);
            }
            _ => ledger.unreachable.push(volume),
        }
    }

    /// Delivers a query-forward from `sender` into `restriction`, starting
    /// at the link target `first` and failing over across the overlay's
    /// alternate live candidates when retransmissions are exhausted. Returns
    /// the simulated hops spent at the sender and the peer that ended up
    /// processing the message together with the (possibly failover-trimmed)
    /// restriction it covers — or `None` when every candidate failed. Both
    /// the trimmed-off parts and fully abandoned areas are first offered to
    /// [`Executor::recover_region`] — when the overlay replicates, the dead
    /// zones inside them are answered from replicas — and only the volume
    /// that stays unanswered is recorded as unreachable (graceful
    /// degradation, honestly accounted).
    ///
    /// With an inactive fault session this is exactly one `forward()` and
    /// one hop — bit-identical to the historical fault-unaware executor.
    /// With no replica set (or `k = 0`) the recovery call returns zero and
    /// the unreachable accounting is bit-identical to the replica-unaware
    /// executor.
    fn deliver<F: Fn(&[Tuple]) -> Vec<Tuple>>(
        &self,
        sender: PeerId,
        first: PeerId,
        restriction: O::Region,
        sess: &QuerySession,
        ledger: &mut BranchLedger,
        answer: &F,
    ) -> (u64, Option<(PeerId, O::Region)>) {
        if !sess.faults.active() && sess.qsnap.no_exclusions() {
            ledger.metrics.forward();
            return (1, Some((first, restriction)));
        }
        let mut elapsed = 0u64;
        let mut tried: Vec<PeerId> = sess.qsnap.excluded().to_vec();
        let mut target = first;
        let mut restriction = restriction;
        loop {
            // A quarantined target is refused outright — no send, no
            // timeout wait: the sender treats it like a known-dead peer.
            let (spent, delivered) = if sess.qsnap.is_excluded(target) {
                (0, false)
            } else {
                self.transmit(sender, target, &sess.faults, ledger)
            };
            elapsed += spent;
            if delivered {
                return (elapsed, Some((target, restriction)));
            }
            if !tried.contains(&target) {
                tried.push(target);
            }
            // The filter guards against overlays whose `failover_target`
            // ignores the `tried` exclusion: re-selecting an already-tried
            // peer would loop forever once quarantine (or the overlay's own
            // candidate logic) shrinks the candidate set. A filtered-out
            // candidate means candidates are exhausted, not retryable.
            match self
                .net
                .failover_target(&restriction, &tried)
                .filter(|(next, _)| !tried.contains(next))
            {
                Some((next, sub)) => {
                    let lost = self.net.region_volume(&restriction) - self.net.region_volume(&sub);
                    if lost > 1e-12 {
                        let recovered = self.recover_region(
                            &restriction,
                            Some(&sub),
                            sess.qsnap.excluded(),
                            ledger,
                            answer,
                        );
                        let remaining = lost - recovered;
                        if remaining > 1e-12 {
                            ledger.unreachable.push(remaining);
                            ledger.certify(|| CertRegion::Unreachable { volume: remaining });
                        }
                    }
                    restriction = sub;
                    target = next;
                }
                None => {
                    let vol = self.net.region_volume(&restriction);
                    let recovered = self.recover_region(
                        &restriction,
                        None,
                        sess.qsnap.excluded(),
                        ledger,
                        answer,
                    );
                    if recovered == 0.0 {
                        // Bit-identical to the replica-unaware executor: the
                        // whole region is reported, even if its volume is
                        // (numerically) zero.
                        ledger.unreachable.push(vol);
                        ledger.certify(|| CertRegion::Unreachable { volume: vol });
                    } else {
                        let remaining = vol - recovered;
                        if remaining > 1e-12 {
                            ledger.unreachable.push(remaining);
                            ledger.certify(|| CertRegion::Unreachable { volume: remaining });
                        }
                    }
                    return (elapsed, None);
                }
            }
        }
    }

    /// Algorithm 1 — and the `r = 0` loop of Algorithm 3 when
    /// `report_states` is set. Returns the peer's final local state and the
    /// completion latency of its restriction area.
    ///
    /// Under Algorithm 3 every fast-phase peer sends its local state
    /// directly to the last slow-phase ancestor `u` (Alg. 3 line 19, with
    /// `u` forwarded unchanged at line 15); the recursive return value
    /// models the union of those states, and `report_states` charges one
    /// state-response message per peer. Under pure Algorithm 1 no state
    /// responses exist and none are charged.
    fn fast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        report_states: bool,
        run: &mut RunState<'_, Q>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let q = run.query;
        let local = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_state(&view, global)
        });
        let global_w = q.compute_global_state(global, &local);

        // Intersected links in link order; together with this peer's zone
        // they tile the restriction area. `fast` never refines `global_w`
        // between links, so relevance — and the pruned tiles — can be
        // decided up front, which is exactly the order the parallel engine
        // emits; interleaving them with the delivery loop would make the
        // sequential and parallel certificates differ.
        let intersected: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        let scan_tile = self.certify_scan(w, &restriction, &intersected, &mut run.ledger);
        let mut links = Vec::with_capacity(intersected.len());
        for (target, restricted) in intersected {
            if q.is_link_relevant(&restricted, &global_w) {
                links.push((target, restricted));
            } else {
                self.certify_pruned(q, w, &restricted, &global_w, &run.sess, &mut run.ledger);
            }
        }

        let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, &global_w);
        let mut latency = 0u64;
        let mut remote_states = Vec::new();
        for (target, restricted) in links {
            let (delay, adopted) =
                self.deliver(w, target, restricted, &run.sess, &mut run.ledger, &answer);
            let Some((dest, restricted)) = adopted else {
                // subtree unreachable: the time wasted waiting still counts
                latency = latency.max(delay);
                continue;
            };
            let (remote, child_latency) =
                self.fast(dest, &global_w, restricted, report_states, run);
            latency = latency.max(delay + child_latency);
            remote_states.push(remote);
        }
        let local_answer = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_answer(&view, &local)
        });
        // An honest responder answers its zone from the state it *received*
        // — exactly what a replica re-query reproduces after a failed audit.
        let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, global);
        self.deposit_answer(
            w,
            &restriction,
            scan_tile,
            &run.sess,
            &mut run.ledger,
            local_answer,
            &recompute,
        );
        if report_states {
            run.ledger.metrics.respond(run.query.state_payload(&local));
        }
        let merged = if remote_states.is_empty() {
            local
        } else {
            remote_states.push(local);
            run.query.update_local_state(remote_states)
        };
        (merged, latency)
    }

    /// Algorithm 2. Returns the final local state and completion latency.
    fn slow<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let q = run.query;
        let mut local = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_state(&view, global)
        });
        let mut global_w = q.compute_global_state(global, &local);

        // sortLinks: decreasing priority of the restricted regions.
        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        let scan_tile = self.certify_scan(w, &restriction, &links, &mut run.ledger);
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                // Pruned under the *refined* state — certified mid-loop
                // (slow is sequential in both engines, so the order agrees).
                self.certify_pruned(q, w, &restricted, &global_w, &run.sess, &mut run.ledger);
                continue;
            }
            // Re-created each iteration: recovery answers under the *current*
            // refined global state, exactly what this forward carried.
            let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, &global_w);
            let (delay, adopted) =
                self.deliver(w, target, restricted, &run.sess, &mut run.ledger, &answer);
            let Some((dest, restricted)) = adopted else {
                // unreachable: sequential mode pays the wait in full
                latency += delay;
                continue;
            };
            let (remote, child_latency) = self.slow(dest, &global_w, restricted, run);
            latency += delay + child_latency;
            // the state response from the child
            run.ledger.metrics.respond(run.query.state_payload(&remote));
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let local_answer = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_answer(&view, &local)
        });
        let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, global);
        self.deposit_answer(
            w,
            &restriction,
            scan_tile,
            &run.sess,
            &mut run.ledger,
            local_answer,
            &recompute,
        );
        (local, latency)
    }

    /// Algorithm 3 with ripple parameter `r`.
    fn ripple<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        r: u32,
        run: &mut RunState<'_, Q>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        if r == 0 {
            // Below the hop budget every peer runs the fast loop; local
            // states stream back to the last slow-phase ancestor, which the
            // recursive return value models.
            return self.fast(w, global, restriction, true, run);
        }
        self.visit(w, run);
        let view = self.view_of(w);
        let q = run.query;
        let mut local = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_state(&view, global)
        });
        let mut global_w = q.compute_global_state(global, &local);

        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        let scan_tile = self.certify_scan(w, &restriction, &links, &mut run.ledger);
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                self.certify_pruned(q, w, &restricted, &global_w, &run.sess, &mut run.ledger);
                continue;
            }
            let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, &global_w);
            let (delay, adopted) =
                self.deliver(w, target, restricted, &run.sess, &mut run.ledger, &answer);
            let Some((dest, restricted)) = adopted else {
                latency += delay;
                continue;
            };
            let (remote, child_latency) = if r == 1 {
                // Fast-phase peers charge their own state responses (they
                // report directly to this peer).
                self.fast(dest, &global_w, restricted, true, run)
            } else {
                let out = self.ripple(dest, &global_w, restricted, r - 1, run);
                run.ledger.metrics.respond(run.query.state_payload(&out.0));
                out
            };
            latency += delay + child_latency;
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let local_answer = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_answer(&view, &local)
        });
        let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, global);
        self.deposit_answer(
            w,
            &restriction,
            scan_tile,
            &run.sess,
            &mut run.ledger,
            local_answer,
            &recompute,
        );
        (local, latency)
    }

    /// Naive broadcast (Section 1): reach *every* peer in the restriction
    /// area in parallel, ignoring states; every peer answers from purely
    /// local knowledge.
    fn broadcast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let q = run.query;
        let local = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_state(&view, global)
        });

        // Collected before the fan-out so the scanned tile lands ahead of
        // the subtree tiles, matching the parallel engine's emission order.
        let links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        let scan_tile = self.certify_scan(w, &restriction, &links, &mut run.ledger);

        let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(q, t, global);
        let mut latency = 0u64;
        for (target, restricted) in links {
            let (delay, adopted) =
                self.deliver(w, target, restricted, &run.sess, &mut run.ledger, &answer);
            let Some((dest, restricted)) = adopted else {
                latency = latency.max(delay);
                continue;
            };
            // the global state is never refined — pure flooding
            let (_, child_latency) = self.broadcast(dest, global, restricted, run);
            latency = latency.max(delay + child_latency);
        }
        let local_answer = with_scan(self.trace, &mut run.ledger.metrics, || {
            q.compute_local_answer(&view, &local)
        });
        self.deposit_answer(
            w,
            &restriction,
            scan_tile,
            &run.sess,
            &mut run.ledger,
            local_answer,
            &answer,
        );
        (local, latency)
    }
}

/// Applies one commission-fault mode to an answer envelope in place.
/// `fabricate` supplies the coordinates of a forged tuple (`None` when the
/// restriction has no geometry to forge into).
fn corrupt_payload(
    mode: CorruptionMode,
    payload: &mut Vec<Tuple>,
    declared: &mut usize,
    generation: &mut u64,
    w: PeerId,
    fabricate: impl FnOnce() -> Option<Vec<f64>>,
) {
    match mode {
        CorruptionMode::ScoreFlip => {
            if let Some(t) = payload.first_mut() {
                let mut coords = t.point.coords().to_vec();
                coords[0] = -(coords[0].abs() + 1.0);
                *t = Tuple::new(t.id, coords);
            }
        }
        CorruptionMode::Truncate => {
            // The declared length stays honest while the payload loses its
            // last tuple (an empty answer has nothing to truncate).
            payload.pop();
        }
        CorruptionMode::StaleGeneration => *generation = generation.wrapping_sub(1),
        CorruptionMode::Fabricate => {
            if let Some(coords) = fabricate() {
                // A fresh id no store ever issued; length re-declared so
                // only store membership can catch the forgery.
                payload.push(Tuple::new(u64::MAX - w.index() as u64, coords));
                *declared = payload.len();
            }
        }
        CorruptionMode::LyingWitness => {
            unreachable!("witness lies are drawn on the witness stream, never on deposits")
        }
    }
}

/// A corrupted numeric prune witness: the claimed bound drifts off the
/// honestly recomputed one. Structural witnesses have no number to lie
/// about and pass through unchanged.
fn corrupt_witness(honest: &PruneWitness) -> PruneWitness {
    match honest {
        PruneWitness::ScoreBound { bound } => PruneWitness::ScoreBound { bound: bound + 1.0 },
        PruneWitness::PhiBound { bound } => PruneWitness::PhiBound { bound: bound - 1.0 },
        other => other.clone(),
    }
}

/// One forked branch of a parallel fast/broadcast fan-out: the delivery
/// delay of the edge that reached it, the subtree's result (state and
/// completion latency; `None` when every delivery candidate failed), and
/// the branch's partial ledger.
type Branch<L> = (u64, Option<(L, u64)>, BranchLedger);

/// Parallel Algorithm 1 (and the fast phase of Algorithm 3): the mirror of
/// [`Executor::fast`] that forks one task per relevant link and reduces the
/// children's [`BranchLedger`]s back **in link order**, which restores the
/// sequential executor's ledger bit-for-bit (pre-order visits, post-order
/// answers, link-order abandonment; counters are order-free sums).
///
/// Relevance is decided *before* forking, against the same `global_w` the
/// sequential loop uses — `fast` never refines the global state between
/// links, so the link filter is identical by construction.
fn fast_par<'env, O, Q>(
    ctx: &'env ParCtx<'env, O, Q>,
    w: PeerId,
    global: &Q::Global,
    restriction: O::Region,
    report_states: bool,
    pool: &Pool<'env>,
    ledger: &mut BranchLedger,
) -> (Q::Local, u64)
where
    O: RippleOverlay + Sync,
    O::Region: Send + 'env,
    Q: RankQuery<O::Region> + Sync,
    Q::Global: Send + Sync + 'env,
    Q::Local: Send + 'env,
{
    ctx.visit(w, ledger);
    let view = ctx.exec.view_of(w);
    let local = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_state(&view, global)
    });
    let global_w = Arc::new(ctx.query.compute_global_state(global, &local));

    // The same links, filtered by the same predicates, in the same order as
    // the sequential loop — including the same certificate tiles: scanned
    // first, then the pruned links in link order, then the branches.
    let intersected: Vec<(PeerId, O::Region)> = ctx
        .exec
        .net
        .peer_links(w)
        .into_iter()
        .filter_map(|(t, region)| {
            ctx.exec
                .net
                .region_intersect(&region, &restriction)
                .map(|rr| (t, rr))
        })
        .collect();
    let scan_tile = ctx.exec.certify_scan(w, &restriction, &intersected, ledger);
    let mut links = Vec::with_capacity(intersected.len());
    for (target, restricted) in intersected {
        if ctx.query.is_link_relevant(&restricted, &global_w) {
            links.push((target, restricted));
        } else {
            ctx.exec
                .certify_pruned(ctx.query, w, &restricted, &global_w, &ctx.sess, ledger);
        }
    }

    let mut latency = 0u64;
    let mut remote_states = Vec::new();
    if links.len() <= 1 {
        // A chain: forking buys nothing, recurse inline on this thread.
        let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, &global_w);
        for (target, restricted) in links {
            let (delay, adopted) = ctx
                .exec
                .deliver(w, target, restricted, &ctx.sess, ledger, &answer);
            match adopted {
                None => latency = latency.max(delay),
                Some((dest, restricted)) => {
                    let (remote, child_latency) = fast_par(
                        ctx,
                        dest,
                        &global_w,
                        restricted,
                        report_states,
                        pool,
                        ledger,
                    );
                    latency = latency.max(delay + child_latency);
                    remote_states.push(remote);
                }
            }
        }
    } else {
        let branches: Vec<Branch<Q::Local>> = pool.join_all(
            links
                .into_iter()
                .map(|(target, restricted)| {
                    let global_w = Arc::clone(&global_w);
                    move |pool: &Pool<'env>| {
                        let mut branch = BranchLedger::with_certificates(ctx.trace, ctx.certs);
                        let answer =
                            |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, &global_w);
                        let (delay, adopted) = ctx.exec.deliver(
                            w,
                            target,
                            restricted,
                            &ctx.sess,
                            &mut branch,
                            &answer,
                        );
                        match adopted {
                            None => (delay, None, branch),
                            Some((dest, restricted)) => {
                                let (remote, child_latency) = fast_par(
                                    ctx,
                                    dest,
                                    &global_w,
                                    restricted,
                                    report_states,
                                    pool,
                                    &mut branch,
                                );
                                (delay, Some((remote, child_latency)), branch)
                            }
                        }
                    }
                })
                .collect(),
        );
        for (delay, result, branch) in branches {
            ledger.merge_child(branch);
            match result {
                None => latency = latency.max(delay),
                Some((remote, child_latency)) => {
                    latency = latency.max(delay + child_latency);
                    remote_states.push(remote);
                }
            }
        }
    }
    let local_answer = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_answer(&view, &local)
    });
    let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, global);
    ctx.exec.deposit_answer(
        w,
        &restriction,
        scan_tile,
        &ctx.sess,
        ledger,
        local_answer,
        &recompute,
    );
    if report_states {
        ledger.metrics.respond(ctx.query.state_payload(&local));
    }
    let merged = if remote_states.is_empty() {
        local
    } else {
        remote_states.push(local);
        ctx.query.update_local_state(remote_states)
    };
    (merged, latency)
}

/// Parallel Algorithm 3: the slow phase above the hop budget is semantically
/// sequential (every link waits for the previous state response before
/// relevance is re-decided), so it runs on the caller and accumulates into
/// the shared ledger exactly like [`Executor::ripple`]; once `r` reaches 0
/// the fast-phase subtrees fan out through [`fast_par`].
fn ripple_par<'env, O, Q>(
    ctx: &'env ParCtx<'env, O, Q>,
    w: PeerId,
    global: &Q::Global,
    restriction: O::Region,
    r: u32,
    pool: &Pool<'env>,
    ledger: &mut BranchLedger,
) -> (Q::Local, u64)
where
    O: RippleOverlay + Sync,
    O::Region: Send + 'env,
    Q: RankQuery<O::Region> + Sync,
    Q::Global: Send + Sync + 'env,
    Q::Local: Send + 'env,
{
    if r == 0 {
        return fast_par(ctx, w, global, restriction, true, pool, ledger);
    }
    ctx.visit(w, ledger);
    let view = ctx.exec.view_of(w);
    let mut local = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_state(&view, global)
    });
    let mut global_w = ctx.query.compute_global_state(global, &local);

    let mut links: Vec<(PeerId, O::Region)> = ctx
        .exec
        .net
        .peer_links(w)
        .into_iter()
        .filter_map(|(t, region)| {
            ctx.exec
                .net
                .region_intersect(&region, &restriction)
                .map(|rr| (t, rr))
        })
        .collect();
    let scan_tile = ctx.exec.certify_scan(w, &restriction, &links, ledger);
    links.sort_by(|a, b| {
        ctx.query
            .priority(&b.1)
            .total_cmp(&ctx.query.priority(&a.1))
    });

    let mut latency = 0u64;
    for (target, restricted) in links {
        if !ctx.query.is_link_relevant(&restricted, &global_w) {
            ctx.exec
                .certify_pruned(ctx.query, w, &restricted, &global_w, &ctx.sess, ledger);
            continue;
        }
        let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, &global_w);
        let (delay, adopted) = ctx
            .exec
            .deliver(w, target, restricted, &ctx.sess, ledger, &answer);
        let Some((dest, restricted)) = adopted else {
            latency += delay;
            continue;
        };
        let (remote, child_latency) = if r == 1 {
            fast_par(ctx, dest, &global_w, restricted, true, pool, ledger)
        } else {
            let out = ripple_par(ctx, dest, &global_w, restricted, r - 1, pool, ledger);
            ledger.metrics.respond(ctx.query.state_payload(&out.0));
            out
        };
        latency += delay + child_latency;
        local = ctx.query.update_local_state(vec![local, remote]);
        global_w = ctx.query.compute_global_state(global, &local);
    }
    let local_answer = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_answer(&view, &local)
    });
    let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, global);
    ctx.exec.deposit_answer(
        w,
        &restriction,
        scan_tile,
        &ctx.sess,
        ledger,
        local_answer,
        &recompute,
    );
    (local, latency)
}

/// Parallel naive broadcast: [`Executor::broadcast`] with the fan-out forked
/// per link. The global state is never refined, so one `Arc` of the
/// initiator's state is shared down the whole tree.
fn broadcast_par<'env, O, Q>(
    ctx: &'env ParCtx<'env, O, Q>,
    w: PeerId,
    global: &Arc<Q::Global>,
    restriction: O::Region,
    pool: &Pool<'env>,
    ledger: &mut BranchLedger,
) -> (Q::Local, u64)
where
    O: RippleOverlay + Sync,
    O::Region: Send + 'env,
    Q: RankQuery<O::Region> + Sync,
    Q::Global: Send + Sync + 'env,
    Q::Local: Send + 'env,
{
    ctx.visit(w, ledger);
    let view = ctx.exec.view_of(w);
    let local = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_state(&view, global)
    });

    let links: Vec<(PeerId, O::Region)> = ctx
        .exec
        .net
        .peer_links(w)
        .into_iter()
        .filter_map(|(t, region)| {
            ctx.exec
                .net
                .region_intersect(&region, &restriction)
                .map(|rr| (t, rr))
        })
        .collect();
    let scan_tile = ctx.exec.certify_scan(w, &restriction, &links, ledger);

    let mut latency = 0u64;
    if links.len() <= 1 {
        let answer = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, global);
        for (target, restricted) in links {
            let (delay, adopted) = ctx
                .exec
                .deliver(w, target, restricted, &ctx.sess, ledger, &answer);
            match adopted {
                None => latency = latency.max(delay),
                Some((dest, restricted)) => {
                    let (_, child_latency) =
                        broadcast_par(ctx, dest, global, restricted, pool, ledger);
                    latency = latency.max(delay + child_latency);
                }
            }
        }
    } else {
        let branches: Vec<Branch<Q::Local>> = pool.join_all(
            links
                .into_iter()
                .map(|(target, restricted)| {
                    let global = Arc::clone(global);
                    move |pool: &Pool<'env>| {
                        let mut branch = BranchLedger::with_certificates(ctx.trace, ctx.certs);
                        let answer =
                            |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, &global);
                        let (delay, adopted) = ctx.exec.deliver(
                            w,
                            target,
                            restricted,
                            &ctx.sess,
                            &mut branch,
                            &answer,
                        );
                        match adopted {
                            None => (delay, None, branch),
                            Some((dest, restricted)) => {
                                let (remote, child_latency) = broadcast_par(
                                    ctx,
                                    dest,
                                    &global,
                                    restricted,
                                    pool,
                                    &mut branch,
                                );
                                (delay, Some((remote, child_latency)), branch)
                            }
                        }
                    }
                })
                .collect(),
        );
        for (delay, result, branch) in branches {
            ledger.merge_child(branch);
            match result {
                None => latency = latency.max(delay),
                Some((_, child_latency)) => latency = latency.max(delay + child_latency),
            }
        }
    }
    let local_answer = with_scan(ctx.trace, &mut ledger.metrics, || {
        ctx.query.compute_local_answer(&view, &local)
    });
    let recompute = |t: &[Tuple]| replica_answer::<O::Region, Q>(ctx.query, t, global);
    ctx.exec.deposit_answer(
        w,
        &restriction,
        scan_tile,
        &ctx.sess,
        ledger,
        local_answer,
        &recompute,
    );
    (local, latency)
}
