//! The three RIPPLE propagation templates (Algorithms 1–3).
//!
//! The executor walks the overlay *recursively in simulation*: a recursive
//! call stands for a query message, and the return stands for the response.
//! Latency is accounted exactly as the proofs of Lemmas 1–3 count hops:
//!
//! * `fast` (Alg. 1) forwards to all relevant links at once, so a peer's
//!   completion time is `1 + max(children)`;
//! * `slow` (Alg. 2) visits one link at a time and waits for its state
//!   response before the next, so completion is `Σ (1 + child)`;
//! * `ripple` (Alg. 3) runs `slow` while the hop budget `r` lasts and
//!   `fast` below it.
//!
//! Response messages (local states, local answers) are tallied in the
//! message counters but add no hops, mirroring the Lemma accounting.
//! Restriction areas are threaded through every forwarding step, so each
//! peer processes a query at most once; this is asserted in debug builds.

use crate::framework::{Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::Tuple;
use ripple_net::{LocalView, PeerId, QueryMetrics};
use std::collections::HashSet;

/// Executes RIPPLE queries over an overlay.
pub struct Executor<'a, O> {
    net: &'a O,
    /// When set, peers are handed plain tuple slices even on indexed
    /// substrates — the pre-index scan paths. Used by equivalence tests and
    /// the local-index benchmark; results and metrics must not differ.
    naive: bool,
}

struct RunState<'q, Q, L> {
    query: &'q Q,
    answers: Vec<Tuple>,
    metrics: QueryMetrics,
    visited: HashSet<PeerId>,
    _marker: std::marker::PhantomData<L>,
}

impl<'a, O: RippleOverlay> Executor<'a, O> {
    /// Creates an executor over `net`.
    pub fn new(net: &'a O) -> Self {
        Self { net, naive: false }
    }

    /// Creates an executor that ignores per-peer indexes and scans, exactly
    /// like the pre-index code paths.
    pub fn naive(net: &'a O) -> Self {
        Self { net, naive: true }
    }

    /// The view of `peer`'s tuples handed to the query functions.
    fn view_of(&self, peer: PeerId) -> LocalView<'_> {
        if self.naive {
            LocalView::Plain(self.net.peer_tuples(peer))
        } else {
            self.net.peer_view(peer)
        }
    }

    /// Processes `query` from `initiator` in the given mode, returning the
    /// collected answers, the initiator's final state and the cost ledger.
    pub fn run<Q>(&self, initiator: PeerId, query: &Q, mode: Mode) -> QueryOutcome<Q::Local>
    where
        Q: RankQuery<O::Region>,
    {
        let mut run = RunState {
            query,
            answers: Vec::new(),
            metrics: QueryMetrics::new(),
            visited: HashSet::new(),
            _marker: std::marker::PhantomData,
        };
        let full = self.net.full_region();
        let global = query.initial_global();
        let (state, latency) = match mode {
            Mode::Fast => self.fast(initiator, &global, full, false, &mut run),
            Mode::Slow => self.slow(initiator, &global, full, &mut run),
            Mode::Ripple(0) => self.fast(initiator, &global, full, false, &mut run),
            Mode::Ripple(r) => self.ripple(initiator, &global, full, r, &mut run),
            Mode::Broadcast => self.broadcast(initiator, &global, full, &mut run),
        };
        run.metrics.latency = latency;
        QueryOutcome {
            answers: run.answers,
            state,
            metrics: run.metrics,
        }
    }

    /// Marks a peer visited (each peer must process a query at most once —
    /// the restriction areas guarantee it, the debug assert audits it).
    fn visit<Q: RankQuery<O::Region>>(&self, peer: PeerId, run: &mut RunState<'_, Q, Q::Local>) {
        debug_assert!(
            run.visited.insert(peer),
            "{peer} processed the same query twice; restriction areas are broken"
        );
        run.metrics.visit(peer);
    }

    /// Deposits a peer's local answer with the initiator.
    fn send_answer<Q: RankQuery<O::Region>>(
        &self,
        answer: Vec<Tuple>,
        run: &mut RunState<'_, Q, Q::Local>,
    ) {
        run.metrics.respond(answer.len());
        run.answers.extend(answer);
    }

    /// Algorithm 1 — and the `r = 0` loop of Algorithm 3 when
    /// `report_states` is set. Returns the peer's final local state and the
    /// completion latency of its restriction area.
    ///
    /// Under Algorithm 3 every fast-phase peer sends its local state
    /// directly to the last slow-phase ancestor `u` (Alg. 3 line 19, with
    /// `u` forwarded unchanged at line 15); the recursive return value
    /// models the union of those states, and `report_states` charges one
    /// state-response message per peer. Under pure Algorithm 1 no state
    /// responses exist and none are charged.
    fn fast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        report_states: bool,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let local = run.query.compute_local_state(&view, global);
        let global_w = run.query.compute_global_state(global, &local);

        let mut latency = 0u64;
        let mut remote_states = Vec::new();
        for (target, region) in self.net.peer_links(w) {
            let Some(restricted) = self.net.region_intersect(&region, &restriction) else {
                continue;
            };
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            run.metrics.forward();
            let (remote, child_latency) =
                self.fast(target, &global_w, restricted, report_states, run);
            latency = latency.max(1 + child_latency);
            remote_states.push(remote);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        if report_states {
            run.metrics.respond(run.query.state_payload(&local));
        }
        let merged = if remote_states.is_empty() {
            local
        } else {
            remote_states.push(local);
            run.query.update_local_state(remote_states)
        };
        (merged, latency)
    }

    /// Algorithm 2. Returns the final local state and completion latency.
    fn slow<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let mut local = run.query.compute_local_state(&view, global);
        let mut global_w = run.query.compute_global_state(global, &local);

        // sortLinks: decreasing priority of the restricted regions.
        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            run.metrics.forward();
            let (remote, child_latency) = self.slow(target, &global_w, restricted, run);
            latency += 1 + child_latency;
            // the state response from the child
            run.metrics.respond(run.query.state_payload(&remote));
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }

    /// Algorithm 3 with ripple parameter `r`.
    fn ripple<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        r: u32,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        if r == 0 {
            // Below the hop budget every peer runs the fast loop; local
            // states stream back to the last slow-phase ancestor, which the
            // recursive return value models.
            return self.fast(w, global, restriction, true, run);
        }
        self.visit(w, run);
        let view = self.view_of(w);
        let mut local = run.query.compute_local_state(&view, global);
        let mut global_w = run.query.compute_global_state(global, &local);

        let mut links: Vec<(PeerId, O::Region)> = self
            .net
            .peer_links(w)
            .into_iter()
            .filter_map(|(t, region)| {
                self.net
                    .region_intersect(&region, &restriction)
                    .map(|rr| (t, rr))
            })
            .collect();
        links.sort_by(|a, b| {
            run.query
                .priority(&b.1)
                .total_cmp(&run.query.priority(&a.1))
        });

        let mut latency = 0u64;
        for (target, restricted) in links {
            if !run.query.is_link_relevant(&restricted, &global_w) {
                continue;
            }
            run.metrics.forward();
            let (remote, child_latency) = if r == 1 {
                // Fast-phase peers charge their own state responses (they
                // report directly to this peer).
                self.fast(target, &global_w, restricted, true, run)
            } else {
                let out = self.ripple(target, &global_w, restricted, r - 1, run);
                run.metrics.respond(run.query.state_payload(&out.0));
                out
            };
            latency += 1 + child_latency;
            local = run.query.update_local_state(vec![local, remote]);
            global_w = run.query.compute_global_state(global, &local);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }

    /// Naive broadcast (Section 1): reach *every* peer in the restriction
    /// area in parallel, ignoring states; every peer answers from purely
    /// local knowledge.
    fn broadcast<Q>(
        &self,
        w: PeerId,
        global: &Q::Global,
        restriction: O::Region,
        run: &mut RunState<'_, Q, Q::Local>,
    ) -> (Q::Local, u64)
    where
        Q: RankQuery<O::Region>,
    {
        self.visit(w, run);
        let view = self.view_of(w);
        let local = run.query.compute_local_state(&view, global);

        let mut latency = 0u64;
        for (target, region) in self.net.peer_links(w) {
            let Some(restricted) = self.net.region_intersect(&region, &restriction) else {
                continue;
            };
            run.metrics.forward();
            // the global state is never refined — pure flooding
            let (_, child_latency) = self.broadcast(target, global, restricted, run);
            latency = latency.max(1 + child_latency);
        }
        let answer = run.query.compute_local_answer(&view, &local);
        self.send_answer(answer, run);
        (local, latency)
    }
}
