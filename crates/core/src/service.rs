//! The multi-tenant query frontier: a concurrent [`QueryService`] that
//! admits many in-flight rank queries against one shared overlay.
//!
//! The paper's framework answers one rank query well; a serving system
//! multiplexes thousands of concurrent ones. This module layers three
//! mechanisms over the single-query [`Executor`]:
//!
//! * **Inter-query scheduling** — N driver threads drain a bounded
//!   admission queue under *deficit round-robin* over per-tenant queues, so
//!   a flooding tenant cannot starve a light one beyond the configured
//!   quantum. Each driver runs its query through the existing intra-query
//!   pool ([`Executor::run_parallel`]), so N drivers × M workers compose:
//!   total live workers never exceed `drivers × (1 + intra_query_threads)`.
//! * **The epoch handshake** — the overlay sits behind an `RwLock`: queries
//!   execute under a read guard and pin `snapshot_generation()` once, while
//!   mutations ([`QueryService::advance_epoch`]) take the write lock. A
//!   query can therefore never straddle a generation bump — structurally,
//!   not by convention — and every certificate's generation stamp equals
//!   the pinned one (asserted after every execution).
//! * **A shared, sharded result cache** — keyed by
//!   `ScoreFn::cache_key` × query shape × *generation*, so a stale-
//!   generation hit is impossible by construction; bumps additionally purge
//!   wholesale so dead entries do not accumulate. Only complete-coverage
//!   outcomes are installed, and the final answer of a served query type is
//!   a pure function of (dataset, query) — initiator- and mode-invariant —
//!   which is what makes cross-tenant reuse sound.
//!
//! Queries run by the service are *bit-identical* to a lone
//! [`Executor::run`] at the same generation: the serving counters the
//! service stamps on the ledger ([`queue_wait_ns`], [`cache_hit`],
//! [`served_generation`]) are excluded from `QueryMetrics` equality, so the
//! equivalence gates keep comparing with `==`.
//!
//! [`queue_wait_ns`]: QueryMetrics::queue_wait_ns
//! [`cache_hit`]: QueryMetrics::cache_hit
//! [`served_generation`]: QueryMetrics::served_generation

use crate::exec::Executor;
use crate::framework::{Coverage, Mode, RippleOverlay};
use ripple_geom::{Norm, Rect, ScoreFn, Tuple};
use ripple_net::{PeerId, QueryMetrics};
use ripple_verify::Certificate;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// A scoring function in wire form: the closed set of score families the
/// service accepts (ad-hoc closures cannot cross an admission queue).
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceScore {
    /// `LinearScore` with the given weights.
    Linear(Vec<f64>),
    /// `PeakScore` with the given peak and norm.
    Peak(Vec<f64>, Norm),
}

/// A rank query in wire form.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceQuery {
    /// Top-k under a unimodal score.
    TopK {
        /// The scoring function.
        score: ServiceScore,
        /// Number of results requested.
        k: usize,
    },
    /// Skyline, optionally constrained to a box.
    Skyline {
        /// The constraint box, or `None` for the full domain.
        constraint: Option<Rect>,
    },
}

impl ServiceQuery {
    /// The cache key of this query's *shape*, or `None` when the query is
    /// not cacheable (ad-hoc parameters would be, had the wire form any).
    /// Two queries with equal shape keys have equal final answers at equal
    /// generations: the served answer is a pure function of (dataset,
    /// shape) — ranked by (score desc, id asc) for top-k, id-sorted for
    /// skyline — independent of initiator, mode and thread count.
    pub fn shape_key(&self) -> Option<u64> {
        let mut h = DefaultHasher::new();
        match self {
            ServiceQuery::TopK { score, k } => {
                0u8.hash(&mut h);
                match score {
                    ServiceScore::Linear(w) => ripple_geom::LinearScore::new(w.clone())
                        .cache_key()?
                        .hash(&mut h),
                    ServiceScore::Peak(p, norm) => ripple_geom::PeakScore::new(p.clone(), *norm)
                        .cache_key()?
                        .hash(&mut h),
                }
                k.hash(&mut h);
            }
            ServiceQuery::Skyline { constraint } => {
                1u8.hash(&mut h);
                if let Some(c) = constraint {
                    for v in c.lo().coords().iter().chain(c.hi().coords()) {
                        v.to_bits().hash(&mut h);
                    }
                }
            }
        }
        Some(h.finish())
    }
}

/// One executed (or cache-served) query outcome, as produced by a
/// substrate's [`Servable::serve`].
#[derive(Clone, Debug)]
pub struct Served {
    /// The final answer, in the query type's canonical order.
    pub answers: Vec<Tuple>,
    /// The cost ledger of the execution.
    pub metrics: QueryMetrics,
    /// The coverage report.
    pub coverage: Coverage,
    /// The answer certificate, when the executor emits them.
    pub certificate: Option<Certificate>,
}

/// What an overlay must provide to sit behind a [`QueryService`]: execute a
/// wire-form query through an executor. Substrates advertise which query
/// types they support (Chord, whose regions are ring segments, serves
/// top-k but not skyline), and unsupported queries are rejected at
/// admission instead of panicking a driver.
pub trait Servable: RippleOverlay + Sync + Sized {
    /// True when this substrate can execute `query`.
    fn supports(query: &ServiceQuery) -> bool;

    /// Executes `query` through `exec`, with up to `threads` extra
    /// intra-query workers (0 or 1 = sequential). Implementations must be
    /// bit-identical to the corresponding sequential certified runner.
    fn serve(
        exec: &Executor<'_, Self>,
        initiator: PeerId,
        query: &ServiceQuery,
        mode: Mode,
        threads: usize,
    ) -> Served;
}

/// Why the service declined or abandoned a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission queue is at capacity; the caller should back off.
    QueueFull,
    /// The substrate does not support this query type.
    Unsupported,
    /// The service shut down before the query ran.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "admission queue full"),
            ServiceError::Unsupported => write!(f, "query type unsupported by substrate"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A completed query as delivered to the submitting client.
#[derive(Clone, Debug)]
pub struct ServiceResponse {
    /// The final answer, in the query type's canonical order.
    pub answers: Vec<Tuple>,
    /// The cost ledger, with the serving counters stamped.
    pub metrics: QueryMetrics,
    /// The coverage report.
    pub coverage: Coverage,
    /// The answer certificate (shared when served from cache).
    pub certificate: Option<Arc<Certificate>>,
    /// The overlay generation the query was pinned to.
    pub generation: u64,
    /// True when the answer came from the shared result cache.
    pub cache_hit: bool,
}

type ServiceResult = Result<ServiceResponse, ServiceError>;

/// The rendezvous for one admitted query: the driver deposits the result,
/// the client blocks on [`Ticket::wait`].
struct TicketInner {
    slot: Mutex<Option<ServiceResult>>,
    ready: Condvar,
}

/// A claim on one admitted query's eventual result.
pub struct Ticket(Arc<TicketInner>);

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket")
    }
}

impl Ticket {
    /// Blocks until the query completes and returns its result.
    pub fn wait(self) -> ServiceResult {
        let mut slot = self.0.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.0.ready.wait(slot).expect("ticket poisoned");
        }
    }
}

fn complete(ticket: &Arc<TicketInner>, result: ServiceResult) {
    let mut slot = ticket.slot.lock().expect("ticket poisoned");
    *slot = Some(result);
    ticket.ready.notify_all();
}

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Driver threads draining the frontier. `0` spawns none: queries are
    /// executed by explicit [`QueryService::step`] calls (deterministic
    /// single-threaded mode, used by the fairness and property tests).
    pub drivers: usize,
    /// Extra intra-query workers per driver (`Executor::run_parallel`'s
    /// thread budget; 0 or 1 = sequential). Total live workers are bounded
    /// by `drivers × (1 + intra_query_threads)` — size the product to the
    /// host's cores to avoid oversubscription.
    pub intra_query_threads: usize,
    /// Admission queue capacity across all tenants; submissions beyond it
    /// are rejected with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Deficit-round-robin quantum: queries a tenant may run per ring
    /// visit. With `T` active tenants, a light tenant's head-of-queue wait
    /// is bounded by `(T - 1) × quantum` dequeues.
    pub quantum: u64,
    /// Number of result-cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Master switch for the shared result cache.
    pub cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            drivers: 1,
            intra_query_threads: 0,
            queue_capacity: 1024,
            quantum: 4,
            cache_shards: 8,
            cache: true,
        }
    }
}

/// Lifetime counters of one tenant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries accepted into the frontier.
    pub admitted: u64,
    /// Queries rejected at admission (queue full or unsupported).
    pub rejected: u64,
    /// Queries completed (executed or cache-served).
    pub completed: u64,
    /// Completed queries answered from the shared result cache.
    pub cache_hits: u64,
    /// Total nanoseconds the tenant's completed queries waited in the
    /// frontier.
    pub queue_wait_ns: u64,
}

/// Lifetime counters of the whole service.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries accepted across all tenants.
    pub admitted: u64,
    /// Queries rejected across all tenants.
    pub rejected: u64,
    /// Queries completed across all tenants.
    pub completed: u64,
    /// Completed queries answered from the cache.
    pub cache_hits: u64,
    /// Cache entries dropped by generation-bump purges.
    pub cache_invalidated: u64,
    /// Peers currently quarantined by the overlay's commission-fault
    /// registry (0 when the substrate has no quarantine).
    pub quarantined_peers: u64,
    /// Peers currently on probation (quarantined peers granted one audited
    /// re-trial by an epoch advance).
    pub probation_peers: u64,
}

/// One admitted query waiting in (or popped from) the frontier.
struct PendingQuery {
    tenant: u32,
    initiator: PeerId,
    query: ServiceQuery,
    mode: Mode,
    enqueued: Instant,
    ticket: Arc<TicketInner>,
}

/// One tenant's queue plus its deficit-round-robin account.
#[derive(Default)]
struct TenantQueue {
    q: VecDeque<PendingQuery>,
    /// Remaining serve credit for the current ring visit; recharged by
    /// `quantum` when the tenant reaches the ring head with zero credit.
    deficit: u64,
    stats: TenantStats,
}

/// The admission queue: per-tenant FIFOs drained deficit-round-robin.
struct Frontier {
    tenants: HashMap<u32, TenantQueue>,
    /// Tenants with queued work, in service order.
    ring: VecDeque<u32>,
    len: usize,
    shutdown: bool,
    stats: ServiceStats,
}

impl Frontier {
    fn new() -> Self {
        Self {
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            len: 0,
            shutdown: false,
            stats: ServiceStats::default(),
        }
    }

    fn push(&mut self, item: PendingQuery, capacity: usize) -> Result<(), ServiceError> {
        if self.shutdown {
            return Err(ServiceError::Shutdown);
        }
        let id = item.tenant;
        let tenant = self.tenants.entry(id).or_default();
        if self.len >= capacity {
            tenant.stats.rejected += 1;
            self.stats.rejected += 1;
            return Err(ServiceError::QueueFull);
        }
        let was_empty = tenant.q.is_empty();
        tenant.q.push_back(item);
        tenant.stats.admitted += 1;
        self.stats.admitted += 1;
        self.len += 1;
        if was_empty {
            self.ring.push_back(id);
        }
        Ok(())
    }

    /// Deficit round-robin: the head tenant recharges `quantum` credit on
    /// arrival, spends one credit per query, and rotates to the ring back
    /// when its credit runs out (or leaves the ring when its queue drains).
    fn pop(&mut self, quantum: u64) -> Option<PendingQuery> {
        while let Some(&head) = self.ring.front() {
            let tq = self.tenants.get_mut(&head).expect("ring tenant exists");
            if tq.q.is_empty() {
                tq.deficit = 0;
                self.ring.pop_front();
                continue;
            }
            if tq.deficit == 0 {
                tq.deficit = quantum.max(1);
            }
            let item = tq.q.pop_front().expect("non-empty queue");
            tq.deficit -= 1;
            self.len -= 1;
            if tq.q.is_empty() {
                tq.deficit = 0;
                self.ring.pop_front();
            } else if tq.deficit == 0 {
                self.ring.rotate_left(1);
            }
            return Some(item);
        }
        None
    }
}

/// One cached answer; shared by every hit at its generation.
struct CacheEntry {
    answers: Vec<Tuple>,
    coverage: Coverage,
    certificate: Option<Arc<Certificate>>,
}

/// One cache shard: (shape, generation) → shared entry.
type CacheShard = Mutex<HashMap<(u64, u64), Arc<CacheEntry>>>;

/// The shared result cache: sharded by key hash, keyed by
/// (shape, generation). The generation in the key is what makes a
/// stale-generation hit structurally impossible; the wholesale purge on
/// bumps merely reclaims memory.
struct ResultCache {
    shards: Box<[CacheShard]>,
    mask: u64,
}

impl ResultCache {
    fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, shape: u64) -> &CacheShard {
        &self.shards[(shape & self.mask) as usize]
    }

    fn get(&self, shape: u64, generation: u64) -> Option<Arc<CacheEntry>> {
        self.shard(shape)
            .lock()
            .expect("cache shard poisoned")
            .get(&(shape, generation))
            .cloned()
    }

    fn insert(&self, shape: u64, generation: u64, entry: Arc<CacheEntry>) {
        self.shard(shape)
            .lock()
            .expect("cache shard poisoned")
            .insert((shape, generation), entry);
    }

    /// Drops every entry, returning how many were purged.
    fn purge(&self) -> u64 {
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let mut map = shard.lock().expect("cache shard poisoned");
            dropped += map.len() as u64;
            map.clear();
        }
        dropped
    }
}

/// Shared state between the service handle and its driver threads.
struct ServiceInner<O> {
    net: RwLock<O>,
    frontier: Mutex<Frontier>,
    work: Condvar,
    cache: Option<ResultCache>,
    config: ServiceConfig,
}

impl<O: Servable> ServiceInner<O> {
    /// Executes (or cache-serves) one popped query and completes its
    /// ticket. Runs under the overlay read lock: the pinned generation
    /// cannot change for the duration.
    fn execute(&self, pending: PendingQuery) {
        let wait_ns = pending.enqueued.elapsed().as_nanos() as u64;
        let net = self.net.read().expect("overlay lock poisoned");
        let generation = net.snapshot_generation();
        let shape = self.cache.as_ref().and_then(|_| pending.query.shape_key());

        let (mut served, certificate, cache_hit) =
            match shape.and_then(|s| self.cache.as_ref().and_then(|c| c.get(s, generation))) {
                Some(entry) => {
                    // A hit replays the cached outcome: zero network cost. The
                    // certificate is the original execution's and still
                    // verifies — it carries this same generation.
                    let served = Served {
                        answers: entry.answers.clone(),
                        metrics: QueryMetrics::new(),
                        coverage: entry.coverage.clone(),
                        certificate: None,
                    };
                    (served, entry.certificate.clone(), true)
                }
                None => {
                    let exec = Executor::new(&*net);
                    let served = O::serve(
                        &exec,
                        pending.initiator,
                        &pending.query,
                        pending.mode,
                        self.config.intra_query_threads,
                    );
                    if let Some(cert) = &served.certificate {
                        assert_eq!(
                            cert.generation, generation,
                            "epoch handshake violated: a query straddled a generation bump"
                        );
                    }
                    let certificate = served.certificate.clone().map(Arc::new);
                    if let (Some(shape), Some(cache)) = (shape, self.cache.as_ref()) {
                        // Only complete answers are reusable: a degraded answer
                        // is initiator-dependent (it reflects which restriction
                        // areas that particular walk abandoned).
                        if served.coverage.is_complete() {
                            cache.insert(
                                shape,
                                generation,
                                Arc::new(CacheEntry {
                                    answers: served.answers.clone(),
                                    coverage: served.coverage.clone(),
                                    certificate: certificate.clone(),
                                }),
                            );
                        }
                    }
                    (served, certificate, false)
                }
            };
        drop(net);

        served.metrics.queue_wait_ns = wait_ns;
        served.metrics.cache_hit = cache_hit;
        served.metrics.served_generation = Some(generation);
        {
            let mut frontier = self.frontier.lock().expect("frontier poisoned");
            let tq = frontier.tenants.entry(pending.tenant).or_default();
            tq.stats.completed += 1;
            tq.stats.cache_hits += u64::from(cache_hit);
            tq.stats.queue_wait_ns += wait_ns;
            frontier.stats.completed += 1;
            frontier.stats.cache_hits += u64::from(cache_hit);
        }
        complete(
            &pending.ticket,
            Ok(ServiceResponse {
                answers: served.answers,
                metrics: served.metrics,
                coverage: served.coverage,
                certificate,
                generation,
                cache_hit,
            }),
        );
    }

    /// Driver loop: drain the frontier, sleeping on the condvar when idle;
    /// exit once shut down *and* drained (admitted queries always
    /// complete).
    fn drive(&self) {
        loop {
            let pending = {
                let mut frontier = self.frontier.lock().expect("frontier poisoned");
                loop {
                    if let Some(p) = frontier.pop(self.config.quantum) {
                        break Some(p);
                    }
                    if frontier.shutdown {
                        break None;
                    }
                    frontier = self.work.wait(frontier).expect("frontier poisoned");
                }
            };
            match pending {
                Some(p) => self.execute(p),
                None => return,
            }
        }
    }
}

/// The multi-tenant query frontier (see the module docs).
pub struct QueryService<O: Servable> {
    inner: Arc<ServiceInner<O>>,
    drivers: Vec<std::thread::JoinHandle<()>>,
}

impl<O: Servable + Send + 'static> QueryService<O> {
    /// Wraps `net` in a service and spawns the configured driver threads.
    pub fn new(net: O, config: ServiceConfig) -> Self {
        let inner = Arc::new(ServiceInner {
            net: RwLock::new(net),
            frontier: Mutex::new(Frontier::new()),
            work: Condvar::new(),
            cache: config.cache.then(|| ResultCache::new(config.cache_shards)),
            config,
        });
        let drivers = (0..inner.config.drivers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ripple-driver-{i}"))
                    .spawn(move || inner.drive())
                    .expect("spawn driver")
            })
            .collect();
        Self { inner, drivers }
    }

    /// Submits a query for `tenant`. Admission is synchronous: unsupported
    /// query types and a full queue are rejected here; an `Ok` ticket is a
    /// promise that the query will complete (executed, cache-served, or —
    /// if the service is dropped first — failed with
    /// [`ServiceError::Shutdown`]).
    pub fn submit(
        &self,
        tenant: u32,
        initiator: PeerId,
        query: ServiceQuery,
        mode: Mode,
    ) -> Result<Ticket, ServiceError> {
        let mut frontier = self.inner.frontier.lock().expect("frontier poisoned");
        if !O::supports(&query) {
            let tq = frontier.tenants.entry(tenant).or_default();
            tq.stats.rejected += 1;
            frontier.stats.rejected += 1;
            return Err(ServiceError::Unsupported);
        }
        let ticket = Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        frontier.push(
            PendingQuery {
                tenant,
                initiator,
                query,
                mode,
                enqueued: Instant::now(),
                ticket: Arc::clone(&ticket),
            },
            self.inner.config.queue_capacity,
        )?;
        drop(frontier);
        self.inner.work.notify_one();
        Ok(Ticket(ticket))
    }

    /// Pops and executes one queued query on the calling thread. Returns
    /// `false` when the frontier is empty. This is the `drivers: 0`
    /// execution mode: deterministic, single-threaded, used by the
    /// fairness and property tests (it observes exactly the same DRR order
    /// a lone driver would).
    pub fn step(&self) -> bool {
        let pending = {
            let mut frontier = self.inner.frontier.lock().expect("frontier poisoned");
            frontier.pop(self.inner.config.quantum)
        };
        match pending {
            Some(p) => {
                self.inner.execute(p);
                true
            }
            None => false,
        }
    }

    /// Runs [`step`](QueryService::step) until the frontier is empty.
    pub fn drain(&self) {
        while self.step() {}
    }

    /// Applies a mutation to the overlay under the write lock — no query
    /// is in flight while `f` runs, so none can straddle the bump — and
    /// purges the result cache if the generation changed. Returns `f`'s
    /// result.
    pub fn advance_epoch<T>(&self, f: impl FnOnce(&mut O) -> T) -> T {
        let mut net = self.inner.net.write().expect("overlay lock poisoned");
        let before = net.snapshot_generation();
        let out = f(&mut net);
        let after = net.snapshot_generation();
        if after != before {
            // An epoch advance is the quarantine amnesty point: quarantined
            // peers move to probation and earn their way back by passing
            // one audited query. Done under the write lock, so no query
            // observes a half-granted registry.
            if let Some(q) = net.quarantine() {
                q.grant_probation();
            }
        }
        drop(net);
        if after != before {
            if let Some(cache) = self.inner.cache.as_ref() {
                let dropped = cache.purge();
                let mut frontier = self.inner.frontier.lock().expect("frontier poisoned");
                frontier.stats.cache_invalidated += dropped;
            }
        }
        out
    }

    /// Read access to the overlay (shares the epoch read lock with
    /// executing queries).
    pub fn with_network<T>(&self, f: impl FnOnce(&O) -> T) -> T {
        f(&self.inner.net.read().expect("overlay lock poisoned"))
    }

    /// The overlay's current generation.
    pub fn generation(&self) -> u64 {
        self.with_network(|net| net.snapshot_generation())
    }

    /// Number of queries currently waiting in the frontier.
    pub fn queue_len(&self) -> usize {
        self.inner.frontier.lock().expect("frontier poisoned").len
    }

    /// Lifetime counters of the whole service, with the overlay's current
    /// quarantine standing overlaid (frontier lock and overlay lock are
    /// taken in sequence, never nested).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.inner.frontier.lock().expect("frontier poisoned").stats;
        let net = self.inner.net.read().expect("overlay lock poisoned");
        if let Some(q) = net.quarantine() {
            stats.quarantined_peers = q.quarantined() as u64;
            stats.probation_peers = q.on_probation() as u64;
        }
        stats
    }

    /// Lifetime counters of one tenant (all-zero for unknown tenants).
    pub fn tenant_stats(&self, tenant: u32) -> TenantStats {
        self.inner
            .frontier
            .lock()
            .expect("frontier poisoned")
            .tenants
            .get(&tenant)
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// Shuts down: drivers finish draining every admitted query, then
    /// exit; with no drivers, remaining queued queries are failed with
    /// [`ServiceError::Shutdown`]. Dropping the service does the same.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl<O: Servable> Drop for QueryService<O> {
    fn drop(&mut self) {
        {
            let mut frontier = self.inner.frontier.lock().expect("frontier poisoned");
            frontier.shutdown = true;
        }
        self.inner.work.notify_all();
        for handle in self.drivers.drain(..) {
            let _ = handle.join();
        }
        let mut frontier = self.inner.frontier.lock().expect("frontier poisoned");
        while let Some(p) = frontier.pop(self.inner.config.quantum) {
            complete(&p.ticket, Err(ServiceError::Shutdown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_midas::MidasNetwork;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};
    use ripple_verify::verify_topk;

    fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
        for i in 0..tuples {
            let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            net.insert_tuple(t);
        }
        (net, rng)
    }

    fn manual_config() -> ServiceConfig {
        ServiceConfig {
            drivers: 0,
            ..ServiceConfig::default()
        }
    }

    fn linear_topk(seed: u64, k: usize) -> ServiceQuery {
        // distinct weights per seed: distinct shape keys, so no cache reuse
        let w = vec![1.0, 1.0 + seed as f64 / 64.0];
        ServiceQuery::TopK {
            score: ServiceScore::Linear(w),
            k,
        }
    }

    /// Satellite (f): deficit round-robin bounds a flooding tenant. Tenant
    /// 0 floods 60 queries, tenant 1 submits 6 afterwards; with quantum Q
    /// the light tenant's whole batch completes within the first
    /// `ceil(6/Q) * 2Q` dequeues, and its queue waits sit far below the
    /// flood tenant's upper percentiles.
    #[test]
    fn fairness_flood_tenant_cannot_starve_light_tenant() {
        let (net, mut rng) = loaded_net(2, 24, 200, 41);
        let initiator = net.random_peer(&mut rng);
        let quantum = 4u64;
        let service = QueryService::new(
            net,
            ServiceConfig {
                drivers: 0,
                quantum,
                cache: false, // every query must really execute
                queue_capacity: 1 << 12,
                ..ServiceConfig::default()
            },
        );
        let flood_n = 60u64;
        let light_n = 6u64;
        let mut tickets = Vec::new();
        for i in 0..flood_n {
            tickets.push(
                service
                    .submit(0, initiator, linear_topk(i, 5), Mode::Fast)
                    .expect("admit flood"),
            );
        }
        for i in 0..light_n {
            tickets.push(
                service
                    .submit(1, initiator, linear_topk(100 + i, 5), Mode::Fast)
                    .expect("admit light"),
            );
        }
        // step one query at a time, recording which tenant completed
        let mut order = Vec::new();
        let mut prev = (
            service.tenant_stats(0).completed,
            service.tenant_stats(1).completed,
        );
        while service.step() {
            let now = (
                service.tenant_stats(0).completed,
                service.tenant_stats(1).completed,
            );
            order.push(if now.0 > prev.0 { 0u32 } else { 1u32 });
            prev = now;
        }
        assert_eq!(order.len() as u64, flood_n + light_n);
        let last_light = order
            .iter()
            .rposition(|&t| t == 1)
            .expect("light tenant ran") as u64;
        // DRR bound: the light tenant needs ceil(6/Q) ring visits; each
        // full round serves at most Q flood queries before returning.
        let rounds = light_n.div_ceil(quantum);
        let bound = rounds * 2 * quantum;
        assert!(
            last_light < bound,
            "light tenant finished at position {last_light}, deficit bound {bound}"
        );

        // queue_wait percentiles: light p95 must sit well below flood p95
        let mut flood_waits = Vec::new();
        let mut light_waits = Vec::new();
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait().expect("completed");
            if (i as u64) < flood_n {
                flood_waits.push(r.metrics.queue_wait_ns);
            } else {
                light_waits.push(r.metrics.queue_wait_ns);
            }
        }
        flood_waits.sort_unstable();
        light_waits.sort_unstable();
        let f_p95 = flood_waits[((flood_waits.len() - 1) as f64 * 0.95) as usize];
        let l_p95 = light_waits[((light_waits.len() - 1) as f64 * 0.95) as usize];
        assert!(
            l_p95 < f_p95,
            "light tenant p95 wait {l_p95}ns must undercut flood p95 {f_p95}ns"
        );
        let s0 = service.tenant_stats(0);
        let s1 = service.tenant_stats(1);
        assert_eq!(s0.admitted, flood_n);
        assert_eq!(s0.completed, flood_n);
        assert_eq!(s1.admitted, light_n);
        assert_eq!(s1.completed, light_n);
    }

    #[test]
    fn drr_pop_interleaves_by_quantum() {
        // pure frontier check, no network: quantum 2, tenants A=6, B=2
        let mut f = Frontier::new();
        let ticket = || {
            Arc::new(TicketInner {
                slot: Mutex::new(None),
                ready: Condvar::new(),
            })
        };
        let item = |tenant: u32| PendingQuery {
            tenant,
            initiator: PeerId::new(0),
            query: ServiceQuery::Skyline { constraint: None },
            mode: Mode::Fast,
            enqueued: Instant::now(),
            ticket: ticket(),
        };
        for _ in 0..6 {
            f.push(item(0), usize::MAX).unwrap();
        }
        for _ in 0..2 {
            f.push(item(1), usize::MAX).unwrap();
        }
        let mut order = Vec::new();
        while let Some(p) = f.pop(2) {
            order.push(p.tenant);
            complete(&p.ticket, Err(ServiceError::Shutdown));
        }
        assert_eq!(order, vec![0, 0, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn admission_queue_capacity_rejects() {
        let (net, mut rng) = loaded_net(2, 16, 100, 43);
        let initiator = net.random_peer(&mut rng);
        let service = QueryService::new(
            net,
            ServiceConfig {
                drivers: 0,
                queue_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let _a = service
            .submit(7, initiator, linear_topk(0, 3), Mode::Fast)
            .unwrap();
        let _b = service
            .submit(7, initiator, linear_topk(1, 3), Mode::Fast)
            .unwrap();
        let err = service
            .submit(7, initiator, linear_topk(2, 3), Mode::Fast)
            .unwrap_err();
        assert_eq!(err, ServiceError::QueueFull);
        assert_eq!(service.tenant_stats(7).rejected, 1);
        assert_eq!(service.stats().rejected, 1);
        service.drain();
        assert_eq!(service.stats().completed, 2);
    }

    #[test]
    fn cache_hits_are_free_and_generation_keyed() {
        let (net, mut rng) = loaded_net(2, 32, 300, 45);
        let initiator = net.random_peer(&mut rng);
        let other = net.random_peer(&mut rng);
        let service = QueryService::new(net, manual_config());
        let g0 = service.generation();
        let q = ServiceQuery::TopK {
            score: ServiceScore::Peak(vec![0.4, 0.6], Norm::L2),
            k: 8,
        };

        let t1 = service.submit(1, initiator, q.clone(), Mode::Fast).unwrap();
        // different tenant, different initiator, different mode: still a hit
        let t2 = service
            .submit(2, other, q.clone(), Mode::Ripple(2))
            .unwrap();
        service.drain();
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit, "same shape at same generation must hit");
        assert_eq!(r2.metrics.total_messages(), 0, "hits are free");
        assert_eq!(r2.metrics.latency, 0);
        assert_eq!(r1.answers, r2.answers);
        assert_eq!(r1.generation, g0);
        assert_eq!(r2.generation, g0);
        // the shared certificate still verifies against the claimed generation
        let cert = r2
            .certificate
            .as_ref()
            .expect("hit carries the certificate");
        let score = ripple_geom::PeakScore::new(vec![0.4, 0.6], Norm::L2);
        verify_topk(cert, &r2.answers, &score, 8, r2.generation).expect("cached cert verifies");
        assert_eq!(service.stats().cache_hits, 1);
        assert_eq!(service.tenant_stats(2).cache_hits, 1);

        // a generation bump purges and re-keys: the same shape misses
        service.advance_epoch(|net| {
            net.insert_tuple(Tuple::new(10_000, vec![0.41, 0.59]));
        });
        assert!(service.stats().cache_invalidated >= 1);
        let t3 = service.submit(1, initiator, q, Mode::Fast).unwrap();
        service.drain();
        let r3 = t3.wait().unwrap();
        assert!(!r3.cache_hit, "stale-generation hit must be impossible");
        assert!(r3.generation > g0);
        assert!(
            r3.answers.iter().any(|t| t.id == 10_000),
            "post-bump answer sees the new tuple"
        );
    }

    /// The epoch handshake: a served certificate's generation always equals
    /// the response's pinned generation, before and after bumps.
    #[test]
    fn served_queries_pin_one_generation() {
        let (net, mut rng) = loaded_net(2, 24, 200, 47);
        let initiator = net.random_peer(&mut rng);
        let service = QueryService::new(net, manual_config());
        for round in 0..3u64 {
            let g = service.generation();
            let t = service
                .submit(0, initiator, linear_topk(round, 5), Mode::Fast)
                .unwrap();
            service.drain();
            let r = t.wait().unwrap();
            assert_eq!(r.generation, g);
            assert_eq!(r.certificate.as_ref().unwrap().generation, g);
            assert_eq!(r.metrics.served_generation, Some(g));
            service.advance_epoch(|net| {
                let mut rng = SmallRng::seed_from_u64(round);
                net.join_random(&mut rng);
            });
            assert!(service.generation() > g);
        }
    }

    /// N drivers × M workers: a concurrently-driven batch is bit-identical
    /// (answers, ledger, coverage, certificate) to lone sequential
    /// `Executor::run`s at the same generation.
    #[test]
    fn concurrent_drivers_match_standalone_execution() {
        let (net, mut rng) = loaded_net(2, 32, 400, 49);
        let initiators: Vec<PeerId> = (0..12).map(|_| net.random_peer(&mut rng)).collect();
        let service = QueryService::new(
            net,
            ServiceConfig {
                drivers: 3,
                intra_query_threads: 2,
                cache: false, // every query executes: full ledger comparison
                ..ServiceConfig::default()
            },
        );
        let modes = [Mode::Fast, Mode::Ripple(1), Mode::Broadcast];
        let tickets: Vec<(u64, PeerId, Mode, Ticket)> = initiators
            .iter()
            .enumerate()
            .map(|(i, &init)| {
                let mode = modes[i % modes.len()];
                let t = service
                    .submit(i as u32 % 4, init, linear_topk(i as u64, 7), mode)
                    .expect("admit");
                (i as u64, init, mode, t)
            })
            .collect();
        for (i, init, mode, ticket) in tickets {
            let r = ticket.wait().expect("completed");
            service.with_network(|net| {
                let exec = Executor::new(net);
                let w = vec![1.0, 1.0 + i as f64 / 64.0];
                let (answers, metrics, coverage, cert) = crate::topk::run_topk_certified(
                    &exec,
                    init,
                    ripple_geom::LinearScore::new(w),
                    7,
                    mode,
                );
                assert_eq!(r.answers, answers, "answers (query {i})");
                assert_eq!(r.metrics, metrics, "ledger incl. visit trace (query {i})");
                assert_eq!(r.coverage, coverage, "coverage (query {i})");
                assert_eq!(
                    r.certificate.as_deref(),
                    cert.as_ref(),
                    "certificate (query {i})"
                );
            });
        }
    }

    #[test]
    fn drop_fails_undrained_tickets_with_shutdown() {
        let (net, mut rng) = loaded_net(2, 16, 100, 51);
        let initiator = net.random_peer(&mut rng);
        let service = QueryService::new(net, manual_config());
        let t = service
            .submit(0, initiator, linear_topk(0, 3), Mode::Fast)
            .unwrap();
        drop(service);
        assert_eq!(t.wait().unwrap_err(), ServiceError::Shutdown);
    }

    #[test]
    fn shape_keys_separate_query_shapes() {
        let a = linear_topk(1, 5).shape_key();
        let b = linear_topk(2, 5).shape_key();
        let c = linear_topk(1, 6).shape_key();
        assert_ne!(a, b, "weights key");
        assert_ne!(a, c, "k keys");
        assert_eq!(a, linear_topk(1, 5).shape_key(), "deterministic");
        let s1 = ServiceQuery::Skyline { constraint: None }.shape_key();
        let s2 = ServiceQuery::Skyline {
            constraint: Some(Rect::new(vec![0.1, 0.1], vec![0.9, 0.9])),
        }
        .shape_key();
        assert_ne!(s1, s2, "constraint keys");
        assert_ne!(a, s1, "query kind keys");
    }
}
