//! k-diversification over RIPPLE (Section 6) — the first distributed
//! solution to this problem.
//!
//! Two layers:
//!
//! * [`SingleTupleQuery`] — the *single tuple diversification query*
//!   (Algorithms 16–21): given the query point and a set `O`, find the tuple
//!   `t ∉ O` minimizing the insertion score `φ` (Eq. 3). The abstract state
//!   is the threshold `τ` (best `φ` seen so far); region pruning uses the
//!   lower bound `φ⁻`.
//! * [`diversify`] / [`div_improve`] — the greedy wrapper (Algorithms
//!   22–23): initialize a set of `k` tuples, then repeatedly try to swap one
//!   member for an outside tuple that improves the objective, until a fixed
//!   point (or `max_iters`).

use crate::exec::Executor;
use crate::framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
use ripple_geom::{DiversityQuery, Rect, SetStats, Tuple};
use ripple_net::{LocalView, PeerId, QueryMetrics};
use ripple_verify::{Certificate, PruneWitness};

/// The single tuple diversification query (Eq. 2) as a RIPPLE rank query.
pub struct SingleTupleQuery<'a> {
    /// Distances, λ and the query point.
    pub div: &'a DiversityQuery,
    /// The current set `O`; the sought tuple must lie outside it.
    pub set: &'a [Tuple],
    /// Cached statistics of `O` (relevance radius, closest pair).
    stats: SetStats,
    /// Initial threshold; the greedy wrapper passes a finite τ to demand an
    /// actual improvement (Alg. 23 lines 5–9), a fresh search passes +∞.
    pub initial_tau: f64,
}

impl<'a> SingleTupleQuery<'a> {
    /// Creates the query with an explicit initial threshold.
    pub fn with_tau(div: &'a DiversityQuery, set: &'a [Tuple], initial_tau: f64) -> Self {
        let stats = div.stats(set);
        Self {
            div,
            set,
            stats,
            initial_tau,
        }
    }

    /// Creates the query with a neutral (+∞) threshold.
    pub fn new(div: &'a DiversityQuery, set: &'a [Tuple]) -> Self {
        Self::with_tau(div, set, f64::INFINITY)
    }

    /// `getMostDiverseLocalObject`: the local tuple outside `O` with the
    /// least insertion score, if any. Ties on φ break on id so the
    /// distributed answer is deterministic and matches the centralized
    /// oracle (exact ties happen, e.g. φ = 0 when relevance and diversity
    /// gains cancel).
    fn best_local<'t>(&self, tuples: &'t [Tuple]) -> Option<(&'t Tuple, f64)> {
        tuples
            .iter()
            .filter(|t| !self.set.iter().any(|o| o.id == t.id))
            .map(|t| (t, self.div.phi_with_stats(&t.point, self.set, self.stats)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)))
    }
}

impl RankQuery<Rect> for SingleTupleQuery<'_> {
    /// The threshold `τ`: the best insertion score seen.
    type Global = f64;
    type Local = f64;

    fn initial_global(&self) -> f64 {
        self.initial_tau
    }

    /// Algorithm 16: the local τ is the local best φ if it improves on τG.
    ///
    /// φ depends on the evolving set `O`, so no fixed projection applies —
    /// both view flavours scan (the per-tuple work is the φ evaluation).
    fn compute_local_state(&self, view: &LocalView<'_>, global: &f64) -> f64 {
        match self.best_local(view.tuples()) {
            Some((_, phi)) if phi < *global => phi,
            _ => *global,
        }
    }

    /// Algorithm 17: the global state at `w` is just the local state.
    fn compute_global_state(&self, _global: &f64, local: &f64) -> f64 {
        *local
    }

    /// Algorithm 19: the minimum of the received thresholds.
    fn update_local_state(&self, states: Vec<f64>) -> f64 {
        states.into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Algorithm 18: the local best tuple, if it attains the threshold.
    fn compute_local_answer(&self, view: &LocalView<'_>, local: &f64) -> Vec<Tuple> {
        match self.best_local(view.tuples()) {
            Some((t, phi)) if phi <= *local => vec![t.clone()],
            _ => Vec::new(),
        }
    }

    /// Algorithm 20: a region is relevant while its φ lower bound can beat τ.
    fn is_link_relevant(&self, region: &Rect, global: &f64) -> bool {
        self.div.phi_lower(region, self.set, self.stats) < *global
    }

    /// Algorithm 21: regions with smaller φ lower bound first.
    fn priority(&self, region: &Rect) -> f64 {
        -self.div.phi_lower(region, self.set, self.stats)
    }

    /// The pruned region's `φ⁻`: the checker recomputes it from the region
    /// box and requires it at or above the final τ (Alg. 20 run in
    /// reverse — a region whose lower bound beats the answer would have
    /// been relevant).
    fn prune_witness(&self, region: &Rect, _global: &f64) -> PruneWitness {
        PruneWitness::PhiBound {
            bound: self.div.phi_lower(region, self.set, self.stats),
        }
    }
}

/// Runs a single tuple diversification query. Returns the best insertion
/// tuple (with its φ score) if one beats `initial_tau`, plus the ledger.
///
/// The query is first routed to the peer owning the query point `q` (an
/// ordinary DHT lookup, charged to the metrics): relevance pulls the best
/// candidates toward `q`, so starting there gives the very first local
/// state a tight threshold — the same rationale as peak routing for top-k
/// (DESIGN.md D2).
pub fn run_single_tuple<O>(
    net: &O,
    initiator: PeerId,
    div: &DiversityQuery,
    set: &[Tuple],
    initial_tau: f64,
    mode: Mode,
) -> (Option<(Tuple, f64)>, QueryMetrics)
where
    O: RippleOverlay<Region = Rect>,
{
    let (best, _, metrics, _, _) =
        run_single_tuple_certified(&Executor::new(net), initiator, div, set, initial_tau, mode);
    (best, metrics)
}

/// Everything [`run_single_tuple_certified`] returns: the winning
/// insertion (if any), the raw delivered candidate stream, the ledger,
/// the coverage report, and the answer certificate.
pub type CertifiedSingleTuple = (
    Option<(Tuple, f64)>,
    Vec<Tuple>,
    QueryMetrics,
    Coverage,
    Option<Certificate>,
);

/// [`run_single_tuple`] through a pre-configured executor, additionally
/// returning the raw delivered candidate stream, the coverage report and
/// the answer certificate. `ripple-verify`'s `verify_diversify` needs the
/// raw candidates (not just the winner) to re-derive the final threshold,
/// so this variant hands them back alongside the best pick.
pub fn run_single_tuple_certified<O>(
    exec: &Executor<'_, O>,
    initiator: PeerId,
    div: &DiversityQuery,
    set: &[Tuple],
    initial_tau: f64,
    mode: Mode,
) -> CertifiedSingleTuple
where
    O: RippleOverlay<Region = Rect>,
{
    let net = exec.network();
    let query = SingleTupleQuery::with_tau(div, set, initial_tau);
    let (start, route_hops) = match net.route_lookup(initiator, &div.q) {
        Some((owner, hops)) => (owner, hops),
        None => (initiator, 0),
    };
    let QueryOutcome {
        answers,
        mut metrics,
        coverage,
        certificate,
        ..
    } = exec.run(start, &query, mode);
    metrics.latency += route_hops as u64;
    metrics.query_messages += route_hops as u64;
    let stats = div.stats(set);
    let best = answers
        .iter()
        .filter(|t| !set.iter().any(|o| o.id == t.id))
        .map(|t| {
            let phi = div.phi_with_stats(&t.point, set, stats);
            (t.clone(), phi)
        })
        .filter(|(_, phi)| *phi < initial_tau)
        .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
    (best, answers, metrics, coverage, certificate)
}

/// How [`diversify`] obtains its initial k-set (Alg. 22 line 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Initialize {
    /// Solve the single tuple query `k` times, growing the set greedily.
    Greedy,
    /// Draw `k` distinct tuples from the initiator's neighbourhood — the
    /// "as simple as retrieving k random tuples" option; cheap but crude.
    Nearest,
}

/// Algorithm 23: one improvement pass. Tries to swap a single member of `o`
/// for an outside tuple so the objective of Eq. 1 strictly improves;
/// members are examined in descending φ order (worst members first).
/// Returns the improved set, or `None` at a fixed point. Costs accrue into
/// `metrics` as sequential phases.
pub fn div_improve<O>(
    net: &O,
    initiator: PeerId,
    div: &DiversityQuery,
    o: &[Tuple],
    mode: Mode,
    metrics: &mut QueryMetrics,
) -> Option<Vec<Tuple>>
where
    O: RippleOverlay<Region = Rect>,
{
    let mut t_in: Option<Tuple> = None;
    let mut t_out: Option<usize> = None;
    let mut best_objective = f64::INFINITY; // objective of the best swap so far

    // Sort members descending on φ(t_i, q, O ∖ {t_i}): dropping a
    // high-φ member leaves the set with the best objective, so good
    // replacements are likely found early and tighten later searches.
    let mut order: Vec<usize> = (0..o.len()).collect();
    let phi_without: Vec<f64> = (0..o.len())
        .map(|i| {
            let rest: Vec<Tuple> = o
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, t)| t.clone())
                .collect();
            div.phi(&o[i].point, &rest)
        })
        .collect();
    order.sort_by(|&a, &b| phi_without[b].total_cmp(&phi_without[a]));

    for i in order {
        let rest: Vec<Tuple> = o
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, t)| t.clone())
            .collect();
        let f_rest = div.objective(&rest);
        // Require the swapped set to beat the original set and any swap
        // found so far: φ(t, O∖{t_i}) < min(f(O), best) − f(O∖{t_i}).
        let target = div.objective(o).min(best_objective);
        let tau = target - f_rest;
        if tau <= 0.0 {
            // No insertion into this reduced set can reach the target.
            continue;
        }
        let (found, m) = run_single_tuple(net, initiator, div, &rest, tau, mode);
        metrics.absorb_sequential(&m);
        if let Some((t, phi)) = found {
            best_objective = f_rest + phi;
            t_in = Some(t);
            t_out = Some(i);
        }
    }

    match (t_in, t_out) {
        (Some(tin), Some(ti)) => {
            let mut improved: Vec<Tuple> = o
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != ti)
                .map(|(_, t)| t.clone())
                .collect();
            improved.push(tin);
            debug_assert!(
                div.objective(&improved) < div.objective(o) + 1e-12,
                "swap must not worsen the objective"
            );
            Some(improved)
        }
        _ => None,
    }
}

/// Algorithm 22: the full greedy k-diversification query.
///
/// Returns the final set and the total cost ledger (all phases sequential).
pub fn diversify<O>(
    net: &O,
    initiator: PeerId,
    div: &DiversityQuery,
    k: usize,
    mode: Mode,
    init: Initialize,
    max_iters: usize,
) -> (Vec<Tuple>, QueryMetrics)
where
    O: RippleOverlay<Region = Rect>,
{
    let mut metrics = QueryMetrics::new();
    let mut o: Vec<Tuple> = Vec::with_capacity(k);
    match init {
        Initialize::Greedy => {
            for _ in 0..k {
                let (found, m) = run_single_tuple(net, initiator, div, &o, f64::INFINITY, mode);
                metrics.absorb_sequential(&m);
                match found {
                    Some((t, _)) => o.push(t),
                    None => break, // fewer than k tuples in the network
                }
            }
        }
        Initialize::Nearest => {
            // Grab k tuples relevant to q with one fast top-k-style sweep:
            // repeatedly take the best φ over a pure-relevance query.
            let rel_only = DiversityQuery::new(div.q.clone(), 1.0, div.dr);
            for _ in 0..k {
                let (found, m) =
                    run_single_tuple(net, initiator, &rel_only, &o, f64::INFINITY, mode);
                metrics.absorb_sequential(&m);
                match found {
                    Some((t, _)) => o.push(t),
                    None => break,
                }
            }
        }
    }

    for _ in 0..max_iters {
        match div_improve(net, initiator, div, &o, mode, &mut metrics) {
            Some(better) => o = better,
            None => break,
        }
    }
    o.sort_by_key(|t| t.id);
    (o, metrics)
}

/// One single-tuple search of a greedy diversification run: the set it
/// searched against and the improvement threshold it demanded.
///
/// Section 7.1: "we force both heuristic diversification algorithms to
/// produce the same result at each step. Hence our metrics capture directly
/// the cost/performance of methods and are not affected by the quality of
/// the result." A [`greedy_trace`] materialises that methodology: the
/// greedy sequence is fixed once (centralized, deterministic id
/// tie-breaking), and every method replays the *same* searches while its
/// own costs are measured — see `ripple-bench`'s Figures 9–12.
#[derive(Clone, Debug)]
pub struct SearchStep {
    /// The set `O` (or `O ∖ {t_i}`) the search runs against.
    pub set: Vec<Tuple>,
    /// The threshold the inserted tuple must beat.
    pub tau: f64,
}

/// Records every single-tuple search the centralized greedy run performs
/// (initialization and improvement passes), in order.
pub fn greedy_trace(
    tuples: &[Tuple],
    div: &DiversityQuery,
    k: usize,
    max_iters: usize,
) -> Vec<SearchStep> {
    let mut steps = Vec::new();
    let mut o: Vec<Tuple> = Vec::with_capacity(k);
    for _ in 0..k {
        steps.push(SearchStep {
            set: o.clone(),
            tau: f64::INFINITY,
        });
        let stats = div.stats(&o);
        let best = tuples
            .iter()
            .filter(|t| !o.iter().any(|m| m.id == t.id))
            .map(|t| (t, div.phi_with_stats(&t.point, &o, stats)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
        match best {
            Some((t, _)) => o.push(t.clone()),
            None => break,
        }
    }
    for _ in 0..max_iters {
        let mut t_in: Option<Tuple> = None;
        let mut t_out: Option<usize> = None;
        let mut best_objective = f64::INFINITY;
        let mut order: Vec<usize> = (0..o.len()).collect();
        let phi_without: Vec<f64> = (0..o.len())
            .map(|i| {
                let rest: Vec<Tuple> = o
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, t)| t.clone())
                    .collect();
                div.phi(&o[i].point, &rest)
            })
            .collect();
        order.sort_by(|&a, &b| phi_without[b].total_cmp(&phi_without[a]));
        for i in order {
            let rest: Vec<Tuple> = o
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, t)| t.clone())
                .collect();
            let f_rest = div.objective(&rest);
            let target = div.objective(&o).min(best_objective);
            let tau = target - f_rest;
            if tau <= 0.0 {
                continue;
            }
            steps.push(SearchStep {
                set: rest.clone(),
                tau,
            });
            let stats = div.stats(&rest);
            let found = tuples
                .iter()
                .filter(|t| !rest.iter().any(|m| m.id == t.id))
                .map(|t| (t, div.phi_with_stats(&t.point, &rest, stats)))
                .filter(|(_, phi)| *phi < tau)
                .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
            if let Some((t, phi)) = found {
                best_objective = f_rest + phi;
                t_in = Some(t.clone());
                t_out = Some(i);
            }
        }
        match (t_in, t_out) {
            (Some(tin), Some(ti)) => {
                let mut improved: Vec<Tuple> = o
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != ti)
                    .map(|(_, t)| t.clone())
                    .collect();
                improved.push(tin);
                o = improved;
            }
            _ => break,
        }
    }
    steps
}

/// Reference oracle: centralized greedy diversification with the same
/// initialization and improvement rules, for distributed-vs-centralized
/// equivalence tests.
pub fn centralized_diversify(
    tuples: &[Tuple],
    div: &DiversityQuery,
    k: usize,
    max_iters: usize,
) -> Vec<Tuple> {
    let mut o: Vec<Tuple> = Vec::with_capacity(k);
    for _ in 0..k {
        let stats = div.stats(&o);
        let best = tuples
            .iter()
            .filter(|t| !o.iter().any(|m| m.id == t.id))
            .map(|t| (t, div.phi_with_stats(&t.point, &o, stats)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
        match best {
            Some((t, _)) => o.push(t.clone()),
            None => break,
        }
    }
    for _ in 0..max_iters {
        let mut t_in: Option<Tuple> = None;
        let mut t_out: Option<usize> = None;
        let mut best_objective = f64::INFINITY;
        let mut order: Vec<usize> = (0..o.len()).collect();
        let phi_without: Vec<f64> = (0..o.len())
            .map(|i| {
                let rest: Vec<Tuple> = o
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, t)| t.clone())
                    .collect();
                div.phi(&o[i].point, &rest)
            })
            .collect();
        order.sort_by(|&a, &b| phi_without[b].total_cmp(&phi_without[a]));
        for i in order {
            let rest: Vec<Tuple> = o
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, t)| t.clone())
                .collect();
            let f_rest = div.objective(&rest);
            let target = div.objective(&o).min(best_objective);
            let tau = target - f_rest;
            if tau <= 0.0 {
                continue;
            }
            let stats = div.stats(&rest);
            let found = tuples
                .iter()
                .filter(|t| !rest.iter().any(|m| m.id == t.id))
                .map(|t| (t, div.phi_with_stats(&t.point, &rest, stats)))
                .filter(|(_, phi)| *phi < tau)
                .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.id.cmp(&b.0.id)));
            if let Some((t, phi)) = found {
                best_objective = f_rest + phi;
                t_in = Some(t.clone());
                t_out = Some(i);
            }
        }
        match (t_in, t_out) {
            (Some(tin), Some(ti)) => {
                let mut improved: Vec<Tuple> = o
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != ti)
                    .map(|(_, t)| t.clone())
                    .collect();
                improved.push(tin);
                o = improved;
            }
            _ => break,
        }
    }
    o.sort_by_key(|t| t.id);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_geom::Norm;

    fn t(id: u64, c: &[f64]) -> Tuple {
        Tuple::new(id, c.to_vec())
    }

    fn div() -> DiversityQuery {
        DiversityQuery::new(vec![0.5, 0.5], 0.5, Norm::L1)
    }

    #[test]
    fn local_state_takes_best_phi() {
        let d = div();
        let set = vec![t(1, &[0.5, 0.5])];
        let q = SingleTupleQuery::new(&d, &set);
        let tuples = vec![t(2, &[0.45, 0.5]), t(3, &[0.0, 0.0])];
        let tau = q.compute_local_state(&LocalView::Plain(&tuples), &f64::INFINITY);
        let best = tuples
            .iter()
            .map(|x| d.phi(&x.point, &set))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(tau, best);
    }

    #[test]
    fn set_members_are_excluded() {
        let d = div();
        let set = vec![t(1, &[0.5, 0.5])];
        let q = SingleTupleQuery::new(&d, &set);
        // the only local tuple is already in O
        let tuples = vec![t(1, &[0.5, 0.5])];
        assert_eq!(
            q.compute_local_state(&LocalView::Plain(&tuples), &f64::INFINITY),
            f64::INFINITY
        );
        assert!(q
            .compute_local_answer(&LocalView::Plain(&tuples), &0.0)
            .is_empty());
    }

    #[test]
    fn answer_only_when_threshold_attained() {
        let d = div();
        let set = vec![t(1, &[0.5, 0.5])];
        let q = SingleTupleQuery::new(&d, &set);
        let tuples = vec![t(2, &[0.3, 0.5])];
        let phi = d.phi(&tuples[0].point, &set);
        assert_eq!(
            q.compute_local_answer(&LocalView::Plain(&tuples), &phi)
                .len(),
            1
        );
        // a better remote threshold suppresses the local answer
        assert!(q
            .compute_local_answer(&LocalView::Plain(&tuples), &(phi - 0.1))
            .is_empty());
    }

    #[test]
    fn merge_takes_minimum() {
        let d = div();
        let set: Vec<Tuple> = Vec::new();
        let q = SingleTupleQuery::new(&d, &set);
        assert_eq!(q.update_local_state(vec![0.5, 0.2, 0.9]), 0.2);
        assert_eq!(q.update_local_state(vec![]), f64::INFINITY);
    }

    #[test]
    fn pruning_respects_lower_bound() {
        let d = div();
        let set = vec![t(1, &[0.5, 0.5]), t(2, &[0.52, 0.5])];
        let q = SingleTupleQuery::new(&d, &set);
        // a region far from q: φ⁻ > 0, so a tight τ prunes it
        let far = Rect::new(vec![0.95, 0.95], vec![1.0, 1.0]);
        assert!(!q.is_link_relevant(&far, &0.0));
        assert!(q.is_link_relevant(&far, &f64::INFINITY));
    }

    #[test]
    fn centralized_greedy_improves_objective() {
        let d = div();
        let data: Vec<Tuple> = (0..30)
            .map(|i| t(i, &[(i as f64 * 0.618) % 1.0, (i as f64 * 0.381) % 1.0]))
            .collect();
        let o1 = centralized_diversify(&data, &d, 5, 0);
        let o2 = centralized_diversify(&data, &d, 5, 8);
        assert_eq!(o1.len(), 5);
        assert_eq!(o2.len(), 5);
        assert!(d.objective(&o2) <= d.objective(&o1) + 1e-12);
    }
}
