//! RIPPLE over MIDAS: the substrate adapter.
//!
//! In MIDAS "the regions and the restriction areas ... are subtrees"
//! (Section 3.2): the region of peer `w`'s `i`-th link is the box of the
//! sibling subtree rooted at depth `i`. Because sibling-subtree boxes are
//! nested or disjoint, a link region intersected with a restriction area is
//! either empty or the link region itself, so restriction intersections stay
//! exact rectangles and every peer is reached at most once.

use crate::framework::RippleOverlay;
use ripple_geom::{Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::{LocalView, PeerId};

impl RippleOverlay for MidasNetwork {
    type Region = Rect;

    fn full_region(&self) -> Rect {
        Rect::unit(self.dims())
    }

    fn region_intersect(&self, region: &Rect, restriction: &Rect) -> Option<Rect> {
        region.intersection(restriction)
    }

    fn peer_links(&self, peer: PeerId) -> Vec<(PeerId, Rect)> {
        let p = self.peer(peer);
        p.links
            .iter()
            .map(|l| (self.resolve(l), l.region.clone()))
            .collect()
    }

    fn peer_count(&self) -> usize {
        MidasNetwork::peer_count(self)
    }

    fn peer_tuples(&self, peer: PeerId) -> &[Tuple] {
        self.peer(peer).store.tuples()
    }

    fn peer_view(&self, peer: PeerId) -> LocalView<'_> {
        LocalView::Indexed(&self.peer(peer).store, ripple_geom::KernelDispatch::Auto)
    }

    fn route_lookup(&self, from: PeerId, key: &ripple_geom::Point) -> Option<(PeerId, u32)> {
        Some(self.route(from, key))
    }

    fn region_volume(&self, region: &Rect) -> f64 {
        region.volume()
    }

    fn region_rects(&self, region: &Rect) -> Vec<Rect> {
        vec![region.clone()]
    }

    fn snapshot_generation(&self) -> u64 {
        self.epoch()
    }

    fn is_peer_live(&self, peer: PeerId) -> bool {
        self.is_live(peer)
    }

    /// Sibling-subtree regions are boxes and boxes are entry-order-free:
    /// any live peer whose zone lies inside the restriction box can adopt
    /// the *whole* box, because its restricted links are exactly the
    /// sibling boxes nested inside it (subtree nesting), each with its
    /// target inside — nothing outside is ever re-entered and no part of
    /// the box needs trimming.
    fn failover_target(&self, region: &Rect, tried: &[PeerId]) -> Option<(PeerId, Rect)> {
        self.live_peer_in_region(region, tried)
            .map(|p| (p, region.clone()))
    }

    fn replica_targets(&self, peer: PeerId, k: usize) -> Vec<PeerId> {
        MidasNetwork::replica_targets(self, peer, k)
    }

    fn replicas(&self) -> Option<&ripple_net::ReplicaSet> {
        MidasNetwork::replicas(self)
    }

    fn quarantine(&self) -> Option<&ripple_net::Quarantine> {
        Some(MidasNetwork::quarantine(self))
    }

    fn dead_zones_in(&self, region: &Rect) -> Vec<(PeerId, f64)> {
        MidasNetwork::dead_zones_in(self, region)
    }

    fn peer_zones_in(&self, peers: &[PeerId], region: &Rect) -> Vec<(PeerId, f64)> {
        MidasNetwork::peer_zones_in(self, peers, region)
    }
}

/// MIDAS serves the full wire-form query set: its regions are plain boxes,
/// so both the top-k and the skyline instantiations apply.
impl crate::service::Servable for MidasNetwork {
    fn supports(_query: &crate::service::ServiceQuery) -> bool {
        true
    }

    fn serve(
        exec: &crate::exec::Executor<'_, Self>,
        initiator: PeerId,
        query: &crate::service::ServiceQuery,
        mode: crate::framework::Mode,
        threads: usize,
    ) -> crate::service::Served {
        use crate::service::{Served, ServiceQuery, ServiceScore};
        match query {
            ServiceQuery::TopK { score, k } => {
                let (answers, metrics, coverage, certificate) = match score {
                    ServiceScore::Linear(w) => crate::topk::run_topk_certified_par(
                        exec,
                        initiator,
                        ripple_geom::LinearScore::new(w.clone()),
                        *k,
                        mode,
                        threads,
                    ),
                    ServiceScore::Peak(p, norm) => crate::topk::run_topk_certified_par(
                        exec,
                        initiator,
                        ripple_geom::PeakScore::new(p.clone(), *norm),
                        *k,
                        mode,
                        threads,
                    ),
                };
                Served {
                    answers,
                    metrics,
                    coverage,
                    certificate,
                }
            }
            ServiceQuery::Skyline { constraint } => {
                let q = match constraint {
                    Some(c) => crate::skyline::SkylineQuery::constrained(c.clone()),
                    None => crate::skyline::SkylineQuery::new(),
                };
                let (answers, metrics, coverage, certificate) =
                    crate::skyline::run_skyline_certified_par(exec, initiator, q, mode, threads);
                Served {
                    answers,
                    metrics,
                    coverage,
                    certificate,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::SeedableRng;

    #[test]
    fn links_partition_with_zone() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = MidasNetwork::build(2, 32, false, &mut rng);
        for &id in net.live_peers() {
            let links = net.peer_links(id);
            let vol: f64 =
                links.iter().map(|(_, r)| r.volume()).sum::<f64>() + net.peer(id).zone.volume();
            assert!((vol - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subtree_intersection_is_all_or_nothing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = MidasNetwork::build(2, 64, false, &mut rng);
        let a = net.random_peer(&mut rng);
        for (_, region) in net.peer_links(a) {
            let full = net.full_region();
            // intersect with the full domain: identity
            assert_eq!(net.region_intersect(&region, &full), Some(region.clone()));
        }
    }
}
