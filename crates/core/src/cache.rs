//! Result caching for repeated top-k queries (Section 2.1's BRANCA \[21\] /
//! ARTO \[14\] line: "cache previous final and intermediate results to avoid
//! recomputing parts of new queries").
//!
//! The cache lives at the querying side and exploits the structure of
//! unimodal scores: a cached answer for a peak `p` with result size `k`
//! answers any later query whose peak falls in the same quantized cell and
//! asks for at most `k` results. Entries are tagged with the overlay's
//! churn epoch, so any join/leave observed by the caller invalidates stale
//! entries wholesale — the conservative variant of ARTO's maintenance.

use crate::framework::{Mode, RankQuery, RippleOverlay};
use crate::topk::{run_topk, TopKQuery};
use ripple_geom::{Point, ScoreFn, Tuple};
use ripple_net::{PeerId, QueryMetrics};
use std::collections::HashMap;

/// Quantized peak cell: the cache key space.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CellKey(Vec<u32>);

/// Statistics of a cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (zero network cost).
    pub hits: u64,
    /// Queries that went to the network.
    pub misses: u64,
    /// Entries dropped by churn-epoch invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Fraction of queries answered locally.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A query-side top-k result cache.
pub struct TopKCache {
    /// Cells per dimension of the peak quantization grid.
    resolution: u32,
    /// Churn epoch the entries were built under.
    epoch: u64,
    entries: HashMap<CellKey, (usize, Vec<Tuple>)>,
    stats: CacheStats,
}

impl TopKCache {
    /// Creates a cache quantizing peaks on a `resolution^d` grid. Finer
    /// grids give more precise reuse but fewer hits.
    pub fn new(resolution: u32) -> Self {
        assert!(resolution > 0);
        Self {
            resolution,
            epoch: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key(&self, peak: &Point) -> CellKey {
        CellKey(
            peak.coords()
                .iter()
                .map(|c| ((c * self.resolution as f64) as u32).min(self.resolution - 1))
                .collect(),
        )
    }

    /// Informs the cache of the overlay's current churn epoch (e.g. a
    /// join/leave counter). A new epoch drops every entry: cached answers
    /// may reference tuples that moved.
    pub fn observe_epoch(&mut self, epoch: u64) {
        if epoch != self.epoch {
            self.stats.invalidated += self.entries.len() as u64;
            self.entries.clear();
            self.epoch = epoch;
        }
    }

    /// Answers a top-k query, consulting the cache first. A hit costs no
    /// messages and no hops; a miss runs the network query and installs the
    /// answer.
    pub fn topk<O, F>(
        &mut self,
        net: &O,
        initiator: PeerId,
        score: F,
        k: usize,
        mode: Mode,
    ) -> (Vec<Tuple>, QueryMetrics)
    where
        O: RippleOverlay,
        F: ScoreFn,
        TopKQuery<F>: RankQuery<O::Region>,
    {
        let Some(peak) = score.peak_point() else {
            // nothing to key reuse on: pass through
            self.stats.misses += 1;
            return run_topk(net, initiator, score, k, mode);
        };
        let key = self.key(&peak);
        if let Some((cached_k, answer)) = self.entries.get(&key) {
            if *cached_k >= k {
                self.stats.hits += 1;
                let mut hit: Vec<Tuple> = answer.clone();
                hit.sort_by(|a, b| {
                    score
                        .score(&b.point)
                        .total_cmp(&score.score(&a.point))
                        .then_with(|| a.id.cmp(&b.id))
                });
                hit.truncate(k);
                return (hit, QueryMetrics::new());
            }
        }
        self.stats.misses += 1;
        let (answer, metrics) = run_topk(net, initiator, score, k, mode);
        self.entries.insert(key, (k, answer.clone()));
        (answer, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_geom::{Norm, PeakScore};
    use ripple_midas::MidasNetwork;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};

    fn setup(seed: u64) -> (MidasNetwork, Vec<Tuple>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(2, 64, false, &mut rng);
        let data: Vec<Tuple> = (0..400u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]))
            .collect();
        net.insert_all(data.clone());
        (net, data)
    }

    #[test]
    fn repeated_peaks_hit_after_first_miss() {
        let (net, _) = setup(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.31, 0.62], Norm::L1);

        let (first, m1) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert!(m1.total_messages() > 0);
        let (second, m2) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert_eq!(m2.total_messages(), 0, "hit must be free");
        assert_eq!(m2.latency, 0);
        assert_eq!(
            first.iter().map(|t| t.id).collect::<Vec<_>>(),
            second.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn nearby_peaks_share_a_cell_and_answers_stay_sound() {
        let (net, data) = setup(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cache = TopKCache::new(4); // coarse grid: 0.25-wide cells
        let initiator = net.random_peer(&mut rng);
        let a = PeakScore::new(vec![0.30, 0.30], Norm::L1);
        let b = PeakScore::new(vec![0.26, 0.26], Norm::L1); // same cell
        let _ = cache.topk(&net, initiator, a, 5, Mode::Fast);
        let (hit, m) = cache.topk(&net, initiator, b.clone(), 5, Mode::Fast);
        assert_eq!(m.total_messages(), 0);
        // the reused answer is re-ranked under the new peak; sound as long
        // as the cell is small relative to the data density — verify the
        // top-1 is within the cell-diagonal tolerance of the true top-1
        let oracle = crate::topk::centralized_topk(&data, &b, 1);
        let got = b.score(&hit[0].point);
        let want = b.score(&oracle[0].point);
        assert!(
            want - got <= 0.5 + 1e-9,
            "reuse degraded beyond the cell bound"
        );
    }

    #[test]
    fn smaller_k_is_served_from_a_larger_cached_answer() {
        let (net, _) = setup(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.5, 0.5], Norm::L1);
        let (ten, _) = cache.topk(&net, initiator, score.clone(), 10, Mode::Fast);
        let (three, m) = cache.topk(&net, initiator, score.clone(), 3, Mode::Fast);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(
            three.iter().map(|t| t.id).collect::<Vec<_>>(),
            ten.iter().take(3).map(|t| t.id).collect::<Vec<_>>()
        );
        // but a larger k than cached must go to the network
        let (_, m) = cache.topk(&net, initiator, score, 20, Mode::Fast);
        assert!(m.total_messages() > 0);
    }

    #[test]
    fn churn_epochs_invalidate() {
        let (net, _) = setup(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.4, 0.4], Norm::L1);
        let _ = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert_eq!(cache.len(), 1);
        cache.observe_epoch(1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 1);
        let (_, m) = cache.topk(&net, initiator, score, 5, Mode::Fast);
        assert!(m.total_messages() > 0, "post-churn query must recompute");
    }

    #[test]
    fn hit_rate_accounts() {
        let (net, _) = setup(9);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut cache = TopKCache::new(4);
        let initiator = net.random_peer(&mut rng);
        // zipf-ish repetition: a few hot peaks
        let hot = [[0.1, 0.1], [0.6, 0.6], [0.9, 0.2]];
        for i in 0..30 {
            let p = hot[i % hot.len()];
            let score = PeakScore::new(p.to_vec(), Norm::L1);
            let _ = cache.topk(&net, initiator, score, 5, Mode::Fast);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 30);
        assert!(
            s.hit_rate() > 0.8,
            "hot workload should hit: {}",
            s.hit_rate()
        );
    }
}
