//! Result caching for repeated top-k queries (Section 2.1's BRANCA \[21\] /
//! ARTO \[14\] line: "cache previous final and intermediate results to avoid
//! recomputing parts of new queries").
//!
//! The cache lives at the querying side and exploits the structure of
//! unimodal scores: a cached answer for a peak `p` with result size `k`
//! answers any later query whose peak falls in the same quantized cell and
//! asks for at most `k` results. Entries are tagged with the overlay's
//! *snapshot generation* — read directly from the network on every lookup,
//! not supplied by the caller — so **any** mutation the overlay counts
//! (inserts, churn, crashes, replica repair/promotion) invalidates stale
//! entries wholesale: the conservative variant of ARTO's maintenance.
//! Earlier revisions tagged entries with a caller-tracked churn epoch,
//! which missed generation bumps the caller didn't observe (e.g. a
//! crash × replica repair): see the `stale_generation_hit_is_impossible`
//! regression test.

use crate::framework::{Mode, RankQuery, RippleOverlay};
use crate::topk::{run_topk, TopKQuery};
use ripple_geom::{Point, ScoreFn, Tuple};
use ripple_net::{PeerId, QueryMetrics};
use std::collections::HashMap;

/// Quantized peak cell: the cache key space.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CellKey(Vec<u32>);

/// Statistics of a cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (zero network cost).
    pub hits: u64,
    /// Queries that went to the network.
    pub misses: u64,
    /// Entries dropped by generation invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Fraction of queries answered locally.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A query-side top-k result cache.
pub struct TopKCache {
    /// Cells per dimension of the peak quantization grid.
    resolution: u32,
    /// Overlay snapshot generation the entries were built under.
    generation: u64,
    entries: HashMap<CellKey, (usize, Vec<Tuple>)>,
    stats: CacheStats,
}

impl TopKCache {
    /// Creates a cache quantizing peaks on a `resolution^d` grid. Finer
    /// grids give more precise reuse but fewer hits.
    pub fn new(resolution: u32) -> Self {
        assert!(resolution > 0);
        Self {
            resolution,
            generation: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key(&self, peak: &Point) -> CellKey {
        CellKey(
            peak.coords()
                .iter()
                .map(|c| ((c * self.resolution as f64) as u32).min(self.resolution - 1))
                .collect(),
        )
    }

    /// Tags the cache with the overlay's current snapshot generation. A
    /// changed generation drops every entry: cached answers may reference
    /// tuples that moved (churn), died (crashes) or were re-homed (replica
    /// promotion). Called automatically by [`topk`](TopKCache::topk) — the
    /// cache can never observe a generation later than the one it serves.
    pub fn observe_generation(&mut self, generation: u64) {
        if generation != self.generation {
            self.stats.invalidated += self.entries.len() as u64;
            self.entries.clear();
            self.generation = generation;
        }
    }

    /// Answers a top-k query, consulting the cache first. A hit costs no
    /// messages and no hops; a miss runs the network query and installs the
    /// answer. The overlay's [`snapshot_generation`]
    /// (RippleOverlay::snapshot_generation) is read here, on every call:
    /// entries built under any earlier generation are dropped before the
    /// lookup, so a stale-generation hit is impossible.
    pub fn topk<O, F>(
        &mut self,
        net: &O,
        initiator: PeerId,
        score: F,
        k: usize,
        mode: Mode,
    ) -> (Vec<Tuple>, QueryMetrics)
    where
        O: RippleOverlay,
        F: ScoreFn,
        TopKQuery<F>: RankQuery<O::Region>,
    {
        self.observe_generation(net.snapshot_generation());
        let Some(peak) = score.peak_point() else {
            // nothing to key reuse on: pass through
            self.stats.misses += 1;
            return run_topk(net, initiator, score, k, mode);
        };
        let key = self.key(&peak);
        if let Some((cached_k, answer)) = self.entries.get(&key) {
            if *cached_k >= k {
                self.stats.hits += 1;
                let mut hit: Vec<Tuple> = answer.clone();
                hit.sort_by(|a, b| {
                    score
                        .score(&b.point)
                        .total_cmp(&score.score(&a.point))
                        .then_with(|| a.id.cmp(&b.id))
                });
                hit.truncate(k);
                return (hit, QueryMetrics::new());
            }
        }
        self.stats.misses += 1;
        let (answer, metrics) = run_topk(net, initiator, score, k, mode);
        self.entries.insert(key, (k, answer.clone()));
        (answer, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_geom::{Norm, PeakScore};
    use ripple_midas::MidasNetwork;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};

    fn setup(seed: u64) -> (MidasNetwork, Vec<Tuple>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(2, 64, false, &mut rng);
        let data: Vec<Tuple> = (0..400u64)
            .map(|i| Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]))
            .collect();
        net.insert_all(data.clone());
        (net, data)
    }

    #[test]
    fn repeated_peaks_hit_after_first_miss() {
        let (net, _) = setup(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.31, 0.62], Norm::L1);

        let (first, m1) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert!(m1.total_messages() > 0);
        let (second, m2) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert_eq!(m2.total_messages(), 0, "hit must be free");
        assert_eq!(m2.latency, 0);
        assert_eq!(
            first.iter().map(|t| t.id).collect::<Vec<_>>(),
            second.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn nearby_peaks_share_a_cell_and_answers_stay_sound() {
        let (net, data) = setup(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut cache = TopKCache::new(4); // coarse grid: 0.25-wide cells
        let initiator = net.random_peer(&mut rng);
        let a = PeakScore::new(vec![0.30, 0.30], Norm::L1);
        let b = PeakScore::new(vec![0.26, 0.26], Norm::L1); // same cell
        let _ = cache.topk(&net, initiator, a, 5, Mode::Fast);
        let (hit, m) = cache.topk(&net, initiator, b.clone(), 5, Mode::Fast);
        assert_eq!(m.total_messages(), 0);
        // the reused answer is re-ranked under the new peak; sound as long
        // as the cell is small relative to the data density — verify the
        // top-1 is within the cell-diagonal tolerance of the true top-1
        let oracle = crate::topk::centralized_topk(&data, &b, 1);
        let got = b.score(&hit[0].point);
        let want = b.score(&oracle[0].point);
        assert!(
            want - got <= 0.5 + 1e-9,
            "reuse degraded beyond the cell bound"
        );
    }

    #[test]
    fn smaller_k_is_served_from_a_larger_cached_answer() {
        let (net, _) = setup(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.5, 0.5], Norm::L1);
        let (ten, _) = cache.topk(&net, initiator, score.clone(), 10, Mode::Fast);
        let (three, m) = cache.topk(&net, initiator, score.clone(), 3, Mode::Fast);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(
            three.iter().map(|t| t.id).collect::<Vec<_>>(),
            ten.iter().take(3).map(|t| t.id).collect::<Vec<_>>()
        );
        // but a larger k than cached must go to the network
        let (_, m) = cache.topk(&net, initiator, score, 20, Mode::Fast);
        assert!(m.total_messages() > 0);
    }

    #[test]
    fn churn_generations_invalidate_automatically() {
        let (mut net, _) = setup(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.4, 0.4], Norm::L1);
        let _ = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert_eq!(cache.len(), 1);
        // The caller does not inform the cache: the next lookup reads the
        // bumped generation itself and drops the entry.
        net.join_random(&mut rng);
        let (_, m) = cache.topk(&net, initiator, score, 5, Mode::Fast);
        assert!(m.total_messages() > 0, "post-churn query must recompute");
        assert_eq!(cache.stats().invalidated, 1);
    }

    /// Regression for the caller-tracked-epoch bug: a crash × replica
    /// repair bumps the overlay generation without any join/leave the
    /// caller would have counted as "churn". The cache must still refuse
    /// the stale entry — it reads `snapshot_generation()` on every lookup,
    /// so a stale-generation hit is impossible by construction.
    #[test]
    fn stale_generation_hit_is_impossible_after_crash_replica_repair() {
        let (mut net, _) = setup(11);
        net.enable_replication(1);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut cache = TopKCache::new(8);
        let initiator = net.random_peer(&mut rng);
        let score = PeakScore::new(vec![0.5, 0.5], Norm::L1);
        let (_, m) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert!(m.total_messages() > 0);
        let g0 = net.epoch();

        // crash a peer and repair from replicas: tuples are re-homed, the
        // generation bumps, but no join/leave happened
        let victim = net
            .live_peers()
            .iter()
            .copied()
            .find(|&p| p != initiator)
            .expect("another live peer");
        net.crash(victim);
        net.repair_all();
        net.check_invariants();
        assert!(net.epoch() > g0, "crash x repair must bump the generation");

        let (post, m) = cache.topk(&net, initiator, score.clone(), 5, Mode::Fast);
        assert!(
            m.total_messages() > 0,
            "post-repair query must go to the network, never a stale hit"
        );
        assert!(cache.stats().invalidated >= 1);
        // and the recomputed answer agrees with a fresh uncached run
        let (fresh, _) = run_topk(&net, initiator, score, 5, Mode::Fast);
        assert_eq!(
            post.iter().map(|t| t.id).collect::<Vec<_>>(),
            fresh.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hit_rate_accounts() {
        let (net, _) = setup(9);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut cache = TopKCache::new(4);
        let initiator = net.random_peer(&mut rng);
        // zipf-ish repetition: a few hot peaks
        let hot = [[0.1, 0.1], [0.6, 0.6], [0.9, 0.2]];
        for i in 0..30 {
            let p = hot[i % hot.len()];
            let score = PeakScore::new(p.to_vec(), Norm::L1);
            let _ = cache.topk(&net, initiator, score, 5, Mode::Fast);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 30);
        assert!(
            s.hit_rate() > 0.8,
            "hot workload should hit: {}",
            s.hit_rate()
        );
    }
}
