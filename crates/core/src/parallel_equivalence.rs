//! Sequential ≡ parallel: the equivalence suite of the intra-query
//! parallel execution engine.
//!
//! [`Executor::run_parallel`] promises an outcome **bit-identical** to
//! [`Executor::run`] — same answers in the same order, same
//! [`QueryMetrics`] including the per-peer visit sequence, same
//! [`Coverage`] — for every propagation mode, query type, fault setting and
//! thread count. That guarantee rests on three mechanisms this suite
//! exercises together (their unit-level properties are tested in
//! `ripple-net`): keyed per-edge fault streams (no global draw order),
//! link-order [`BranchLedger`] reduction (restores the sequential DFS
//! ledger), and the sharded visited set (schedule-free duplicate totals).
//!
//! The Chord-side twins live in `ripple-chord`'s `tests/parallel.rs`,
//! proving the engine is substrate-generic.
//!
//! [`QueryMetrics`]: ripple_net::QueryMetrics
//! [`Coverage`]: crate::framework::Coverage
//! [`BranchLedger`]: ripple_net::BranchLedger

use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::SkylineQuery;
use crate::topk::TopKQuery;
use ripple_geom::{LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 5] = [
    Mode::Fast,
    Mode::Broadcast,
    Mode::Ripple(1),
    Mode::Ripple(2),
    Mode::Slow,
];
const THREADS: [usize; 3] = [2, 3, 4];

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.insert_tuple(t);
    }
    (net, rng)
}

/// The fault settings the engine must be equivalent under: the distinguished
/// no-fault policy, pure drops, and a kitchen-sink plane with drops, slow
/// peers and retries all active.
fn planes() -> [FaultPlane; 3] {
    [
        FaultPlane::none(),
        FaultPlane::drops(0.15, 17),
        FaultPlane {
            drop_probability: 0.1,
            slow_fraction: 0.3,
            slow_penalty_hops: 3,
            timeout_hops: 2,
            max_retries: 2,
            seed: 11,
            ..FaultPlane::none()
        },
    ]
}

/// Runs `query` through the sequential and the parallel engine under every
/// mode × plane × thread count and asserts bit-identical outcomes.
fn assert_parallel_identical<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
where
    Q: RankQuery<Rect> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    for plane in planes() {
        for mode in MODES {
            let initiator = net.random_peer(rng);
            let exec = Executor::with_faults(net, plane, 3);
            let seq = exec.run(initiator, query, mode);
            for threads in THREADS {
                let par = exec.run_parallel(initiator, query, mode, threads);
                assert_eq!(
                    seq.metrics, par.metrics,
                    "{label} [{mode:?}, {threads} threads, drop_p={}]: ledgers must be \
                     bit-identical (incl. the visit sequence)",
                    plane.drop_probability
                );
                assert_eq!(
                    seq.answers, par.answers,
                    "{label} [{mode:?}, {threads} threads]: answer streams must be \
                     identical, element for element"
                );
                assert_eq!(
                    seq.coverage, par.coverage,
                    "{label} [{mode:?}, {threads} threads]: coverage must agree \
                     (incl. the per-area abandonment order)"
                );
                assert_eq!(
                    seq.certificate, par.certificate,
                    "{label} [{mode:?}, {threads} threads]: certificates must be \
                     bit-identical, tile for tile in emission order"
                );
            }
        }
    }
}

#[test]
fn parallel_equals_sequential_for_every_query_type() {
    let (net, mut rng) = loaded_net(2, 48, 600, 141);
    for k in [1usize, 10] {
        let q = TopKQuery::new(LinearScore::uniform(2), k);
        assert_parallel_identical(&net, &q, &mut rng, &format!("topk-linear k={k}"));
    }
    let peak: Vec<f64> = vec![0.3, 0.7];
    let q = TopKQuery::new(PeakScore::new(peak, Norm::L2), 8);
    assert_parallel_identical(&net, &q, &mut rng, "topk-peak");
    assert_parallel_identical(&net, &SkylineQuery::new(), &mut rng, "skyline");
    let c = Rect::new(vec![0.2, 0.2], vec![0.9, 0.9]);
    assert_parallel_identical(
        &net,
        &SkylineQuery::constrained(c),
        &mut rng,
        "skyline-constrained",
    );
}

#[test]
fn parallel_equals_sequential_in_three_dims() {
    let (net, mut rng) = loaded_net(3, 32, 400, 142);
    let q = TopKQuery::new(LinearScore::uniform(3), 12);
    assert_parallel_identical(&net, &q, &mut rng, "topk-3d");
    assert_parallel_identical(&net, &SkylineQuery::new(), &mut rng, "skyline-3d");
}

#[test]
fn parallel_equals_sequential_on_a_crash_damaged_overlay() {
    let (mut net, mut rng) = loaded_net(2, 48, 600, 143);
    for _ in 0..6 {
        if net.peer_count() > 1 {
            let victim = net.random_peer(&mut rng);
            net.crash(victim);
        }
    }
    net.check_invariants();
    let crash_aware = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    };
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware, 9);
        let seq = exec.run(initiator, &q, mode);
        for threads in THREADS {
            let par = exec.run_parallel(initiator, &q, mode, threads);
            assert_eq!(seq.metrics, par.metrics, "[{mode:?}, {threads} threads]");
            assert_eq!(seq.answers, par.answers, "[{mode:?}, {threads} threads]");
            assert_eq!(seq.coverage, par.coverage, "[{mode:?}, {threads} threads]");
            assert_eq!(
                seq.certificate, par.certificate,
                "[{mode:?}, {threads} threads]: certificates must survive crash \
                 damage bit-identically"
            );
        }
        // Crash damage abandons areas; the parallel engine must report the
        // same honest partial coverage, not silently full coverage.
        if mode == Mode::Broadcast {
            assert!(!seq.coverage.is_complete(), "crashes must cost coverage");
        }
    }
}

/// Property sweep: across random networks, initiators and seeds, parallel
/// and sequential runs produce identical ledgers — including visit
/// sequences, retries and coverage — and repeated parallel runs replay
/// exactly (no dependence on thread scheduling whatsoever).
#[test]
fn parallel_determinism_property_sweep() {
    for seed in 200u64..206 {
        let dims = 2 + (seed % 2) as usize;
        let (net, mut rng) = loaded_net(dims, 24 + (seed % 3) as usize * 8, 300, seed);
        let k = 1 + (seed % 7) as usize;
        let q = TopKQuery::new(LinearScore::uniform(dims), k);
        let plane = if seed % 2 == 0 {
            FaultPlane::none()
        } else {
            FaultPlane::drops(0.2, seed)
        };
        let mode = MODES[(seed % MODES.len() as u64) as usize];
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, plane, seed);
        let seq = exec.run(initiator, &q, mode);
        let par1 = exec.run_parallel(initiator, &q, mode, 4);
        let par2 = exec.run_parallel(initiator, &q, mode, 4);
        assert_eq!(seq.metrics, par1.metrics, "seed {seed} [{mode:?}]");
        assert_eq!(seq.answers, par1.answers, "seed {seed} [{mode:?}]");
        assert_eq!(seq.coverage, par1.coverage, "seed {seed} [{mode:?}]");
        assert_eq!(
            par1.metrics, par2.metrics,
            "seed {seed}: replay must be exact"
        );
        assert_eq!(par1.answers, par2.answers, "seed {seed}");
        assert_eq!(par1.metrics.retries, seq.metrics.retries, "seed {seed}");
    }
}

/// `threads <= 1` *is* the sequential engine (the same code path, not an
/// equivalent one), and `Mode::Slow` always delegates — the degenerate
/// cases the `parallel_exec_bench --threads 1` gate leans on.
#[test]
fn single_thread_and_slow_mode_delegate_to_sequential() {
    let (net, mut rng) = loaded_net(2, 32, 400, 144);
    let q = TopKQuery::new(LinearScore::uniform(2), 5);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::new(&net);
        let seq = exec.run(initiator, &q, mode);
        for threads in [0usize, 1] {
            let par = exec.run_parallel(initiator, &q, mode, threads);
            assert_eq!(seq.metrics, par.metrics, "[{mode:?}, {threads} threads]");
            assert_eq!(seq.answers, par.answers);
        }
    }
    // Slow with many threads still takes the sequential path.
    let initiator = net.random_peer(&mut rng);
    let exec = Executor::new(&net);
    let seq = exec.run(initiator, &q, Mode::Slow);
    let par = exec.run_parallel(initiator, &q, Mode::Slow, 8);
    assert_eq!(seq.metrics, par.metrics);
    assert_eq!(seq.answers, par.answers);
}

/// The naive (scan-path) executor and the trace-off executor parallelise
/// identically too — the engine composes with every executor flavour.
#[test]
fn parallel_composes_with_naive_and_trace_off() {
    let (net, mut rng) = loaded_net(2, 40, 500, 145);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    let initiator = net.random_peer(&mut rng);
    for mode in [Mode::Fast, Mode::Broadcast] {
        let naive = Executor::naive(&net);
        assert_eq!(
            naive.run(initiator, &q, mode).metrics,
            naive.run_parallel(initiator, &q, mode, 3).metrics,
            "[{mode:?}] naive"
        );
        let lean = Executor::new(&net).without_trace();
        let seq = lean.run(initiator, &q, mode);
        let par = lean.run_parallel(initiator, &q, mode, 3);
        assert_eq!(seq.metrics, par.metrics, "[{mode:?}] trace-off");
        assert!(par.metrics.visited.is_empty(), "trace must stay off");
        assert_eq!(seq.answers, par.answers);
    }
}
