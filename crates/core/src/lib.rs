//! RIPPLE: a scalable framework for distributed processing of rank queries
//! (Tsatsanifos, Sacharidis, Sellis — EDBT 2014).
//!
//! This crate is the paper's primary contribution: the generic propagation
//! framework of Section 3 and its three instantiations.
//!
//! * [`framework`] — the abstract interfaces: [`RankQuery`] (the six
//!   query-specific functions of Algorithms 1–3) and [`RippleOverlay`] (what
//!   RIPPLE assumes from a DHT: links annotated with domain *regions*).
//! * [`exec`] — the three propagation templates: `fast` (Alg. 1), `slow`
//!   (Alg. 2) and `ripple(r)` (Alg. 3), plus the naive broadcast baseline,
//!   with hop/message accounting that matches Lemmas 1–3.
//! * [`topk`] — top-k queries (Section 4, Algs. 4–9).
//! * [`skyline`] — skyline queries (Section 5, Algs. 10–15).
//! * [`diversify`] — k-diversification (Section 6, Algs. 16–23), the first
//!   distributed solution for this query type.
//! * [`latency`] — the worst-case latency recurrences of Lemmas 1–3.
//! * [`range`] — range queries as the degenerate (state-free) RIPPLE
//!   instantiation the introduction contrasts rank queries with.
//! * [`cache`] — BRANCA/ARTO-style query-side result caching (Section 2.1).
//! * The [`RippleOverlay`] implementation for MIDAS lives in
//!   [`midas_impl`]; the Chord implementation lives in the `ripple-chord`
//!   crate, demonstrating the framework's substrate-genericity.
//!
//! # Quick example
//!
//! ```
//! use ripple_net::rng::SeedableRng;
//! use ripple_core::framework::Mode;
//! use ripple_core::topk::run_topk;
//! use ripple_geom::{LinearScore, Tuple};
//! use ripple_midas::MidasNetwork;
//!
//! let mut rng = ripple_net::rng::rngs::SmallRng::seed_from_u64(1);
//! let mut net = MidasNetwork::build(2, 64, false, &mut rng);
//! for i in 0..500u64 {
//!     let p = vec![ripple_net::rng::Rng::gen::<f64>(&mut rng), ripple_net::rng::Rng::gen::<f64>(&mut rng)];
//!     net.insert_tuple(Tuple::new(i, p));
//! }
//! let initiator = net.random_peer(&mut rng);
//! let (top, metrics) = run_topk(&net, initiator, LinearScore::uniform(2), 10, Mode::Fast);
//! assert_eq!(top.len(), 10);
//! assert!(metrics.latency <= net.delta() as u64);
//! ```

#![warn(missing_docs)]

#[cfg(test)]
mod audit_equivalence;
pub mod cache;
#[cfg(test)]
mod cert_equivalence;
pub mod diversify;
pub mod exec;
#[cfg(test)]
mod exec_tests;
#[cfg(test)]
mod fault_equivalence;
pub mod framework;
#[cfg(test)]
mod index_equivalence;
#[cfg(test)]
mod ingest_equivalence;
#[cfg(test)]
mod kernel_equivalence;
pub mod latency;
pub mod midas_impl;
#[cfg(test)]
mod parallel_equivalence;
pub mod planner;
pub mod range;
#[cfg(test)]
mod replica_equivalence;
pub mod service;
#[cfg(test)]
mod service_equivalence;
pub mod skyline;
pub mod topk;
#[cfg(test)]
mod verify_mutation;

pub use exec::Executor;
pub use framework::{Coverage, Mode, QueryOutcome, RankQuery, RippleOverlay};
pub use planner::{box_selectivity, run_planned, CostWeights, PlanInputs, Planner, QueryHint};
pub use range::{run_range, run_range_certified, RangeQuery};
pub use ripple_verify::{CertRegion, Certificate, PruneWitness, VerifyError};
pub use service::{
    QueryService, Servable, Served, ServiceConfig, ServiceError, ServiceQuery, ServiceResponse,
    ServiceScore, ServiceStats, TenantStats, Ticket,
};
pub use skyline::{
    run_skyline, run_skyline_certified, run_skyline_certified_par, run_skyline_query,
    run_skyline_query_with, SkylineQuery,
};
pub use topk::{run_topk, run_topk_certified, run_topk_certified_par, run_topk_with, TopKQuery};
