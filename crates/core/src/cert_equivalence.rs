//! The certificate plane's two contracts, tested together:
//!
//! 1. **Every query type issues a verifiable certificate.** Fault-free,
//!    across every propagation mode, the `ripple-verify` checker — a
//!    dependency-free second oracle that never talks to the overlay —
//!    accepts the certificate attached to top-k, skyline (plain and
//!    constrained), range and single-tuple diversification outcomes: the
//!    tiling closes over the domain, every pruned region's witness holds
//!    against the final answer, and the generation stamp matches the
//!    overlay epoch the query ran against.
//!
//! 2. **Emission is plan-invisible.** An executor built with
//!    [`Executor::without_certificates`] must be *bit-identical* — answers,
//!    coverage, full cost ledger including the visit sequence — to the
//!    default certifying executor, for every mode, fault plane and thread
//!    count. Certificates are an observation of the run, never an input to
//!    it; the ablated outcome simply carries `certificate: None`.
//!
//! The mutation-harness twin (`verify_mutation`) checks the converse:
//! corrupted runs are *rejected*. The Chord-side integration lives in
//! `ripple-chord`'s `tests/replica.rs`.

use crate::diversify::run_single_tuple_certified;
use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::range::run_range_certified;
use crate::skyline::{run_skyline_certified, SkylineQuery};
use crate::topk::{run_topk_certified, TopKQuery};
use ripple_geom::{DiversityQuery, LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;
use ripple_verify::{
    verify_coverage, verify_diversify, verify_range, verify_skyline, verify_tiling, verify_topk,
};

const MODES: [Mode; 5] = [
    Mode::Fast,
    Mode::Broadcast,
    Mode::Ripple(1),
    Mode::Ripple(2),
    Mode::Slow,
];
const THREADS: [usize; 2] = [2, 4];

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.insert_tuple(t);
    }
    (net, rng)
}

#[test]
fn every_query_type_issues_a_verifiable_certificate() {
    for (dims, peers, tuples, seed) in [(2usize, 48usize, 600u64, 71u64), (3, 32, 400, 72)] {
        let (net, mut rng) = loaded_net(dims, peers, tuples, seed);
        let generation = net.epoch();
        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::new(&net);

            for k in [1usize, 10] {
                let score = LinearScore::uniform(dims);
                let (got, _, cov, cert) =
                    run_topk_certified(&exec, initiator, score.clone(), k, mode);
                let cert = cert.expect("certificates are on by default");
                verify_topk(&cert, &got, &score, k, generation)
                    .unwrap_or_else(|e| panic!("[{mode:?}, k={k}] top-k rejected: {e}"));
                verify_coverage(&cert, cov.answered_fraction, &cov.unreachable)
                    .unwrap_or_else(|e| panic!("[{mode:?}, k={k}] coverage rejected: {e}"));
                if mode != Mode::Broadcast && k == 1 {
                    assert!(
                        cert.regions
                            .iter()
                            .any(|r| matches!(r, ripple_verify::CertRegion::Pruned { .. })),
                        "[{mode:?}] a selective top-1 must prune somewhere"
                    );
                }
            }
            let peak = PeakScore::new(vec![0.3; dims], Norm::L2);
            let (got, _, _, cert) = run_topk_certified(&exec, initiator, peak.clone(), 8, mode);
            let cert = cert.expect("certificates are on by default");
            verify_topk(&cert, &got, &peak, 8, generation)
                .unwrap_or_else(|e| panic!("[{mode:?}] top-k peak rejected: {e}"));

            let (sky, _, _, cert) =
                run_skyline_certified(&exec, initiator, SkylineQuery::new(), mode);
            let cert = cert.expect("certificates are on by default");
            verify_skyline(&cert, &sky, None, generation)
                .unwrap_or_else(|e| panic!("[{mode:?}] skyline rejected: {e}"));

            let c = Rect::new(vec![0.2; dims], vec![0.9; dims]);
            let (sky, _, _, cert) =
                run_skyline_certified(&exec, initiator, SkylineQuery::constrained(c.clone()), mode);
            let cert = cert.expect("certificates are on by default");
            verify_skyline(&cert, &sky, Some(&c), generation)
                .unwrap_or_else(|e| panic!("[{mode:?}] constrained skyline rejected: {e}"));

            let div = DiversityQuery::new(vec![0.5; dims], 0.5, Norm::L1);
            let set = vec![Tuple::new(u64::MAX, vec![0.5; dims])];
            let (_, candidates, _, _, cert) =
                run_single_tuple_certified(&exec, initiator, &div, &set, f64::INFINITY, mode);
            let cert = cert.expect("certificates are on by default");
            verify_diversify(&cert, &candidates, &div, &set, f64::INFINITY, generation)
                .unwrap_or_else(|e| panic!("[{mode:?}] diversify rejected: {e}"));
        }
        // Range is the degenerate stateless instantiation — always fast.
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::new(&net);
        let range = Rect::new(vec![0.2; dims], vec![0.7; dims]);
        let (got, _, _, cert) = run_range_certified(&exec, initiator, range.clone());
        let cert = cert.expect("certificates are on by default");
        verify_range(&cert, &got, &range, generation)
            .unwrap_or_else(|e| panic!("range rejected: {e}"));
        verify_tiling(&cert, cert.default_tolerance()).expect("range tiling");
        assert!(cert.size_bytes() > 0);
    }
}

/// The ablation sweep: certificate emission must not perturb a single bit
/// of the observable outcome, under every mode × fault plane × thread
/// count, sequentially and in parallel.
#[test]
fn emission_is_plan_invisible_under_ablation() {
    fn sweep<Q>(net: &MidasNetwork, query: &Q, rng: &mut SmallRng, label: &str)
    where
        Q: RankQuery<Rect> + Sync,
        Q::Global: Send + Sync,
        Q::Local: Send,
    {
        let planes = [
            FaultPlane::none(),
            FaultPlane::drops(0.15, 17),
            FaultPlane {
                drop_probability: 0.1,
                slow_fraction: 0.3,
                slow_penalty_hops: 3,
                timeout_hops: 2,
                max_retries: 2,
                seed: 11,
                ..FaultPlane::none()
            },
        ];
        for plane in planes {
            for mode in MODES {
                let initiator = net.random_peer(rng);
                let certifying = Executor::with_faults(net, plane, 7);
                let ablated = Executor::with_faults(net, plane, 7).without_certificates();
                let on = certifying.run(initiator, query, mode);
                let off = ablated.run(initiator, query, mode);
                assert!(
                    on.certificate.is_some(),
                    "{label} [{mode:?}]: the default executor certifies"
                );
                assert!(
                    off.certificate.is_none(),
                    "{label} [{mode:?}]: the ablated executor must not certify"
                );
                assert_eq!(
                    on.metrics, off.metrics,
                    "{label} [{mode:?}, drop_p={}]: ledgers must be bit-identical \
                     with certificates on and off (incl. the visit sequence)",
                    plane.drop_probability
                );
                assert_eq!(
                    on.answers, off.answers,
                    "{label} [{mode:?}]: answers must be identical, element for element"
                );
                assert_eq!(on.coverage, off.coverage, "{label} [{mode:?}]: coverage");
                for threads in THREADS {
                    let off_par = ablated.run_parallel(initiator, query, mode, threads);
                    assert!(off_par.certificate.is_none(), "{label} [{mode:?}]");
                    assert_eq!(
                        on.metrics, off_par.metrics,
                        "{label} [{mode:?}, {threads} threads]: parallel ablated ledger"
                    );
                    assert_eq!(
                        on.answers, off_par.answers,
                        "{label} [{mode:?}, {threads} threads]: parallel ablated answers"
                    );
                    assert_eq!(on.coverage, off_par.coverage, "{label} [{mode:?}]");
                }
            }
        }
    }

    let (net, mut rng) = loaded_net(2, 48, 600, 73);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    sweep(&net, &q, &mut rng, "topk-linear");
    sweep(&net, &SkylineQuery::new(), &mut rng, "skyline");
    let c = Rect::new(vec![0.2, 0.2], vec![0.9, 0.9]);
    sweep(
        &net,
        &SkylineQuery::constrained(c),
        &mut rng,
        "skyline-constrained",
    );

    // And on a crash-damaged, replicated overlay: the failover tiles
    // (replica-served, unreachable) are still pure observation.
    let (mut net, mut rng) = loaded_net(2, 48, 600, 74);
    net.enable_replication(1);
    for _ in 0..6 {
        if net.peer_count() > 1 {
            let victim = net.random_peer(&mut rng);
            net.crash(victim);
            net.refresh_replicas();
        }
    }
    net.check_invariants();
    let crash_aware = FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    };
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let on = Executor::with_faults(&net, crash_aware, 9).run(initiator, &q, mode);
        let off = Executor::with_faults(&net, crash_aware, 9)
            .without_certificates()
            .run(initiator, &q, mode);
        assert!(on.certificate.is_some() && off.certificate.is_none());
        assert_eq!(on.metrics, off.metrics, "[{mode:?}] crash-damaged ledger");
        assert_eq!(on.answers, off.answers, "[{mode:?}]");
        assert_eq!(on.coverage, off.coverage, "[{mode:?}]");
    }
}
