//! Adaptive cost-based mode planning (the "which template?" question).
//!
//! Section 7 of the paper shows there is no universally best propagation
//! mode: `fast` wins on latency and, at small networks, even on messages
//! (fig. 4, n = 1024: slow costs *more* messages than fast because the
//! refined-threshold savings never amortize the sequential overhead), while
//! `slow`/`ripple(Δ/3)` win on messages at large networks by more than 2×
//! (fig. 4, n = 8192: 374 → ~174 messages). The figure sweeps pick the mode
//! by hand per experiment; a deployment cannot.
//!
//! [`Planner`] closes that gap. Per query class it keeps a
//! [`QueryStats`] ledger — per-mode EWMAs of messages, hop latency and
//! wall-clock, a per-peer visit-cost EWMA, and result-size history — and
//! chooses a [`Plan`] (mode + ripple radius + thread count) for each query:
//!
//! 1. **Explore.** Each candidate mode — `fast`, `ripple(Δ/3)`,
//!    `ripple(2Δ/3)`, `slow`, `broadcast` — is probed [`MIN_SAMPLES`]
//!    times, in that order, before the planner trusts its model
//!    ([`PlanSource::Probe`]). `broadcast` is probed *last* and earns its
//!    place in the pool through its wall-clock: its `2n` message flood is
//!    never the message optimum, but on non-selective queries (e.g. an
//!    unconstrained skyline, where sequential refinement prunes nothing)
//!    its embarrassingly-parallel propagation beats every tree walk on
//!    wall-clock by an order of magnitude — a fact only an observation can
//!    surface, because it depends on per-visit state size, not on message
//!    counts.
//! 2. **Exploit.** Every candidate is scored by a normalized weighted cost
//!    (messages and wall-clock weighted equally, hop latency as a mild
//!    tiebreaker; see [`CostWeights`]) using observations where they exist
//!    and the calibrated worst-case model otherwise; the argmin wins
//!    ([`PlanSource::Model`]). Message and latency costs use EWMAs; the
//!    wall-clock cost uses the *running floor* of observed walls —
//!    wall-clock noise is one-sided (interference only adds time), so the
//!    floor converges to the true cost from above and one clean sample
//!    undoes a spiked one.
//! 3. **Re-explore.** Exploiting only the winner would freeze the losers'
//!    wall-clock estimates at whatever their single probe happened to
//!    measure — a spiked probe could pin the planner on a wall-worse mode
//!    forever. Every [`REPROBE_PERIOD`]-th query therefore re-probes one
//!    mode from the *frontier* — candidates within [`FALLBACK_SLACK`] of
//!    the best observed message cost and within [`REPROBE_WALL_SLACK`] of
//!    the best wall floor — in rotation. Frontier modes are near-optimal
//!    on messages by construction, so re-probing costs at most a few
//!    percent of the congestion budget while keeping every competitive
//!    mode's wall estimate honest.
//! 4. **Never much worse.** If the weighted winner's message cost exceeds
//!    the best *observed* mode's by more than [`FALLBACK_SLACK`], the
//!    planner pins the message-optimal observed mode instead
//!    ([`PlanSource::Fallback`]). This bounds regret against the best
//!    static mode even when the model is miscalibrated for a workload.
//!
//! The chosen plan is stamped into [`QueryMetrics::plan`] **after** the run
//! completes and is excluded from ledger equality, so a planned execution is
//! bit-identical — answers, metrics, visit trace, coverage — to a static
//! execution of the same mode. The regression suite enforces both that
//! identity and the ≤ 10 % regret bound across the fig. 4–12 configurations.
//!
//! [`QueryMetrics::plan`]: ripple_net::QueryMetrics::plan

use std::time::Instant;

use ripple_net::{BlockSet, PeerId, Plan, PlanSource, PlannedMode, QueryMetrics, QueryStats};

use crate::exec::Executor;
use crate::framework::{Mode, QueryOutcome, RankQuery, RippleOverlay};
use crate::latency;

/// Probes per candidate mode before the planner exploits its ledger.
pub const MIN_SAMPLES: u64 = 1;

/// Never-much-worse bound: the weighted winner may cost at most this factor
/// of the best observed mode's messages before the fallback pins the latter.
/// Aligned with the regression suite's ≤ 1.10× regret budget, so a mode that
/// buys a large wall-clock win with a few percent more messages (broadcast on
/// non-selective queries) stays eligible.
pub const FALLBACK_SLACK: f64 = 1.10;

/// Every this-many queries (once the probe phase is complete), the planner
/// re-probes one frontier mode in rotation instead of running the model's
/// winner — see step 3 of the module docs. Small enough that a spiked
/// probe sample is corrected within a few dozen queries, large enough that
/// re-probe overhead stays a rounding error.
pub const REPROBE_PERIOD: u64 = 8;

/// A candidate joins the re-probe frontier only while its wall floor is
/// within this factor of the best wall floor: modes already measured far
/// slower than the best are not worth re-measuring (the floor can only
/// have overestimated them by scheduler noise, and noise this large is
/// rare), and re-running them would bleed wall-clock for nothing.
pub const REPROBE_WALL_SLACK: f64 = 4.0;

/// Per-peer visit cost (ns) assumed before any wall-clock observation
/// exists. Only used to price `broadcast` during the explore phase; once a
/// single query has run, the ledger's own visit EWMA replaces it.
const DEFAULT_VISIT_NS: f64 = 20_000.0;

/// What the planner knows about the query before running it.
#[derive(Clone, Debug)]
pub struct PlanInputs {
    /// Peers currently in the overlay (`n`).
    pub peers: usize,
    /// Overlay depth `Δ` (MIDAS: tree depth; Chord: log₂ of the ring), the
    /// scale of the ripple radius.
    pub delta: u32,
    /// Query-class hint refining the message model.
    pub hint: QueryHint,
}

/// Query-class hint: how strongly sequential state refinement (the slow
/// template's thesis) is expected to prune downstream work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryHint {
    /// Top-k: a tight `k` makes the threshold τ selective early.
    TopK {
        /// Number of results requested.
        k: usize,
    },
    /// (Constrained) skyline: `selectivity` is the fraction of stored rows
    /// whose blocks intersect the constraint box — see [`box_selectivity`].
    Skyline {
        /// Estimated fraction of rows inside the constraint box, in `[0, 1]`.
        selectivity: f64,
    },
    /// k-diversification (Section 6): single-tuple refinement rounds.
    Diversify,
    /// No query-specific knowledge.
    Generic,
}

impl QueryHint {
    /// Modeled ratio of slow-template to fast-template message volume at
    /// network size `n` — the factor sequential τ-refinement is expected to
    /// shrink (or, at small `n`, inflate) the flood by.
    ///
    /// Calibrated against fig. 4 (NBA, k = 10): `σ(8192) ≈ 0.47`
    /// (374 → 174 messages) and `σ(1024) ≈ 1.26` (14.1 → 17.8 — slow is
    /// *worse* at small n). A log-linear fit through those two points gives
    /// `σ(n) = 3.9 − 0.264·log₂(n)`, clamped to `[0.3, 1.5]`. Hints shift
    /// the baseline: selective queries (small `k`, tight boxes) refine
    /// harder, permissive ones barely refine at all.
    fn slow_shrink(&self, peers: usize) -> f64 {
        let log_n = (peers.max(2) as f64).log2();
        let base = 3.9 - 0.264 * log_n;
        let bias = match self {
            QueryHint::TopK { k } => 0.02 * (*k as f64).max(1.0).log2(),
            QueryHint::Skyline { selectivity } => 0.3 * (selectivity.clamp(0.0, 1.0) - 0.5),
            QueryHint::Diversify => 0.1,
            QueryHint::Generic => 0.0,
        };
        (base + bias).clamp(0.3, 1.5)
    }
}

/// Weights of the normalized cost terms. Messages (the paper's congestion
/// metric, the scalability bottleneck) and wall-clock (what a single-site
/// deployment actually waits for) carry equal weight; hop latency is a
/// mild tiebreaker that orders message-tied ripple radii — matching the
/// paper's framing of `ripple(r)` as trading a little latency for a lot
/// of communication, without letting the latency term veto a mode that
/// wins outright on wall-clock.
#[derive(Clone, Copy, Debug)]
pub struct CostWeights {
    /// Weight of the normalized message cost.
    pub messages: f64,
    /// Weight of the normalized wall-clock cost.
    pub wall: f64,
    /// Weight of the normalized hop-latency cost.
    pub latency: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            messages: 1.0,
            wall: 1.0,
            latency: 0.05,
        }
    }
}

/// Cost estimate for one candidate: messages, hop latency, wall-clock ns.
#[derive(Clone, Copy, Debug, Default)]
struct CostTriple {
    messages: f64,
    latency: f64,
    wall_ns: f64,
}

/// The adaptive mode planner. One instance per query class (its ledger
/// assumes the queries it observes are statistically exchangeable).
#[derive(Clone, Debug)]
pub struct Planner {
    stats: QueryStats,
    weights: CostWeights,
    threads: usize,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(1)
    }
}

impl Planner {
    /// A planner that hands `threads` workers to the parallel executor for
    /// fast-phase modes (`threads ≤ 1` keeps every run sequential).
    pub fn new(threads: usize) -> Self {
        Planner {
            stats: QueryStats::new(),
            weights: CostWeights::default(),
            threads: threads.max(1),
        }
    }

    /// Overrides the cost weights.
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Read access to the ledger.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The probe candidates for an overlay of depth `delta`, in probe
    /// order, written into a fixed buffer — [`plan`](Self::plan) sits on
    /// every query's critical path, so candidate enumeration must not
    /// allocate.
    fn candidates_into(delta: u32, buf: &mut [PlannedMode; 5]) -> usize {
        let r1 = (delta / 3).max(1);
        let r2 = (2 * delta / 3).max(1);
        let mut n = 0;
        for mode in [
            PlannedMode::Fast,
            PlannedMode::Ripple(r1),
            PlannedMode::Ripple(r2),
            PlannedMode::Slow,
            PlannedMode::Broadcast,
        ] {
            if n == 0 || buf[n - 1] != mode {
                buf[n] = mode;
                n += 1;
            }
        }
        n
    }

    /// The probe candidates for an overlay of depth `delta`, in probe
    /// order. `broadcast` probes last: its message flood is known in
    /// advance, but its per-visit wall-clock profile is not.
    pub fn candidates(delta: u32) -> Vec<PlannedMode> {
        let mut buf = [PlannedMode::Fast; 5];
        let n = Self::candidates_into(delta, &mut buf);
        buf[..n].to_vec()
    }

    /// Chooses the plan for the next query.
    pub fn plan(&self, inputs: &PlanInputs) -> Plan {
        let mut buf = [PlannedMode::Fast; 5];
        let n = Self::candidates_into(inputs.delta, &mut buf);
        let candidates = &buf[..n];
        // Explore: every candidate earns MIN_SAMPLES observations first.
        for &mode in candidates {
            if self.stats.samples(mode) < MIN_SAMPLES {
                return Plan {
                    mode,
                    threads: self.threads_for(mode),
                    source: PlanSource::Probe,
                };
            }
        }
        // Re-explore: every REPROBE_PERIOD-th query refreshes one frontier
        // mode's wall estimate (rotation is keyed off the observation count,
        // so it is deterministic and advances one slot per period).
        let obs = self.stats.observations();
        if obs.is_multiple_of(REPROBE_PERIOD) {
            let mut best_msgs = f64::MAX;
            let mut best_floor = f64::MAX;
            for &m in candidates {
                if let Some(s) = self.stats.mode_stats(m) {
                    best_msgs = best_msgs.min(s.messages.get().unwrap_or(f64::MAX));
                    best_floor = best_floor.min(s.wall_floor_ns);
                }
            }
            let mut frontier = [PlannedMode::Fast; 5];
            let mut fl = 0;
            for &m in candidates {
                if let Some(s) = self.stats.mode_stats(m) {
                    let msgs = s.messages.get().unwrap_or(f64::MAX);
                    if msgs <= FALLBACK_SLACK * best_msgs
                        && s.wall_floor_ns <= REPROBE_WALL_SLACK * best_floor
                    {
                        frontier[fl] = m;
                        fl += 1;
                    }
                }
            }
            // A one-mode frontier has nothing to compare against: the
            // winner below refreshes it on every query anyway.
            if fl >= 2 {
                let mode = frontier[((obs / REPROBE_PERIOD) as usize) % fl];
                return Plan {
                    mode,
                    threads: self.threads_for(mode),
                    source: PlanSource::Probe,
                };
            }
        }
        // Exploit: normalized weighted argmin over the candidates, in a
        // fixed buffer for the same reason as above.
        let mut scored = [(PlannedMode::Fast, CostTriple::default()); 5];
        for (slot, &m) in scored.iter_mut().zip(candidates) {
            *slot = (m, self.cost_of(m, inputs));
        }
        let scored = &scored[..n];
        let tiny = f64::MIN_POSITIVE;
        let min_msg = scored
            .iter()
            .map(|(_, c)| c.messages)
            .fold(f64::MAX, f64::min)
            .max(tiny);
        let min_lat = scored
            .iter()
            .map(|(_, c)| c.latency)
            .fold(f64::MAX, f64::min)
            .max(tiny);
        let min_wall = scored
            .iter()
            .map(|(_, c)| c.wall_ns)
            .fold(f64::MAX, f64::min)
            .max(tiny);
        let w = self.weights;
        let mut winner = scored[0].0;
        let mut winner_msgs = scored[0].1.messages;
        let mut best_score = f64::MAX;
        for (mode, c) in scored {
            let score = w.messages * (c.messages / min_msg)
                + w.wall * (c.wall_ns / min_wall)
                + w.latency * (c.latency / min_lat);
            // Strict `<` keeps ties on the earlier (probe-order) candidate,
            // so the choice is deterministic.
            if score < best_score {
                best_score = score;
                winner = *mode;
                winner_msgs = c.messages;
            }
        }
        // Never much worse (on the congestion metric) than the best mode we
        // have actually *seen*.
        let best_observed = self
            .stats
            .observed_modes()
            .filter_map(|m| m.messages.get().map(|v| (m.mode, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((obs_mode, obs_msgs)) = best_observed {
            if winner_msgs > FALLBACK_SLACK * obs_msgs {
                return Plan {
                    mode: obs_mode,
                    threads: self.threads_for(obs_mode),
                    source: PlanSource::Fallback,
                };
            }
        }
        Plan {
            mode: winner,
            threads: self.threads_for(winner),
            source: PlanSource::Model,
        }
    }

    /// Feeds one completed query back into the ledger.
    pub fn observe(
        &mut self,
        mode: PlannedMode,
        metrics: &QueryMetrics,
        result_size: usize,
        wall_ns: u64,
    ) {
        self.stats.observe(
            mode,
            metrics.total_messages(),
            metrics.latency,
            metrics.peers_visited,
            result_size,
            wall_ns,
        );
    }

    /// Observed costs when the mode has samples (message and latency EWMAs,
    /// the wall-clock *floor* — see the module docs on one-sided wall
    /// noise), model estimate otherwise.
    fn cost_of(&self, mode: PlannedMode, inputs: &PlanInputs) -> CostTriple {
        match self.stats.mode_stats(mode) {
            Some(m) if m.messages.count() > 0 => CostTriple {
                messages: m.messages.get().unwrap_or(f64::MAX),
                latency: m.latency.get().unwrap_or(f64::MAX),
                wall_ns: if m.wall_floor_ns.is_finite() {
                    m.wall_floor_ns
                } else {
                    f64::MAX
                },
            },
            _ => self.model_cost(mode, inputs),
        }
    }

    /// Calibrated worst-case cost model (Lemmas 1–3 for latency, the fig. 4
    /// shrink fit for messages, the ledger's visit EWMA for wall-clock).
    fn model_cost(&self, mode: PlannedMode, inputs: &PlanInputs) -> CostTriple {
        let n = inputs.peers.max(1) as f64;
        let delta = inputs.delta.min(60);
        let flood = 2.0 * n; // one query + one response per peer
        let shrink = inputs.hint.slow_shrink(inputs.peers);
        let (messages, hops) = match mode {
            PlannedMode::Broadcast => (flood, latency::fast_worst_case(delta, 0) as f64),
            PlannedMode::Fast => (flood, latency::fast_worst_case(delta, 0) as f64),
            PlannedMode::Slow => (flood * shrink, latency::slow_worst_case(delta, 0) as f64),
            PlannedMode::Ripple(r) => {
                let frac = (r as f64 / delta.max(1) as f64).min(1.0);
                (
                    flood * (1.0 + (shrink - 1.0) * frac),
                    latency::ripple_worst_case(delta, 0, r.min(delta)) as f64,
                )
            }
        };
        let visit = self.stats.visit_ns().unwrap_or(DEFAULT_VISIT_NS);
        CostTriple {
            messages,
            latency: hops,
            // The single-core simulator's wall-clock tracks total local work,
            // i.e. visits — not the hop-latency critical path.
            wall_ns: messages / 2.0 * visit,
        }
    }

    /// `slow` is semantically sequential; everything else may fan out.
    fn threads_for(&self, mode: PlannedMode) -> usize {
        match mode {
            PlannedMode::Slow => 1,
            _ => self.threads,
        }
    }
}

/// Converts a planner decision into an executor mode.
impl From<PlannedMode> for Mode {
    fn from(p: PlannedMode) -> Mode {
        match p {
            PlannedMode::Fast => Mode::Fast,
            PlannedMode::Slow => Mode::Slow,
            PlannedMode::Ripple(r) => Mode::Ripple(r),
            PlannedMode::Broadcast => Mode::Broadcast,
        }
    }
}

/// Converts an executor mode into its ledger key.
impl From<Mode> for PlannedMode {
    fn from(m: Mode) -> PlannedMode {
        match m {
            Mode::Fast => PlannedMode::Fast,
            Mode::Slow => PlannedMode::Slow,
            Mode::Ripple(r) => PlannedMode::Ripple(r),
            Mode::Broadcast => PlannedMode::Broadcast,
        }
    }
}

/// Fraction of stored rows whose *blocks* intersect the box `[lo, hi]` —
/// the planner's box-selectivity estimate, read straight off the block
/// corner metadata (no tuple scan). Upward-biased (a block overlaps when
/// any of its rows might), which is the safe direction for a pruning hint.
pub fn box_selectivity(blocks: &BlockSet, lo: &[f64], hi: &[f64]) -> f64 {
    if blocks.rows() == 0 {
        return 1.0;
    }
    let mut rows = 0usize;
    for b in 0..blocks.num_blocks() {
        let bmin = blocks.block_min(b);
        let bmax = blocks.block_max(b);
        let overlaps = bmin
            .iter()
            .zip(bmax)
            .zip(lo.iter().zip(hi))
            .all(|((&mn, &mx), (&l, &h))| mx >= l && mn <= h);
        if overlaps {
            rows += blocks.block_live(b);
        }
    }
    rows as f64 / blocks.rows() as f64
}

/// Plans, runs and records one query: asks `planner` for a [`Plan`],
/// executes it on `exec` (parallel when the plan says so), feeds the
/// observed cost back into the ledger, and stamps the plan into the
/// outcome's metrics. Everything except the stamp is identical to a static
/// run of the chosen mode — the regression suite pins that bit-for-bit.
pub fn run_planned<O, Q>(
    planner: &mut Planner,
    exec: &Executor<'_, O>,
    initiator: PeerId,
    query: &Q,
    inputs: &PlanInputs,
) -> QueryOutcome<Q::Local>
where
    O: RippleOverlay + Sync,
    O::Region: Send,
    Q: RankQuery<O::Region> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    let plan = planner.plan(inputs);
    let mode: Mode = plan.mode.into();
    let start = Instant::now();
    let mut outcome = if plan.threads > 1 {
        exec.run_parallel(initiator, query, mode, plan.threads)
    } else {
        exec.run(initiator, query, mode)
    };
    let wall_ns = start.elapsed().as_nanos() as u64;
    planner.observe(plan.mode, &outcome.metrics, outcome.answers.len(), wall_ns);
    outcome.metrics.plan = Some(plan);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopKQuery;
    use ripple_geom::{LinearScore, Tuple};
    use ripple_midas::MidasNetwork;
    use ripple_net::rng::rngs::SmallRng;
    use ripple_net::rng::{Rng, SeedableRng};

    fn inputs(peers: usize, delta: u32) -> PlanInputs {
        PlanInputs {
            peers,
            delta,
            hint: QueryHint::TopK { k: 10 },
        }
    }

    /// Synthetic observation with the given per-query costs.
    fn feed(p: &mut Planner, mode: PlannedMode, msgs: u64, lat: u64, wall_us: u64) {
        let mut m = QueryMetrics::new();
        m.query_messages = msgs / 2;
        m.response_messages = msgs - msgs / 2;
        m.latency = lat;
        m.peers_visited = (msgs / 2).max(1);
        p.observe(mode, &m, 10, wall_us * 1_000);
    }

    #[test]
    fn candidates_are_deduped_and_probe_ordered() {
        assert_eq!(
            Planner::candidates(9),
            vec![
                PlannedMode::Fast,
                PlannedMode::Ripple(3),
                PlannedMode::Ripple(6),
                PlannedMode::Slow,
                PlannedMode::Broadcast
            ]
        );
        // Δ = 1 collapses both ripple radii to 1.
        assert_eq!(
            Planner::candidates(1),
            vec![
                PlannedMode::Fast,
                PlannedMode::Ripple(1),
                PlannedMode::Slow,
                PlannedMode::Broadcast
            ]
        );
    }

    #[test]
    fn explore_probes_each_candidate_once_in_order() {
        let mut p = Planner::new(1);
        let inp = inputs(512, 9);
        for &expect in &Planner::candidates(9) {
            let plan = p.plan(&inp);
            assert_eq!(plan.source, PlanSource::Probe);
            assert_eq!(plan.mode, expect);
            feed(&mut p, plan.mode, 100, 9, 500);
        }
        // Ledger complete: next plan is no longer a probe.
        assert_ne!(p.plan(&inp).source, PlanSource::Probe);
    }

    #[test]
    fn exploit_matches_fig4_at_both_network_sizes() {
        // fig. 4, n = 8192 shape: ripple(Δ/3) matches slow's messages at a
        // fraction of its latency — the weighted argmin must pick it.
        let mut p = Planner::new(1);
        feed(&mut p, PlannedMode::Fast, 374, 9, 3740);
        feed(&mut p, PlannedMode::Ripple(4), 175, 42, 1750);
        feed(&mut p, PlannedMode::Ripple(8), 174, 52, 1740);
        feed(&mut p, PlannedMode::Slow, 174, 61, 1740);
        feed(&mut p, PlannedMode::Broadcast, 16384, 9, 163_840);
        let plan = p.plan(&inputs(8192, 13));
        assert_eq!(plan.source, PlanSource::Model);
        assert_eq!(plan.mode, PlannedMode::Ripple(4));

        // fig. 4, n = 1024 shape: fast wins both metrics outright.
        let mut p = Planner::new(1);
        feed(&mut p, PlannedMode::Fast, 14, 7, 140);
        feed(&mut p, PlannedMode::Ripple(3), 18, 25, 180);
        feed(&mut p, PlannedMode::Ripple(6), 18, 31, 180);
        feed(&mut p, PlannedMode::Slow, 18, 38, 180);
        feed(&mut p, PlannedMode::Broadcast, 2048, 7, 20_480);
        let plan = p.plan(&inputs(1024, 10));
        assert_eq!(plan.source, PlanSource::Model);
        assert_eq!(plan.mode, PlannedMode::Fast);
    }

    #[test]
    fn fallback_pins_message_best_observed_mode() {
        // Wall-clock lies (fast looks cheap on wall), but its messages are
        // far above the best observed — fallback must refuse the winner if
        // the weighted score would otherwise cross the slack bound.
        let mut p = Planner::new(1).with_weights(CostWeights {
            messages: 0.0,
            wall: 1.0,
            latency: 1.0,
        });
        feed(&mut p, PlannedMode::Fast, 400, 9, 10);
        feed(&mut p, PlannedMode::Ripple(4), 170, 42, 1700);
        feed(&mut p, PlannedMode::Ripple(8), 171, 52, 1710);
        feed(&mut p, PlannedMode::Slow, 172, 61, 1720);
        feed(&mut p, PlannedMode::Broadcast, 16384, 9, 163_840);
        let plan = p.plan(&inputs(8192, 13));
        assert_eq!(plan.source, PlanSource::Fallback);
        assert_eq!(plan.mode, PlannedMode::Ripple(4));
    }

    #[test]
    fn broadcast_probes_last_and_loses_on_topk_shapes() {
        let mut p = Planner::new(1);
        let inp = inputs(512, 9);
        for &mode in &Planner::candidates(9) {
            let plan = p.plan(&inp);
            assert_eq!(plan.source, PlanSource::Probe);
            assert_eq!(plan.mode, mode);
            // Broadcast's probe observes its 2n flood and a proportional
            // wall; the tree modes share a cheap profile.
            if mode == PlannedMode::Broadcast {
                feed(&mut p, mode, 1024, 12, 10_240);
            } else {
                feed(&mut p, mode, 120, 12, 600);
            }
        }
        for _ in 0..32 {
            let plan = p.plan(&inp);
            assert_ne!(plan.mode, PlannedMode::Broadcast);
            feed(&mut p, plan.mode, 120, 12, 600);
        }
        assert_eq!(p.stats().samples(PlannedMode::Broadcast), 1);
    }

    #[test]
    fn broadcast_wins_on_wall_dominant_shapes_within_message_slack() {
        // fig. 9 shape (unconstrained skyline): every mode floods — the
        // tree walks carry huge intermediate state, broadcast's flat
        // propagation is ~10x cheaper on wall at ~8% more messages. The
        // planner must pick broadcast, and the fallback must not veto it
        // (8% < FALLBACK_SLACK).
        let mut p = Planner::new(1);
        feed(&mut p, PlannedMode::Fast, 117, 6, 2070);
        feed(&mut p, PlannedMode::Ripple(3), 139, 30, 600);
        feed(&mut p, PlannedMode::Ripple(6), 139, 40, 620);
        feed(&mut p, PlannedMode::Slow, 139, 46, 610);
        feed(&mut p, PlannedMode::Broadcast, 127, 6, 210);
        let plan = p.plan(&inputs(512, 9));
        assert_eq!(plan.source, PlanSource::Model);
        assert_eq!(plan.mode, PlannedMode::Broadcast);
    }

    #[test]
    fn reprobe_corrects_a_spiked_probe_wall() {
        // Slow is truly the wall-cheapest of the message-tied modes, but
        // its probe sample catches a scheduler spike. Winner-only
        // exploitation would freeze that estimate forever; the periodic
        // frontier re-probe must refresh it and flip the winner to slow.
        let mut p = Planner::new(1);
        let inp = inputs(512, 9);
        let truth = |m: PlannedMode| match m {
            PlannedMode::Fast => (200, 6, 500),
            PlannedMode::Ripple(3) => (120, 20, 600),
            PlannedMode::Ripple(6) => (120, 30, 610),
            PlannedMode::Slow => (120, 40, 300),
            _ => (1024, 6, 10_240),
        };
        let mut slow_probed = false;
        for round in 0..64u64 {
            let plan = p.plan(&inp);
            let (msgs, lat, mut wall) = truth(plan.mode);
            if plan.mode == PlannedMode::Slow && !slow_probed {
                wall = 1_900; // the spike: >6x slow's true wall
                slow_probed = true;
            }
            // Within a few re-probe rotations the floor is corrected and
            // every model decision from then on picks slow.
            if round >= 24 && plan.source == PlanSource::Model {
                assert_eq!(plan.mode, PlannedMode::Slow, "round {round}");
            }
            feed(&mut p, plan.mode, msgs, lat, wall);
        }
        let slow = p.stats().mode_stats(PlannedMode::Slow).expect("observed");
        assert_eq!(slow.wall_floor_ns, 300_000.0, "floor recovered the truth");
    }

    #[test]
    fn reprobe_stays_inside_the_message_and_wall_frontier() {
        // fig. 9 shape: broadcast wins, fast is message-competitive but
        // ~10x worse on wall. Fast must not be re-probed — bleeding a 10x
        // wall round every re-probe period would forfeit the wall win —
        // and the message-expensive tree modes must not be either.
        let mut p = Planner::new(1);
        let inp = inputs(512, 9);
        for &mode in &Planner::candidates(9) {
            let plan = p.plan(&inp);
            assert_eq!(plan.source, PlanSource::Probe);
            match mode {
                PlannedMode::Fast => feed(&mut p, mode, 117, 6, 2070),
                PlannedMode::Broadcast => feed(&mut p, mode, 127, 6, 210),
                m => feed(&mut p, m, 139, 30, 610),
            }
        }
        for round in 0..40 {
            let plan = p.plan(&inp);
            assert_eq!(plan.mode, PlannedMode::Broadcast, "round {round}");
            assert_eq!(plan.source, PlanSource::Model, "round {round}");
            feed(&mut p, plan.mode, 127, 6, 210);
        }
    }

    #[test]
    fn slow_plans_are_sequential_fast_plans_fan_out() {
        let p = Planner::new(4);
        assert_eq!(p.threads_for(PlannedMode::Slow), 1);
        assert_eq!(p.threads_for(PlannedMode::Fast), 4);
        assert_eq!(p.threads_for(PlannedMode::Ripple(2)), 4);
    }

    #[test]
    fn box_selectivity_counts_overlapping_block_rows() {
        use ripple_geom::KernelDispatch;
        let tuples: Vec<Tuple> = (0..600u64)
            .map(|i| Tuple::new(i, vec![i as f64 / 600.0, 0.5]))
            .collect();
        let blocks = ripple_net::BlockSet::build(&tuples, 0, KernelDispatch::Auto);
        let all = box_selectivity(&blocks, &[0.0, 0.0], &[1.0, 1.0]);
        assert!((all - 1.0).abs() < 1e-12);
        let none = box_selectivity(&blocks, &[2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(none, 0.0);
        let some = box_selectivity(&blocks, &[0.0, 0.0], &[0.2, 1.0]);
        assert!(some > 0.0 && some < 1.0, "partial overlap, got {some}");
    }

    #[test]
    fn planned_runs_are_bit_identical_to_static_runs() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut net = MidasNetwork::build(2, 24, false, &mut rng);
        for i in 0..1200u64 {
            let p = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            net.insert_tuple(Tuple::new(i, p));
        }
        let exec = Executor::new(&net);
        let mut planner = Planner::new(1);
        let inp = PlanInputs {
            peers: net.peer_count(),
            delta: net.delta(),
            hint: QueryHint::TopK { k: 8 },
        };
        let query = TopKQuery::new(LinearScore::uniform(2), 8);
        let initiator = net.random_peer(&mut rng);
        for round in 0..12 {
            let planned = run_planned(&mut planner, &exec, initiator, &query, &inp);
            let plan = planned.metrics.plan.clone().expect("plan stamped");
            let modes: Mode = plan.mode.into();
            let fixed = exec.run(initiator, &query, modes);
            assert_eq!(planned.answers, fixed.answers, "round {round}");
            assert_eq!(planned.metrics, fixed.metrics, "round {round}");
            assert_eq!(
                planned.coverage.answered_fraction,
                fixed.coverage.answered_fraction
            );
            assert!(fixed.metrics.plan.is_none(), "static runs carry no plan");
        }
        assert!(planner.stats().observations() >= 12);
    }

    #[test]
    fn mode_conversions_round_trip() {
        for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(5), Mode::Broadcast] {
            let planned: PlannedMode = mode.into();
            let back: Mode = planned.into();
            assert_eq!(back, mode);
        }
    }
}
