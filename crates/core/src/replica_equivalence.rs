//! Property tests for replica-aware failover.
//!
//! Two families of guarantees (the Chord-side twins live in `ripple-chord`'s
//! `tests/replica.rs`, proving the recovery path is substrate-generic):
//!
//! 1. **k = 0 observational identity.** With replication disabled — no
//!    [`ReplicaSet`] at all, a set with `k = 0`, or an executor built with
//!    [`Executor::without_replicas`] — the executor must be *bit-identical*
//!    (answers, coverage, full cost ledger including the visit sequence) to
//!    the historical replica-unaware executor, for every mode, query type,
//!    fault plane and thread count. Recovery is a strict superset of the old
//!    behaviour, not a parallel code path.
//!
//! 2. **k ≥ 1 restores recall 1.0.** On an overlay damaged by ungraceful
//!    crashes (up to 20 % of peers, anti-entropy keeping pace with the
//!    failure detector), every dead zone is answered from a surviving
//!    replica: query answers equal the centralized oracle over the *full*
//!    initial dataset — not merely the survivors — coverage is complete, and
//!    the recovery metrics (`replica_hits`, `stale_reads`, `replica_bytes`)
//!    are deterministic across thread counts because recovery is keyed by
//!    the failed edge, not by the schedule that discovered it.
//!
//! [`ReplicaSet`]: ripple_net::ReplicaSet

use crate::exec::Executor;
use crate::framework::{Mode, RankQuery};
use crate::skyline::{centralized_skyline, run_skyline_query_with, SkylineQuery};
use crate::topk::{centralized_topk, run_topk_with, TopKQuery};
use ripple_geom::{LinearScore, Norm, PeakScore, Rect, Tuple};
use ripple_midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};
use ripple_net::FaultPlane;

const MODES: [Mode; 4] = [Mode::Fast, Mode::Slow, Mode::Ripple(2), Mode::Broadcast];
const THREADS: [usize; 3] = [2, 3, 4];

fn loaded_net(dims: usize, peers: usize, tuples: u64, seed: u64) -> (MidasNetwork, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = MidasNetwork::build(dims, peers, false, &mut rng);
    for i in 0..tuples {
        let t = Tuple::new(i, (0..dims).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
        net.insert_tuple(t);
    }
    (net, rng)
}

fn all_tuples(net: &MidasNetwork) -> Vec<Tuple> {
    net.live_peers()
        .iter()
        .flat_map(|&p| net.peer(p).store.tuples().to_vec())
        .collect()
}

fn ids(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.id).collect()
}

/// A plane that detects dead targets (times out, fails over) but injects no
/// drops and no slowness: it isolates crash handling.
fn crash_aware() -> FaultPlane {
    FaultPlane {
        crash_fraction: 1.0,
        timeout_hops: 2,
        max_retries: 1,
        seed: 3,
        ..FaultPlane::none()
    }
}

/// Crashes `n` peers one at a time, running one anti-entropy pass after each
/// — the failure detector and the repair daemon keeping pace, the regime the
/// replication design targets (a copy is lost only when an owner *and* all
/// `k` of its holders die inside one detection window).
fn crash_wave(net: &mut MidasNetwork, rng: &mut SmallRng, n: usize) {
    for _ in 0..n {
        if net.peer_count() > 1 {
            let victim = net.random_peer(rng);
            net.crash(victim);
            net.refresh_replicas();
        }
    }
    net.check_invariants();
}

/// Bit-identity of two outcomes, across every mode × thread count, for one
/// (net_a exec-builder, net_b exec-builder) pair.
fn assert_execs_identical<Q>(
    a: &Executor<'_, MidasNetwork>,
    b: &Executor<'_, MidasNetwork>,
    query: &Q,
    initiator: ripple_net::PeerId,
    label: &str,
) where
    Q: RankQuery<Rect> + Sync,
    Q::Global: Send + Sync,
    Q::Local: Send,
{
    for mode in MODES {
        let oa = a.run(initiator, query, mode);
        let ob = b.run(initiator, query, mode);
        assert_eq!(
            oa.metrics, ob.metrics,
            "{label} [{mode:?}]: ledgers must be bit-identical"
        );
        assert_eq!(oa.answers, ob.answers, "{label} [{mode:?}]");
        assert_eq!(oa.coverage, ob.coverage, "{label} [{mode:?}]");
        // The twins are distinct overlays with distinct mutation histories,
        // so their generation stamps legitimately differ; everything else in
        // the certificate must match tile for tile.
        match (&oa.certificate, &ob.certificate) {
            (Some(ca), Some(cb)) => {
                assert_eq!(
                    ca.regions, cb.regions,
                    "{label} [{mode:?}]: certificate tiles must be bit-identical"
                );
                assert_eq!(ca.domain_volume, cb.domain_volume, "{label} [{mode:?}]");
            }
            (a, b) => assert_eq!(
                a.is_some(),
                b.is_some(),
                "{label} [{mode:?}]: both or neither run certifies"
            ),
        }
        for threads in THREADS {
            let par = b.run_parallel(initiator, query, mode, threads);
            assert_eq!(
                oa.metrics, par.metrics,
                "{label} [{mode:?}, {threads} threads]"
            );
            assert_eq!(oa.answers, par.answers, "{label} [{mode:?}, {threads}]");
            assert_eq!(oa.coverage, par.coverage, "{label} [{mode:?}, {threads}]");
            assert_eq!(
                ob.certificate, par.certificate,
                "{label} [{mode:?}, {threads}]: certificate"
            );
        }
    }
}

/// Builds the same damaged overlay twice (same seed, same crash schedule):
/// once without any replica machinery and once with `enable_replication(k)`.
fn damaged_twins(k: usize, seed: u64) -> (MidasNetwork, MidasNetwork, SmallRng) {
    let (mut plain, mut rng_a) = loaded_net(2, 48, 600, seed);
    let (mut replicated, mut rng_b) = loaded_net(2, 48, 600, seed);
    replicated.enable_replication(k);
    for _ in 0..8 {
        let va = plain.random_peer(&mut rng_a);
        let vb = replicated.random_peer(&mut rng_b);
        assert_eq!(va, vb, "twin construction must stay in lockstep");
        plain.crash(va);
        replicated.crash(vb);
        replicated.refresh_replicas();
    }
    plain.check_invariants();
    replicated.check_invariants();
    (plain, replicated, rng_a)
}

#[test]
fn k_zero_is_bit_identical_to_unreplicated() {
    let (plain, replicated, mut rng) = damaged_twins(0, 51);
    assert!(replicated.replicas().is_some(), "set exists, but k = 0");
    let initiator = plain.random_peer(&mut rng);
    let _ = replicated.random_peer(&mut rng); // keep twin rngs aligned (unused)
    let ea = Executor::with_faults(&plain, crash_aware(), 5);
    let eb = Executor::with_faults(&replicated, crash_aware(), 5);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    assert_execs_identical(&ea, &eb, &q, initiator, "k=0 topk");
    assert_execs_identical(&ea, &eb, &SkylineQuery::new(), initiator, "k=0 skyline");
}

#[test]
fn without_replicas_is_bit_identical_to_unreplicated() {
    let (plain, replicated, mut rng) = damaged_twins(2, 52);
    let initiator = plain.random_peer(&mut rng);
    let ea = Executor::with_faults(&plain, crash_aware(), 6);
    let eb = Executor::with_faults(&replicated, crash_aware(), 6).without_replicas();
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    assert_execs_identical(&ea, &eb, &q, initiator, "ablated topk");
    let peak = TopKQuery::new(PeakScore::new(vec![0.4, 0.6], Norm::L2), 5);
    assert_execs_identical(&ea, &eb, &peak, initiator, "ablated topk-peak");
}

#[test]
fn replication_restores_recall_on_a_crashed_overlay() {
    for k in [1usize, 2] {
        let (mut net, mut rng) = loaded_net(2, 48, 600, 53 + k as u64);
        let oracle_data = all_tuples(&net);
        assert_eq!(oracle_data.len(), 600);
        net.enable_replication(k);
        // 20 % of the overlay crashes (p = 0.2, the gated operating point).
        crash_wave(&mut net, &mut rng, 9);
        assert!(net.tuples_lost() > 0, "crashes must have destroyed data");
        assert!(
            !net.orphan_regions().is_empty(),
            "crashes must orphan volume"
        );
        let score = LinearScore::uniform(2);
        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::with_faults(&net, crash_aware(), 11);
            let (got, metrics, cov) = run_topk_with(&exec, initiator, score.clone(), 10, mode);
            assert_eq!(
                ids(&got),
                ids(&centralized_topk(&oracle_data, &score, 10)),
                "[k={k}, {mode:?}] recall must be 1.0: the answer equals the \
                 oracle over the FULL initial dataset, dead zones included"
            );
            assert!(
                cov.is_complete(),
                "[k={k}, {mode:?}] every dead zone must be recovered: {:?}",
                cov
            );
            assert_eq!(metrics.duplicate_visits, 0, "[k={k}, {mode:?}]");
            if mode == Mode::Broadcast {
                assert!(
                    metrics.replica_hits > 0,
                    "[k={k}] broadcast reaches every dead zone via replicas"
                );
                assert!(metrics.replica_bytes > 0, "[k={k}] payloads are charged");
            }
            let exec = Executor::with_faults(&net, crash_aware(), 11);
            let (sky, _, scov) =
                run_skyline_query_with(&exec, initiator, SkylineQuery::new(), mode);
            assert_eq!(
                sky,
                centralized_skyline(&oracle_data),
                "[k={k}, {mode:?}] skyline recall"
            );
            assert!(scov.is_complete(), "[k={k}, {mode:?}]");
        }
    }
}

#[test]
fn recovery_metrics_are_deterministic_across_thread_counts() {
    let (mut net, mut rng) = loaded_net(2, 48, 600, 57);
    net.enable_replication(2);
    crash_wave(&mut net, &mut rng, 9);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    for mode in MODES {
        let initiator = net.random_peer(&mut rng);
        let exec = Executor::with_faults(&net, crash_aware(), 13);
        let seq = exec.run(initiator, &q, mode);
        for threads in THREADS {
            let par = exec.run_parallel(initiator, &q, mode, threads);
            assert_eq!(
                seq.metrics, par.metrics,
                "[{mode:?}, {threads} threads]: replica_hits / stale_reads / \
                 replica_bytes are keyed by the failed edge, not the schedule"
            );
            assert_eq!(seq.answers, par.answers, "[{mode:?}, {threads} threads]");
            assert_eq!(seq.coverage, par.coverage, "[{mode:?}, {threads} threads]");
            assert_eq!(
                seq.certificate, par.certificate,
                "[{mode:?}, {threads} threads]: certificate"
            );
        }
        if mode == Mode::Broadcast {
            assert!(seq.metrics.replica_hits > 0);
        }
    }
}

/// The second oracle over the failover path: certificates issued on a
/// crash-damaged, replicated overlay must verify independently — the
/// replica-served tiles close the tiling over the dead zones, the τ bound
/// witnesses hold for every pruned region, and the generation stamp pins the
/// snapshot the answer was computed against.
#[test]
fn certificates_verify_under_replica_failover() {
    use crate::skyline::run_skyline_certified;
    use crate::topk::run_topk_certified;
    for k in [1usize, 2] {
        let (mut net, mut rng) = loaded_net(2, 48, 600, 61 + k as u64);
        net.enable_replication(k);
        // Churn interleaved with the crash wave: fresh tuples and a join
        // move the snapshot on while replicas absorb the failures.
        for i in 0..40u64 {
            net.insert_tuple(Tuple::new(10_000 + i, vec![rng.gen(), rng.gen()]));
        }
        net.join(&ripple_geom::Point::new(vec![rng.gen(), rng.gen()]));
        net.refresh_replicas();
        crash_wave(&mut net, &mut rng, 9);
        assert!(net.tuples_lost() > 0);
        let score = LinearScore::uniform(2);
        for mode in MODES {
            let initiator = net.random_peer(&mut rng);
            let exec = Executor::with_faults(&net, crash_aware(), 11);
            let (got, _, cov, cert) = run_topk_certified(&exec, initiator, score.clone(), 10, mode);
            let cert = cert.expect("certificates are on by default");
            ripple_verify::verify_topk(&cert, &got, &score, 10, net.epoch())
                .unwrap_or_else(|e| panic!("[k={k}, {mode:?}] top-k certificate rejected: {e}"));
            ripple_verify::verify_coverage(&cert, cov.answered_fraction, &cov.unreachable)
                .unwrap_or_else(|e| panic!("[k={k}, {mode:?}] coverage rejected: {e}"));
            if mode == Mode::Broadcast {
                assert!(
                    cert.regions
                        .iter()
                        .any(|r| matches!(r, ripple_verify::CertRegion::Replica { .. })),
                    "[k={k}] broadcast over dead zones must tile them as replica-served"
                );
            }
            let (sky, _, _, scert) =
                run_skyline_certified(&exec, initiator, SkylineQuery::new(), mode);
            let scert = scert.expect("certificates are on by default");
            ripple_verify::verify_skyline(&scert, &sky, None, net.epoch())
                .unwrap_or_else(|e| panic!("[k={k}, {mode:?}] skyline certificate rejected: {e}"));
        }
    }
}

#[test]
fn stale_copies_are_read_honestly_and_anti_entropy_freshens_them() {
    // Two identical overlays; both gain a late tuple after the initial
    // capture. `fresh` runs one anti-entropy pass before the owner crashes,
    // `stale` does not — its surviving copy predates the insert.
    let (mut stale, mut rng_a) = loaded_net(2, 32, 300, 58);
    let (mut fresh, mut rng_b) = loaded_net(2, 32, 300, 58);
    stale.enable_replication(1);
    fresh.enable_replication(1);
    let late = Tuple::new(9_999, vec![0.515, 0.485]);
    let victim = stale.responsible(&late.point);
    assert_eq!(victim, fresh.responsible(&late.point));
    stale.insert_tuple(late.clone());
    fresh.insert_tuple(late.clone());
    fresh.refresh_replicas(); // the pass `stale` never got
    stale.crash(victim);
    fresh.crash(victim);

    let score = PeakScore::new(late.point.clone(), Norm::L2);
    let run = |net: &MidasNetwork, rng: &mut SmallRng| {
        let initiator = net.random_peer(rng);
        let exec = Executor::with_faults(net, crash_aware(), 17);
        run_topk_with(&exec, initiator, score.clone(), 1, Mode::Broadcast)
    };
    let (got, metrics, cov) = run(&stale, &mut rng_a);
    assert!(cov.is_complete(), "volume is covered even by a stale copy");
    assert!(metrics.replica_hits > 0);
    assert!(
        metrics.stale_reads > 0,
        "a copy behind the owner's generation must be counted stale"
    );
    assert_ne!(
        ids(&got),
        vec![late.id],
        "the stale copy predates the late tuple — honest, visible loss"
    );
    let (got, metrics, cov) = run(&fresh, &mut rng_b);
    assert!(cov.is_complete());
    assert_eq!(metrics.stale_reads, 0, "anti-entropy refreshed the copy");
    assert_eq!(
        ids(&got),
        vec![late.id],
        "the refreshed copy carries the late tuple: recall restored"
    );
}

#[test]
fn ablated_executor_loses_coverage_where_default_recovers() {
    let (mut net, mut rng) = loaded_net(2, 48, 600, 59);
    net.enable_replication(2);
    crash_wave(&mut net, &mut rng, 9);
    let orphan_vol: f64 = net.orphan_regions().iter().map(Rect::volume).sum();
    assert!(orphan_vol > 0.0);
    let q = TopKQuery::new(LinearScore::uniform(2), 10);
    let initiator = net.random_peer(&mut rng);
    let with = Executor::with_faults(&net, crash_aware(), 19).run(initiator, &q, Mode::Broadcast);
    let without = Executor::with_faults(&net, crash_aware(), 19)
        .without_replicas()
        .run(initiator, &q, Mode::Broadcast);
    assert!(with.coverage.is_complete());
    assert!(with.metrics.replica_hits > 0);
    assert!(!without.coverage.is_complete());
    assert_eq!(without.metrics.replica_hits, 0);
    assert!(
        (without.coverage.answered_fraction - (1.0 - orphan_vol)).abs() < 1e-9,
        "ablated broadcast reports exactly the orphan volume: {} vs {}",
        without.coverage.answered_fraction,
        1.0 - orphan_vol
    );
}
