//! Cross-crate integration: the same dataset and queries over every
//! substrate and algorithm must agree with the centralized oracles.

use ripple::baton::{ssp_skyline, BatonNetwork};
use ripple::can::{baseline_diversify, dsl_skyline, CanNetwork};
use ripple::chord::ChordNetwork;
use ripple::core::diversify::{centralized_diversify, diversify, Initialize};
use ripple::core::framework::Mode;
use ripple::core::skyline::{centralized_skyline, run_skyline};
use ripple::core::topk::{centralized_topk, run_topk};
use ripple::data::synth::{self, SynthConfig};
use ripple::geom::{DiversityQuery, Norm, PeakScore, Tuple};
use ripple::midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::SeedableRng;

fn dataset(dims: usize, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed);
    synth::generate(&SynthConfig::scaled(dims, n), &mut rng)
}

fn ids(ts: &[Tuple]) -> Vec<u64> {
    let mut v: Vec<u64> = ts.iter().map(|t| t.id).collect();
    v.sort_unstable();
    v
}

#[test]
fn all_skyline_methods_agree() {
    let data = dataset(3, 400, 1);
    let oracle = ids(&centralized_skyline(&data));
    let mut rng = SmallRng::seed_from_u64(2);

    let mut midas = MidasNetwork::build(3, 64, true, &mut rng);
    midas.insert_all(data.clone());
    let (sky, _) = run_skyline(&midas, midas.random_peer(&mut rng), Mode::Fast);
    assert_eq!(ids(&sky), oracle, "ripple-fast over MIDAS");
    let (sky, _) = run_skyline(&midas, midas.random_peer(&mut rng), Mode::Slow);
    assert_eq!(ids(&sky), oracle, "ripple-slow over MIDAS");

    let mut can = CanNetwork::build(3, 64, &mut rng);
    can.insert_all(data.clone());
    let out = dsl_skyline(&can, can.random_peer(&mut rng));
    assert_eq!(ids(&out.skyline), oracle, "DSL over CAN");

    let mut baton = BatonNetwork::build(3, 10, 64, &mut rng);
    baton.insert_all(data.clone());
    baton.refresh_layout();
    let out = ssp_skyline(&baton, baton.random_peer(&mut rng));
    assert_eq!(ids(&out.skyline), oracle, "SSP over BATON");
}

#[test]
fn topk_agrees_across_midas_and_chord() {
    // MIDAS on the multidimensional data…
    let data = dataset(2, 300, 3);
    let mut rng = SmallRng::seed_from_u64(4);
    let score = PeakScore::new(vec![0.4, 0.6], Norm::L2);
    let oracle = ids(&centralized_topk(&data, &score, 8));
    let mut midas = MidasNetwork::build(2, 48, false, &mut rng);
    midas.insert_all(data.clone());
    let (top, _) = run_topk(
        &midas,
        midas.random_peer(&mut rng),
        score.clone(),
        8,
        Mode::Ripple(1),
    );
    assert_eq!(ids(&top), oracle, "MIDAS");

    // …and Chord on its 1-d projection: same framework, different substrate.
    let data1: Vec<Tuple> = data
        .iter()
        .map(|t| Tuple::new(t.id, vec![t.point.coord(0)]))
        .collect();
    let score1 = PeakScore::new(vec![0.4], Norm::L2);
    let oracle1 = ids(&centralized_topk(&data1, &score1, 8));
    let mut chord = ChordNetwork::build(48, &mut rng);
    chord.insert_all(data1);
    let (top, _) = run_topk(&chord, chord.random_peer(&mut rng), score1, 8, Mode::Slow);
    assert_eq!(ids(&top), oracle1, "Chord");
}

#[test]
fn diversification_methods_take_identical_greedy_steps() {
    let data = dataset(2, 250, 5);
    let mut rng = SmallRng::seed_from_u64(6);
    let div = DiversityQuery::new(vec![0.5, 0.5], 0.5, Norm::L1);
    let oracle = centralized_diversify(&data, &div, 5, 6);

    let mut midas = MidasNetwork::build(2, 40, false, &mut rng);
    midas.insert_all(data.clone());
    let (rip, rip_m) = diversify(
        &midas,
        midas.random_peer(&mut rng),
        &div,
        5,
        Mode::Slow,
        Initialize::Greedy,
        6,
    );
    // Candidates can tie on φ (e.g. several "free" insertions with φ = 0);
    // any argmin is a correct answer to Eq. 2, so the greedy runs may pick
    // different — equally good — members. The objective must agree.
    assert_eq!(rip.len(), oracle.len(), "RIPPLE diversification size");
    assert!(
        div.objective(&rip) <= div.objective(&oracle) + 1e-9,
        "RIPPLE objective {} vs centralized {}",
        div.objective(&rip),
        div.objective(&oracle)
    );

    let mut can = CanNetwork::build(2, 40, &mut rng);
    can.insert_all(data.clone());
    let (base, base_m) = baseline_diversify(&can, can.random_peer(&mut rng), &div, 5, 6);
    // the streaming baseline scans exhaustively with the same id
    // tie-breaking as the centralized oracle: identical sets
    assert_eq!(ids(&base), ids(&oracle), "baseline diversification");

    // the baseline floods: it must be doing strictly more work
    assert!(
        base_m.peers_visited > rip_m.peers_visited,
        "baseline {} vs ripple {}",
        base_m.peers_visited,
        rip_m.peers_visited
    );
}

#[test]
fn churn_stages_preserve_answers_on_all_overlays() {
    use ripple::net::churn::{run_stage, ChurnStage};
    let data = dataset(2, 300, 7);
    let sky_oracle = ids(&centralized_skyline(&data));
    let mut rng = SmallRng::seed_from_u64(8);

    let mut net = MidasNetwork::build(2, 32, false, &mut rng);
    net.insert_all(data.clone());
    run_stage(
        &mut net,
        ChurnStage::Increasing,
        256,
        &[64, 128, 256],
        &mut rng,
        |net, cp| {
            let mut r = SmallRng::seed_from_u64(cp as u64);
            let (sky, _) = run_skyline(net, net.random_peer(&mut r), Mode::Fast);
            assert_eq!(ids(&sky), sky_oracle, "grow checkpoint {cp}");
        },
    );
    run_stage(
        &mut net,
        ChurnStage::Decreasing,
        32,
        &[32, 64, 128],
        &mut rng,
        |net, cp| {
            let mut r = SmallRng::seed_from_u64(cp as u64);
            let (sky, _) = run_skyline(net, net.random_peer(&mut r), Mode::Slow);
            assert_eq!(ids(&sky), sky_oracle, "shrink checkpoint {cp}");
        },
    );
    net.check_invariants();
}

#[test]
fn broadcast_is_an_upper_bound_on_every_overlay() {
    let data = dataset(2, 200, 9);
    let mut rng = SmallRng::seed_from_u64(10);
    let score = PeakScore::new(vec![0.7, 0.3], Norm::L1);

    let mut midas = MidasNetwork::build(2, 64, false, &mut rng);
    midas.insert_all(data.clone());
    let initiator = midas.random_peer(&mut rng);
    let (_, bc) = run_topk(&midas, initiator, score.clone(), 5, Mode::Broadcast);
    assert_eq!(bc.peers_visited as usize, midas.peer_count());
    for mode in [Mode::Fast, Mode::Slow, Mode::Ripple(2)] {
        let (_, m) = run_topk(&midas, initiator, score.clone(), 5, mode);
        assert!(m.peers_visited <= bc.peers_visited, "{mode:?}");
        assert!(m.tuples_transferred <= bc.tuples_transferred, "{mode:?}");
    }
}
