//! Property-based tests (proptest) for the core invariants the distributed
//! algorithms rest on.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ripple::core::framework::Mode;
use ripple::core::skyline::{centralized_skyline, run_skyline};
use ripple::core::topk::{centralized_topk, run_topk};
use ripple::geom::kdspace::BitPath;
use ripple::geom::zorder::ZCurve;
use ripple::geom::{
    dominance, DiversityQuery, LinearScore, Norm, PeakScore, Point, Rect, ScoreFn, Tuple,
};
use ripple::midas::MidasNetwork;

fn coord() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|v| v as f64 / 1000.0)
}

fn point(dims: usize) -> impl Strategy<Value = Point> {
    vec(coord(), dims).prop_map(Point::new)
}

fn tuples(dims: usize, max: usize) -> impl Strategy<Value = Vec<Tuple>> {
    vec(point(dims), 1..max).prop_map(|ps| {
        ps.into_iter()
            .enumerate()
            .map(|(i, p)| Tuple::new(i as u64, p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `f⁺` really is an upper bound over any region for both score types.
    #[test]
    fn score_upper_bounds_hold(
        p in point(3),
        (lo, hi) in (point(3), point(3)),
        peak in point(3),
    ) {
        let r = Rect::new(
            (0..3).map(|d| lo.coord(d).min(hi.coord(d))).collect::<Vec<_>>(),
            (0..3).map(|d| lo.coord(d).max(hi.coord(d))).collect::<Vec<_>>(),
        );
        let inside = r.nearest_point(&p);
        let linear = LinearScore::new(vec![0.5, 1.0, 2.0]);
        prop_assert!(linear.upper_bound(&r) >= linear.score(&inside) - 1e-9);
        let peaked = PeakScore::new(peak, Norm::L2);
        prop_assert!(peaked.upper_bound(&r) >= peaked.score(&inside) - 1e-9);
    }

    /// Skyline identities: no member dominated; every non-member dominated
    /// or duplicated; idempotent.
    #[test]
    fn skyline_identities(data in tuples(3, 60)) {
        let sky = dominance::skyline(&data);
        for s in &sky {
            prop_assert!(!data.iter().any(|t| dominance::dominates(&t.point, &s.point)));
        }
        for t in &data {
            if sky.iter().any(|s| s.id == t.id) { continue; }
            prop_assert!(sky.iter().any(|s|
                dominance::dominates(&s.point, &t.point) || s.point == t.point));
        }
        let again = dominance::skyline(&sky);
        prop_assert_eq!(again.len(), sky.len());
    }

    /// φ equals the objective delta, and φ⁻ lower-bounds φ over a region.
    #[test]
    fn diversification_bounds(
        data in tuples(2, 20),
        q in point(2),
        cand in point(2),
        lambda in 0.0f64..=1.0,
    ) {
        let div = DiversityQuery::new(q, lambda, Norm::L1);
        let set: Vec<Tuple> = data.iter().take(5).cloned().collect();
        // φ = Δf
        let mut bigger = set.clone();
        bigger.push(Tuple::new(9999, cand.clone()));
        let delta = div.objective(&bigger) - div.objective(&set);
        prop_assert!((div.phi(&cand, &set) - delta).abs() < 1e-9);
        // φ⁻ sound on a region containing the candidate
        let r = Rect::new(
            (0..2).map(|d| (cand.coord(d) - 0.1).max(0.0)).collect::<Vec<_>>(),
            (0..2).map(|d| (cand.coord(d) + 0.1).min(1.0)).collect::<Vec<_>>(),
        );
        let stats = div.stats(&set);
        prop_assert!(div.phi_lower(&r, &set, stats) <= div.phi(&cand, &set) + 1e-9);
    }

    /// Z-curve: cell decompositions tile their interval exactly.
    #[test]
    fn zcurve_decomposition_tiles(lo in 0u128..256, len in 0u128..256) {
        let curve = ZCurve::new(2, 4); // key space [0, 256)
        let hi = (lo + len).min(255);
        let lo = lo.min(hi);
        let cells = curve.interval_to_cells(lo, hi);
        let mut next = lo;
        for c in &cells {
            let (clo, chi) = curve.cell_range(c);
            prop_assert_eq!(clo, next);
            next = chi + 1;
        }
        prop_assert_eq!(next, hi + 1);
    }

    /// BitPath geometry: sibling-subtree boxes plus the leaf box always
    /// partition the unit cube (midpoint splits).
    #[test]
    fn bitpath_partition(bits in vec(any::<bool>(), 0..12)) {
        let p = BitPath::from_bits(&bits);
        let dims = 3;
        let mut vol = p.rect(dims).volume();
        for i in 1..=p.len() {
            vol += p.sibling_at(i).rect(dims).volume();
        }
        prop_assert!((vol - 1.0).abs() < 1e-9);
    }

    /// End-to-end: distributed top-k and skyline equal their oracles on
    /// arbitrary data and overlay sizes.
    #[test]
    fn distributed_equals_centralized(
        data in tuples(2, 80),
        peers in 2usize..40,
        seed in 0u64..1000,
        peak in point(2),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(2, peers, seed % 2 == 0, &mut rng);
        net.insert_all(data.clone());
        let initiator = net.random_peer(&mut rng);

        let score = PeakScore::new(peak, Norm::L1);
        let k = 1 + (seed as usize % 7);
        let (top, _) = run_topk(&net, initiator, score.clone(), k, Mode::Ripple((seed % 4) as u32));
        let oracle = centralized_topk(&data, &score, k);
        let top_scores: Vec<i64> = top.iter().map(|t| (score.score(&t.point) * 1e9) as i64).collect();
        let oracle_scores: Vec<i64> = oracle.iter().map(|t| (score.score(&t.point) * 1e9) as i64).collect();
        prop_assert_eq!(top_scores, oracle_scores);

        let (sky, _) = run_skyline(&net, initiator, Mode::Fast);
        let mut sky_ids: Vec<u64> = sky.iter().map(|t| t.id).collect();
        sky_ids.sort_unstable();
        let mut want: Vec<u64> = centralized_skyline(&data).iter().map(|t| t.id).collect();
        want.sort_unstable();
        prop_assert_eq!(sky_ids, want);
    }

    /// Churn never loses tuples and keeps zones a partition.
    #[test]
    fn churn_preserves_structure(
        ops in vec(any::<bool>(), 1..60),
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = MidasNetwork::build(2, 8, false, &mut rng);
        for i in 0..50u64 {
            net.insert_tuple(Tuple::new(i, vec![
                rand::Rng::gen::<f64>(&mut rng),
                rand::Rng::gen::<f64>(&mut rng),
            ]));
        }
        for &grow in &ops {
            if grow {
                net.join_random(&mut rng);
            } else if net.peer_count() > 1 {
                let victim = net.random_peer(&mut rng);
                net.leave(victim);
            }
        }
        net.check_invariants();
        let total: usize = net.live_peers().iter().map(|&p| net.peer(p).store.len()).sum();
        prop_assert_eq!(total, 50);
    }
}
