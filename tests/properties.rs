//! Property-style tests (seeded deterministic case loops) for the core
//! invariants the distributed algorithms rest on.

use ripple::core::framework::Mode;
use ripple::core::skyline::{centralized_skyline, run_skyline};
use ripple::core::topk::{centralized_topk, run_topk};
use ripple::geom::kdspace::BitPath;
use ripple::geom::zorder::ZCurve;
use ripple::geom::{
    dominance, DiversityQuery, LinearScore, Norm, PeakScore, Point, Rect, ScoreFn, Tuple,
};
use ripple::midas::MidasNetwork;
use ripple_net::rng::rngs::SmallRng;
use ripple_net::rng::{Rng, SeedableRng};

/// Coordinate on the 1/1000 grid (mirrors the historical proptest strategy).
fn coord(rng: &mut SmallRng) -> f64 {
    rng.gen_range(0..1001u32) as f64 / 1000.0
}

fn point(rng: &mut SmallRng, dims: usize) -> Point {
    Point::new((0..dims).map(|_| coord(rng)).collect::<Vec<_>>())
}

fn tuples(rng: &mut SmallRng, dims: usize, max: usize) -> Vec<Tuple> {
    let n = rng.gen_range(1..max);
    (0..n)
        .map(|i| Tuple::new(i as u64, point(rng, dims)))
        .collect()
}

const CASES: u64 = 64;

/// `f⁺` really is an upper bound over any region for both score types.
#[test]
fn score_upper_bounds_hold() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = point(&mut rng, 3);
        let (lo, hi) = (point(&mut rng, 3), point(&mut rng, 3));
        let peak = point(&mut rng, 3);
        let r = Rect::new(
            (0..3)
                .map(|d| lo.coord(d).min(hi.coord(d)))
                .collect::<Vec<_>>(),
            (0..3)
                .map(|d| lo.coord(d).max(hi.coord(d)))
                .collect::<Vec<_>>(),
        );
        let inside = r.nearest_point(&p);
        let linear = LinearScore::new(vec![0.5, 1.0, 2.0]);
        assert!(linear.upper_bound(&r) >= linear.score(&inside) - 1e-9);
        let peaked = PeakScore::new(peak, Norm::L2);
        assert!(peaked.upper_bound(&r) >= peaked.score(&inside) - 1e-9);
    }
}

/// Skyline identities: no member dominated; every non-member dominated or
/// duplicated; idempotent.
#[test]
fn skyline_identities() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let data = tuples(&mut rng, 3, 60);
        let sky = dominance::skyline(&data);
        for s in &sky {
            assert!(!data
                .iter()
                .any(|t| dominance::dominates(&t.point, &s.point)));
        }
        for t in &data {
            if sky.iter().any(|s| s.id == t.id) {
                continue;
            }
            assert!(sky
                .iter()
                .any(|s| dominance::dominates(&s.point, &t.point) || s.point == t.point));
        }
        let again = dominance::skyline(&sky);
        assert_eq!(again.len(), sky.len());
    }
}

/// φ equals the objective delta, and φ⁻ lower-bounds φ over a region.
#[test]
fn diversification_bounds() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(200 + seed);
        let data = tuples(&mut rng, 2, 20);
        let q = point(&mut rng, 2);
        let cand = point(&mut rng, 2);
        let lambda = coord(&mut rng);
        let div = DiversityQuery::new(q, lambda, Norm::L1);
        let set: Vec<Tuple> = data.iter().take(5).cloned().collect();
        // φ = Δf
        let mut bigger = set.clone();
        bigger.push(Tuple::new(9999, cand.clone()));
        let delta = div.objective(&bigger) - div.objective(&set);
        assert!((div.phi(&cand, &set) - delta).abs() < 1e-9);
        // φ⁻ sound on a region containing the candidate
        let r = Rect::new(
            (0..2)
                .map(|d| (cand.coord(d) - 0.1).max(0.0))
                .collect::<Vec<_>>(),
            (0..2)
                .map(|d| (cand.coord(d) + 0.1).min(1.0))
                .collect::<Vec<_>>(),
        );
        let stats = div.stats(&set);
        assert!(div.phi_lower(&r, &set, stats) <= div.phi(&cand, &set) + 1e-9);
    }
}

/// Z-curve: cell decompositions tile their interval exactly.
#[test]
fn zcurve_decomposition_tiles() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(300 + seed);
        let lo = rng.gen_range(0..256u128);
        let len = rng.gen_range(0..256u128);
        let curve = ZCurve::new(2, 4); // key space [0, 256)
        let hi = (lo + len).min(255);
        let lo = lo.min(hi);
        let cells = curve.interval_to_cells(lo, hi);
        let mut next = lo;
        for c in &cells {
            let (clo, chi) = curve.cell_range(c);
            assert_eq!(clo, next);
            next = chi + 1;
        }
        assert_eq!(next, hi + 1);
    }
}

/// BitPath geometry: sibling-subtree boxes plus the leaf box always
/// partition the unit cube (midpoint splits).
#[test]
fn bitpath_partition() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(400 + seed);
        let len = rng.gen_range(0..12usize);
        let bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
        let p = BitPath::from_bits(&bits);
        let dims = 3;
        let mut vol = p.rect(dims).volume();
        for i in 1..=p.len() {
            vol += p.sibling_at(i).rect(dims).volume();
        }
        assert!((vol - 1.0).abs() < 1e-9);
    }
}

/// End-to-end: distributed top-k and skyline equal their oracles on
/// arbitrary data and overlay sizes.
#[test]
fn distributed_equals_centralized() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(500 + seed);
        let data = tuples(&mut rng, 2, 80);
        let peers = rng.gen_range(2..40usize);
        let peak = point(&mut rng, 2);
        let mut net = MidasNetwork::build(2, peers, seed % 2 == 0, &mut rng);
        net.insert_all(data.clone());
        let initiator = net.random_peer(&mut rng);

        let score = PeakScore::new(peak, Norm::L1);
        let k = 1 + (seed as usize % 7);
        let (top, _) = run_topk(
            &net,
            initiator,
            score.clone(),
            k,
            Mode::Ripple((seed % 4) as u32),
        );
        let oracle = centralized_topk(&data, &score, k);
        let top_scores: Vec<i64> = top
            .iter()
            .map(|t| (score.score(&t.point) * 1e9) as i64)
            .collect();
        let oracle_scores: Vec<i64> = oracle
            .iter()
            .map(|t| (score.score(&t.point) * 1e9) as i64)
            .collect();
        assert_eq!(top_scores, oracle_scores);

        let (sky, _) = run_skyline(&net, initiator, Mode::Fast);
        let mut sky_ids: Vec<u64> = sky.iter().map(|t| t.id).collect();
        sky_ids.sort_unstable();
        let mut want: Vec<u64> = centralized_skyline(&data).iter().map(|t| t.id).collect();
        want.sort_unstable();
        assert_eq!(sky_ids, want);
    }
}

/// Churn never loses tuples and keeps zones a partition.
#[test]
fn churn_preserves_structure() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(600 + seed);
        let ops: Vec<bool> = {
            let n = rng.gen_range(1..60usize);
            (0..n).map(|_| rng.gen::<bool>()).collect()
        };
        let mut net = MidasNetwork::build(2, 8, false, &mut rng);
        for i in 0..50u64 {
            net.insert_tuple(Tuple::new(i, vec![rng.gen::<f64>(), rng.gen::<f64>()]));
        }
        for &grow in &ops {
            if grow {
                net.join_random(&mut rng);
            } else if net.peer_count() > 1 {
                let victim = net.random_peer(&mut rng);
                net.leave(victim);
            }
        }
        net.check_invariants();
        let total: usize = net
            .live_peers()
            .iter()
            .map(|&p| net.peer(p).store.len())
            .sum();
        assert_eq!(total, 50);
    }
}
